//! Policy checking with eCFDs (disequality + disjunction patterns —
//! the tutorial's reference [3]).
//!
//! A shipping-orders table with business policies that plain CFDs
//! cannot state:
//!
//! * orders outside the US must not ship via USPS (`country!='us'` →
//!   `carrier!='usps'`);
//! * EU orders carry one of the two valid VAT rates
//!   (`country in ('fr','de')` → `tax in ('19','20')`).
//!
//! ```sh
//! cargo run --example ecfd_policies
//! ```

use revival::constraints::analysis::{is_satisfiable, Outcome, DEFAULT_BUDGET};
use revival::prelude::*;
use revival::repair::suspicion_weights;

fn main() {
    let schema = Schema::builder("orders")
        .attr("country", Type::Str)
        .attr("region", Type::Str)
        .attr("tax", Type::Str)
        .attr("carrier", Type::Str)
        .build();

    let policy = "\
        # Non-US orders never ship USPS.\n\
        orders([country!='us'] -> [carrier!='usps'])\n\
        # EU orders carry a valid VAT rate.\n\
        orders([country in ('fr','de')] -> [tax in ('19','20')])\n\
        # Within any non-US country, region determines the tax rate.\n\
        orders([country!='us', region] -> [tax])\n";
    let cfds = parse_cfds(policy, &schema).unwrap();
    println!("policy suite ({} CFDs):", cfds.len());
    for c in &cfds {
        println!("  {}", c.display(&schema));
    }
    assert_eq!(is_satisfiable(&schema, &cfds, DEFAULT_BUDGET), Outcome::Yes);

    let mut orders = Table::new(schema.clone());
    for row in [
        ["fr", "idf", "20", "dhl"],      // ok
        ["fr", "idf", "20", "usps"],     // carrier policy violation
        ["de", "by", "7", "dhl"],        // invalid VAT
        ["fr", "idf", "19", "dhl"],      // region/tax conflict with row 0
        ["us", "ca", "7.25", "usps"],    // fine: US orders unconstrained
        ["jp", "kanto", "10", "yamato"], // fine
    ] {
        orders.push(row.iter().map(|s| (*s).into()).collect()).unwrap();
    }

    let report = NativeDetector::new(&orders).detect_all(&cfds);
    println!("\n{report}");
    assert_eq!(report.violating_tuples().len(), 4);

    // Repair with detection-derived confidence weights.
    let weights = suspicion_weights(&orders, &cfds, Default::default());
    let (fixed, stats) = BatchRepair::new(&cfds, weights).repair(&orders).expect("repair");
    println!(
        "repair: {} cells changed, residual {}",
        stats.cells_changed, stats.residual_violations
    );
    assert_eq!(stats.residual_violations, 0);
    for (id, row) in fixed.rows() {
        let orig = orders.get(id).unwrap();
        for (a, (new, old)) in row.iter().zip(&orig).enumerate() {
            if new != old {
                println!("  {id}.{}: {old} -> {new}", schema.attr_name(a));
            }
        }
    }
    println!("\nall policies hold after repair ✓");
}
