//! Quickstart: the paper's §3 running example, end to end.
//!
//! Builds the `customer` relation, states the two CFDs from the paper,
//! detects violations (native and via generated SQL), and repairs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use revival::constraints::parser::parse_cfds;
use revival::detect::native::describe_violation;
use revival::detect::sqlgen::{detect_sql, generate};
use revival::detect::NativeDetector;
use revival::relation::{Schema, Table, Type};
use revival::repair::{BatchRepair, CostModel};

fn main() {
    // -- schema & data ----------------------------------------------------
    let schema = Schema::builder("customer")
        .attr("cc", Type::Str)
        .attr("ac", Type::Str)
        .attr("phn", Type::Str)
        .attr("street", Type::Str)
        .attr("city", Type::Str)
        .attr("zip", Type::Str)
        .build();
    let mut customer = Table::new(schema.clone());
    for row in [
        // cc    ac     phn    street       city   zip
        ["44", "131", "1111", "Crichton St", "edi", "EH8 9AB"],
        ["44", "131", "2222", "Mayfield Rd", "edi", "EH8 9AB"], // conflicting street!
        ["01", "908", "3333", "Mountain Ave", "nyc", "07974"],  // city must be 'mh'!
        ["01", "212", "4444", "Broadway", "nyc", "10001"],
    ] {
        customer.push(row.iter().map(|s| (*s).into()).collect()).unwrap();
    }

    // -- the paper's CFDs ---------------------------------------------------
    let cfds = parse_cfds(
        "customer([cc='44', zip] -> [street])\n\
         customer([cc='01', ac='908', phn] -> [street, city='mh', zip])",
        &schema,
    )
    .unwrap();
    println!("suite ({} normal-form CFDs):", cfds.len());
    for cfd in &cfds {
        println!("  {}", cfd.display(&schema));
    }

    // -- detection ----------------------------------------------------------
    let report = NativeDetector::new(&customer).detect_all(&cfds);
    println!("\nnative detection: {} violation(s)", report.len());
    for v in &report.violations {
        println!("  {}", describe_violation(v, &cfds, &schema));
    }

    // The SQL Semandaq would run:
    println!("\ngenerated SQL (first CFD):");
    let queries = generate(&cfds[0], &schema);
    for (_, q) in queries.constant.iter().chain(&queries.variable) {
        println!("  {q}");
    }
    let sql_report = detect_sql(&customer, &cfds).unwrap();
    assert_eq!(report.violating_tuples(), sql_report.violating_tuples());

    // -- repair ---------------------------------------------------------------
    let repairer = BatchRepair::new(&cfds, CostModel::uniform(schema.arity()));
    let (repaired, stats) = repairer.repair(&customer).expect("repair");
    println!(
        "\nrepair: {} cell(s) changed, cost {:.2}, residual violations {}",
        stats.cells_changed, stats.cost, stats.residual_violations
    );
    for (id, row) in repaired.rows() {
        let orig = customer.get(id).unwrap();
        for (a, (new, old)) in row.iter().zip(&orig).enumerate() {
            if new != old {
                println!("  {id}.{} : {old} -> {new}", schema.attr_name(a));
            }
        }
    }
    assert!(revival::detect::native::satisfies(&repaired, &cfds));
    println!("\nrepaired instance satisfies the suite ✓");
}
