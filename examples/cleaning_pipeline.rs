//! A full data-cleaning pipeline over a dirty customer database:
//!
//! 1. generate dirty data with ground truth;
//! 2. **discover** cleaning rules from a trusted clean sample
//!    (profiling, §2 of the paper);
//! 3. statically **analyze** the suite (satisfiability, minimal cover);
//! 4. **detect** violations; 5. **repair**; 6. score against ground
//!    truth; 7. answer a query consistently *without* repairing (CQA).
//!
//! ```sh
//! cargo run --example cleaning_pipeline
//! ```

use revival::constraints::analysis::{is_satisfiable, minimal_cover, Outcome, DEFAULT_BUDGET};
use revival::cqa::{certain_answers_rewrite, SpQuery};
use revival::detect::NativeDetector;
use revival::dirty::customer::{attrs, generate, standard_cfds, CustomerConfig};
use revival::dirty::noise::{inject, NoiseConfig};
use revival::discovery::ctane::{discover_cfds, CtaneOptions};
use revival::relation::{Expr, Table};
use revival::repair::{BatchRepair, CostModel};

fn main() {
    // 1. Dirty data with ground truth.
    let data = generate(&CustomerConfig { rows: 4_000, seed: 2024, ..Default::default() });
    let ds = inject(&data.table, &NoiseConfig::new(0.04, vec![attrs::STREET, attrs::CITY], 77));
    println!("generated {} tuples, {} corrupted cells", ds.dirty.len(), ds.error_count());

    // 2. Discover rules from a small clean sample (in practice a vetted
    //    master segment).
    let mut sample = Table::new(data.schema.clone());
    for (_, row) in data.table.rows().take(800) {
        sample.push_unchecked(row.to_vec());
    }
    let (discovered, mining_stats) = discover_cfds(
        &sample,
        &CtaneOptions { max_lhs: 2, max_constants: 1, min_support: 20, top_values: 2 },
    );
    println!(
        "discovered {} candidate CFDs from the clean sample ({} candidates checked)",
        discovered.len(),
        mining_stats.candidates_checked
    );

    // In practice an expert vets discovered rules; here we take the
    // curated standard suite and verify discovery found its variable
    // rules' embedded FDs.
    let suite = standard_cfds(&data.schema);
    for cfd in suite.iter().filter(|c| c.constant_rows().next().is_none()) {
        let found = discovered.iter().any(|d| d.lhs == cfd.lhs && d.rhs == cfd.rhs);
        println!("  {} {}", if found { "✓" } else { "✗" }, cfd.display(&data.schema));
    }

    // 3. Static analysis.
    let sat = is_satisfiable(&data.schema, &suite, DEFAULT_BUDGET);
    assert_eq!(sat, Outcome::Yes, "curated suite must be satisfiable");
    let (_cover, report) = minimal_cover(&data.schema, &suite, DEFAULT_BUDGET);
    println!("\nsuite satisfiable; minimal cover {} -> {} rows", report.rows_in, report.rows_out);

    // 4. Detection.
    let violations = NativeDetector::new(&ds.dirty).detect_all(&suite);
    println!(
        "detected {} violations over {} tuples",
        violations.len(),
        violations.violating_tuples().len()
    );

    // 5. Repair.
    let repairer = BatchRepair::new(&suite, CostModel::uniform(data.schema.arity()));
    let (repaired, stats) = repairer.repair(&ds.dirty).expect("repair");
    assert_eq!(stats.residual_violations, 0);

    // 6. Score.
    let score = ds.score_repair(&repaired, &[attrs::STREET, attrs::CITY]);
    println!(
        "repair: changed {} cells; precision {:.3}, recall {:.3}, f1 {:.3}",
        stats.cells_changed,
        score.precision,
        score.recall,
        score.f1()
    );

    // 7. CQA: which UK zips certainly exist, without touching the data?
    let query = SpQuery::new(Expr::col(attrs::CC).eq(Expr::lit("44")), vec![attrs::ZIP]);
    let certain = certain_answers_rewrite(&ds.dirty, &suite, &query);
    let on_clean = query.answers(&ds.clean);
    println!(
        "\nCQA: {} certain UK zips on the dirty data ({} on the clean original)",
        certain.len(),
        on_clean.len()
    );
    // Every certain zip is genuinely a UK zip in the dirty instance.
    assert!(certain.iter().all(|z| {
        ds.dirty.rows().any(|(_, r)| r[attrs::CC] == "44".into() && r[attrs::ZIP] == z[0])
    }));
    println!("pipeline complete ✓");
}
