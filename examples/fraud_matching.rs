//! Fraud detection by object identification (§4 of the paper).
//!
//! Generates card/billing feeds where billing holder fields are
//! representation variants of the card's (diminutives, abbreviated
//! addresses, typos), **derives** the paper's RCKs from the three
//! matching rules, and compares RCK matching against exact-key
//! matching.
//!
//! ```sh
//! cargo run --example fraud_matching
//! ```

use revival::dirty::cardbilling::{attrs, generate, CardBillingConfig};
use revival::matching::matcher::{
    AttributePair, BlockKey, Comparator, MatchQuality, RecordMatcher,
};
use revival::matching::rck::derive_rcks;
use revival::matching::rules::{paper_rules, Cmp};
use revival::matching::RelativeCandidateKey;

fn main() {
    // -- the matching rules stated in the paper -----------------------------
    let rules = paper_rules();
    println!("matching rules:");
    for r in &rules {
        println!("  {r}");
    }

    // -- derive RCKs ----------------------------------------------------------
    let y = ["fname", "lname", "addr", "phn", "email"];
    let rcks = derive_rcks(&y, &y, &rules, 3);
    println!("\nderived relative candidate keys:");
    for rck in &rcks {
        println!("  {rck}");
    }

    // -- generate feeds with ground truth -------------------------------------
    let data = generate(&CardBillingConfig {
        persons: 2_000,
        variation_rate: 0.35,
        typo_rate: 0.05,
        seed: 99,
        ..Default::default()
    });
    println!(
        "\n{} card tuples, {} billing tuples, {} true matches",
        data.card.len(),
        data.billing.len(),
        data.true_pairs.len()
    );

    // -- matchers ----------------------------------------------------------------
    let pairs = vec![
        AttributePair::new("fname", attrs::CARD_FN, attrs::BILL_FN, Comparator::PersonName),
        AttributePair::new("lname", attrs::CARD_LN, attrs::BILL_LN, Comparator::JaroWinkler(0.88)),
        AttributePair::new("addr", attrs::CARD_ADDR, attrs::BILL_ADDR, Comparator::Address),
        AttributePair::new("phn", attrs::CARD_PHN, attrs::BILL_PHN, Comparator::Phone),
        AttributePair::new("email", attrs::CARD_EMAIL, attrs::BILL_EMAIL, Comparator::Exact),
    ];
    let blocking = vec![("phn", BlockKey::Digits), ("lname", BlockKey::Soundex)];
    let rck_matcher = RecordMatcher::new(pairs, rcks, blocking.clone());

    let exact = RecordMatcher::new(
        vec![
            AttributePair::new("fname", attrs::CARD_FN, attrs::BILL_FN, Comparator::Exact),
            AttributePair::new("lname", attrs::CARD_LN, attrs::BILL_LN, Comparator::Exact),
            AttributePair::new("addr", attrs::CARD_ADDR, attrs::BILL_ADDR, Comparator::Exact),
        ],
        vec![RelativeCandidateKey::new(&[
            ("fname", Cmp::Equal),
            ("lname", Cmp::Equal),
            ("addr", Cmp::Equal),
        ])],
        blocking,
    );

    let rck_found = rck_matcher.run(&data.card, &data.billing);
    let exact_found = exact.run(&data.card, &data.billing);
    let rck_q = MatchQuality::score(&rck_found, &data.true_pairs);
    let exact_q = MatchQuality::score(&exact_found, &data.true_pairs);

    println!("\n            precision  recall   f1");
    println!(
        "exact keys     {:.3}    {:.3}  {:.3}",
        exact_q.precision,
        exact_q.recall,
        exact_q.f1()
    );
    println!("derived RCKs   {:.3}    {:.3}  {:.3}", rck_q.precision, rck_q.recall, rck_q.f1());
    assert!(rck_q.recall > exact_q.recall, "RCKs must find matches exact keys miss");
    println!(
        "\nRCKs recover {} pairs the exact matcher misses ✓",
        rck_found.difference(&exact_found).count()
    );
}
