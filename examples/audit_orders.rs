//! Auditing cross-relation consistency with CINDs (§3 of the paper).
//!
//! The book/CD scenario: every audio-book CD order must have a matching
//! `book` row with `format='audio'`. Generates an instance with planted
//! violations, shows the paper's CIND syntax and its SQL encoding, and
//! detects exactly the planted set.
//!
//! ```sh
//! cargo run --example audit_orders
//! ```

use revival::constraints::parser::parse_cinds;
use revival::detect::cind::generate_sql;
use revival::detect::CindDetector;
use revival::dirty::orders::{generate, OrdersConfig};

fn main() {
    let data = generate(&OrdersConfig {
        cds: 5_000,
        extra_books: 2_000,
        audio_fraction: 0.3,
        violation_rate: 0.04,
        seed: 7,
    });
    println!(
        "{} cd tuples, {} book tuples, {} planted violations",
        data.cd.len(),
        data.book.len(),
        data.planted_violations
    );

    // The paper's CIND, in its surface syntax.
    let text = "cd(album, price; genre='a-book') <= book(title, price; format='audio')";
    println!("\nCIND: {text}");
    let cind =
        parse_cinds(text, &[data.cd_schema.clone(), data.book_schema.clone()]).unwrap().remove(0);

    // The SQL a DBMS deployment would run.
    println!("SQL encoding:\n  {}", generate_sql(&cind, &data.cd_schema, &data.book_schema));

    // Detection.
    let report = CindDetector::detect(&cind, &data.cd, &data.book, 0);
    println!("\ndetected {} audio-book CDs without a witness", report.len());
    assert_eq!(report.len(), data.planted_violations);

    // Show a few offenders with their near-miss witnesses.
    for v in report.violations.iter().take(5) {
        if let revival::detect::Violation::CindMissingWitness { tuple, .. } = v {
            let row = data.cd.get(*tuple).unwrap();
            println!("  {}: album={} price={} genre={}", tuple, row[0], row[1], row[2]);
        }
    }
    println!("\naudit complete ✓ (all planted violations found, nothing else)");
}
