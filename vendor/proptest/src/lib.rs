//! Offline vendored subset of the `proptest` 1.x API.
//!
//! This build environment has no crates.io access, so the workspace
//! ships the slice of proptest its tests use: the [`Strategy`] trait
//! with `prop_map` / `prop_recursive` / `boxed`, strategies for integer
//! ranges, `&str` regex-lite patterns, tuples, [`Just`], and
//! `prop::collection::vec`, plus the `proptest!`, `prop_oneof!` and
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with its case number; the
//!   run is seeded deterministically, so re-running reproduces it;
//! * **regex-lite string strategies** — only the subset the tests use
//!   (`[a-z]` classes, `.`, `{m}` / `{m,n}` / `*` / `+` repetition);
//! * `ProptestConfig` carries `cases` only.

use std::rc::Rc;

pub mod test_runner {
    /// Deterministic case-level RNG (SplitMix64 core).
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        pub fn for_case(test: &str, case: u32) -> TestRng {
            // Stable per (test name, case index): failures reproduce.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in test.bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { x: seed ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Run configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

use test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Recursive structures: `f` receives the strategy for the previous
    /// depth level; the base strategy is mixed in at every level.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Clone + Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut cur = self.clone().boxed();
        for _ in 0..depth.max(1) {
            cur = Union { arms: vec![self.clone().boxed(), f(cur).boxed()] }.boxed();
        }
        cur
    }

    /// Type-erase (needed by `prop_oneof!` over heterogeneous arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed arms (`prop_oneof!`).
pub struct Union<T> {
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---- regex-lite string strategies -----------------------------------------

/// One parsed pattern atom plus its repetition bounds.
#[derive(Clone, Debug)]
struct Atom {
    /// Candidate characters (empty = "any printable": drawn from POOL).
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Pool for `.`: printable ASCII (CSV-hostile chars included) + a couple
/// of multibyte characters.
const POOL: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '9', ' ', ',', '"', '\'', ';', '|', '\\', '/',
    '.', '-', '_', '(', ')', '{', '}', '=', '%', 'é', '日',
];

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let mut atom = match chars[i] {
            '[' => {
                let close =
                    chars[i..].iter().position(|&c| c == ']').expect("unclosed [ in pattern") + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).unwrap());
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                Atom { chars: set, min: 1, max: 1 }
            }
            '.' => {
                i += 1;
                Atom { chars: Vec::new(), min: 1, max: 1 }
            }
            c => {
                i += 1;
                Atom { chars: vec![c], min: 1, max: 1 }
            }
        };
        // Optional repetition suffix.
        if i < chars.len() {
            match chars[i] {
                '*' => {
                    atom.min = 0;
                    atom.max = 8;
                    i += 1;
                }
                '+' => {
                    atom.min = 1;
                    atom.max = 8;
                    i += 1;
                }
                '{' => {
                    let close =
                        chars[i..].iter().position(|&c| c == '}').expect("unclosed { in pattern")
                            + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    if let Some((m, n)) = body.split_once(',') {
                        atom.min = m.trim().parse().expect("bad {m,n}");
                        atom.max = n.trim().parse().expect("bad {m,n}");
                    } else {
                        atom.min = body.trim().parse().expect("bad {m}");
                        atom.max = atom.min;
                    }
                    i = close + 1;
                }
                _ => {}
            }
        }
        atoms.push(atom);
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                let c = if atom.chars.is_empty() {
                    POOL[rng.below(POOL.len() as u64) as usize]
                } else {
                    atom.chars[rng.below(atom.chars.len() as u64) as usize]
                };
                out.push(c);
            }
        }
        out
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union { arms: vec![ $( $crate::Strategy::boxed($arm) ),+ ] }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The test harness macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let run = move || $body;
                    run();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("t", 0);
        for _ in 0..200 {
            let v = (0..3u8).generate(&mut rng);
            assert!(v < 3);
            let (a, b) = ((0..3u8), (-3i64..4)).generate(&mut rng);
            assert!(a < 3 && (-3..4).contains(&b));
        }
    }

    #[test]
    fn string_patterns_respect_shape() {
        let mut rng = crate::test_runner::TestRng::for_case("s", 0);
        for _ in 0..200 {
            let s = "[a-c]{1}".generate(&mut rng);
            assert_eq!(s.len(), 1);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let s = "[a-d]{0,10}".generate(&mut rng);
            assert!(s.len() <= 10);
            let _any = ".*".generate(&mut rng);
        }
    }

    #[test]
    fn vec_and_map_and_oneof_compose() {
        let mut rng = crate::test_runner::TestRng::for_case("v", 1);
        let strat = prop::collection::vec(prop_oneof![Just(1u8), (2..4u8).prop_map(|x| x)], 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 1 || (2..4).contains(&x)));
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf(u8),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(v) => usize::from(*v < 3),
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0..3u8).prop_map(T::Leaf);
        let strat = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::for_case("r", 2);
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: binds args and runs bodies.
        fn macro_binds_args(a in 0..5u8, s in "[x-z]{1,2}") {
            prop_assert!(a < 5);
            prop_assert!(!s.is_empty() && s.len() <= 2);
        }
    }
}
