//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This build environment has no crates.io access, so the workspace
//! ships the small slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] extension
//! methods `gen`, `gen_range`, `gen_bool`, and [`prelude::SliceRandom::choose`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — *not* the
//! ChaCha12 stream real `rand` uses, so sequences differ from upstream.
//! Every consumer in this workspace derives its data from explicit
//! seeds, so determinism (which holds) is what matters, not matching
//! upstream streams.

/// Core trait: a source of random `u64`s plus derived sampling helpers.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

/// Types sampleable "from the standard distribution" (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// Deterministic seedable generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`choose`, `shuffle`).
pub trait SliceRandom {
    type Item;
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=4u8);
            assert!((1..=4).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*xs.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
