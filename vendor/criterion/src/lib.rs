//! Offline vendored subset of the `criterion` 0.5 API.
//!
//! No crates.io access in this build environment, so this crate
//! reimplements the slice of criterion the benches use: groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_with_setup`, and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is a plain best-of-N wall clock — no outlier
//! analysis or HTML reports — printed as `group/id  <best> ms (n=N)`.
//!
//! Iteration counts honour `group.sample_size(n)` but are clamped to
//! keep `cargo bench` fast on small CI machines; set
//! `CRITERION_SAMPLES=<n>` to override.

use std::fmt;
use std::time::{Duration, Instant};

/// Hides a value from the optimiser (ports `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let samples =
            std::env::var("CRITERION_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(5);
        Criterion { samples }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { c: self, name: name.to_string(), samples: None }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.samples, &mut f);
        self
    }
}

/// A named benchmark id, optionally parameterised.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{}/{}", name.into(), param) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        // Keep wall time bounded: criterion's default of 100 samples is
        // overkill for a wall-clock shim.
        self.samples.unwrap_or(self.c.samples).min(self.c.samples)
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.effective_samples(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.effective_samples();
        run_one(&full, samples, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher { best: None, iters: 0 };
    for _ in 0..samples.max(1) {
        f(&mut b);
    }
    let best = b.best.unwrap_or_default();
    println!("bench {id}  {:.3} ms (n={})", best.as_secs_f64() * 1e3, b.iters);
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    best: Option<Duration>,
    iters: u64,
}

impl Bencher {
    fn record(&mut self, d: Duration) {
        self.iters += 1;
        if self.best.is_none_or(|b| d < b) {
            self.best = Some(d);
        }
    }

    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.record(start.elapsed());
    }

    pub fn iter_with_setup<S, T, Setup: FnMut() -> S, F: FnMut(S) -> T>(
        &mut self,
        mut setup: Setup,
        mut routine: F,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.record(start.elapsed());
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("p", 7), &7, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert_eq!(runs, 2);
    }

    #[test]
    fn iter_with_setup_passes_input() {
        let mut b = Bencher { best: None, iters: 0 };
        b.iter_with_setup(|| 21, |x| assert_eq!(x * 2, 42));
        assert_eq!(b.iters, 1);
        assert!(b.best.is_some());
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("native", 100).to_string(), "native/100");
    }
}
