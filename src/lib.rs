//! # revival
//!
//! Facade crate for the `revival` data-cleaning stack — a Rust
//! implementation of the systems surveyed in *"A Revival of Integrity
//! Constraints for Data Cleaning"* (Fan, Geerts, Jia — VLDB 2008).
//!
//! Each member crate is re-exported as a module:
//!
//! * [`relation`] — relational substrate + SQL subset engine;
//! * [`constraints`] — FDs, CFDs (incl. eCFD patterns), INDs, CINDs,
//!   parsing, and static analyses;
//! * [`detect`] — native / SQL-based / incremental / parallel violation
//!   detection, unified behind the [`detect::Detector`] engine trait;
//! * [`repair`] — cost-based BatchRepair and IncRepair;
//! * [`matching`] — similarity ops, matching rules, RCK derivation,
//!   record matcher;
//! * [`cqa`] — consistent query answering (certain answers, range
//!   aggregates);
//! * [`discovery`] — the `DiscoveryEngine` layer (parallel approximate
//!   TANE/CTANE lattice, CFDMiner, IND/CIND lifting, suite vetting);
//! * [`dirty`] — seeded workload generators with ground truth.
//!
//! ## Example
//!
//! ```
//! use revival::prelude::*;
//!
//! let schema = Schema::builder("customer")
//!     .attr("cc", Type::Str).attr("zip", Type::Str).attr("street", Type::Str)
//!     .build();
//! let mut t = Table::new(schema.clone());
//! t.push(vec!["44".into(), "EH8".into(), "Crichton".into()]).unwrap();
//! t.push(vec!["44".into(), "EH8".into(), "Mayfield".into()]).unwrap();
//!
//! let cfds = parse_cfds("customer([cc='44', zip] -> [street])", &schema).unwrap();
//! let report = NativeDetector::new(&t).detect_all(&cfds);
//! assert_eq!(report.len(), 1);
//!
//! // The same detection through the engine layer: any engine, one API.
//! let job = DetectJob::on_table(&t, &cfds);
//! assert_eq!(NativeEngine.run(&job).unwrap(), report);
//! assert_eq!(ParallelEngine::new(4).run(&job).unwrap(), report);
//!
//! // Repair shards the same way (`with_jobs`): the repaired table and
//! // stats are byte-identical at any shard count.
//! let (fixed, stats) =
//!     BatchRepair::new(&cfds, CostModel::uniform(3)).with_jobs(2).repair(&t).unwrap();
//! assert_eq!(stats.residual_violations, 0);
//! assert!(revival::detect::native::satisfies(&fixed, &cfds));
//! ```

pub use revival_constraints as constraints;
pub use revival_cqa as cqa;
pub use revival_detect as detect;
pub use revival_dirty as dirty;
pub use revival_discovery as discovery;
pub use revival_matching as matching;
pub use revival_relation as relation;
pub use revival_repair as repair;
pub use revival_stream as stream;

/// One-stop imports for the common workflow: build tables, parse
/// constraints, detect, repair.
pub mod prelude {
    pub use revival_constraints::parser::{parse_cfds, parse_cinds};
    pub use revival_constraints::{Cfd, Cind, Fd, PatternRow, PatternValue};
    pub use revival_detect::{
        engine_by_name, CindDetector, CindEngine, DetectJob, Detector, IncrementalDetector,
        IncrementalEngine, NativeDetector, NativeEngine, ParallelDetector, ParallelEngine,
        SqlEngine, Violation, ViolationReport,
    };
    pub use revival_discovery::{
        DiscoverJob, DiscoverOptions, DiscoveryEngine, ParallelDiscovery, SequentialDiscovery,
    };
    pub use revival_relation::{Catalog, Expr, Schema, Table, TupleId, Type, Value};
    pub use revival_repair::{BatchRepair, CostModel, IncRepair};
    pub use revival_stream::{DeltaOp, DeltaSession};
}
