//! Crash-recovery parity: a WAL-backed [`ShardedSession`] driven
//! through a random interleaving of register/append/delete/update,
//! then dropped *without* shutdown or checkpoint (the in-process
//! `kill -9`), must reopen from `--state DIR` into exactly the state a
//! mirror [`DeltaSession`] reached by applying the same ops — same
//! tables cell-for-cell, same violation count, and the count must
//! match fresh batch detection on the restored tables. At 1 and 3
//! shards, so both the trivial ring and real cross-shard routing are
//! covered.

use proptest::prelude::*;
use rand::prelude::*;
use revival::detect::{DetectJob, Detector, NativeEngine};
use revival::stream::{DeltaSession, Request, ServeOptions, ShardedSession};
use revival_constraints::parser::parse_cfds;
use revival_relation::{csv, TupleId, Value};

const TABLES: [&str; 3] = ["orders", "customer", "stock"];
const CCS: [&str; 2] = ["uk", "us"];
const ZIPS: [&str; 3] = ["EH8", "07974", "G1"];
const STREETS: [&str; 3] = ["Crichton", "Mayfield", "MtnAve"];
const CITIES: [&str; 3] = ["edi", "mh", "nyc"];
const ATTRS: [&str; 4] = ["cc", "zip", "street", "city"];

/// The seed CSV every table registers with (`cc` stays `Str`: no pool
/// value parses as a number, so inference can't diverge from the
/// mirror's `Value::from(&str)` updates).
const SEED_CSV: &str = "cc,zip,street,city\nuk,EH8,Crichton,edi\n";

fn suite_for(table: &str) -> String {
    format!("{table}([cc='uk', zip] -> [street])\n{table}([zip] -> [city])")
}

fn random_row(rng: &mut StdRng) -> String {
    format!(
        "{},{},{},{}",
        CCS.choose(rng).unwrap(),
        ZIPS.choose(rng).unwrap(),
        STREETS.choose(rng).unwrap(),
        CITIES.choose(rng).unwrap(),
    )
}

fn value_for(attr: usize, rng: &mut StdRng) -> &'static str {
    match attr {
        0 => CCS.choose(rng).unwrap(),
        1 => ZIPS.choose(rng).unwrap(),
        2 => STREETS.choose(rng).unwrap(),
        _ => CITIES.choose(rng).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Dropping the tier mid-stream loses nothing acked: the WAL alone
    /// (the boot checkpoint predates every op) rebuilds the exact
    /// pre-crash state.
    fn random_interleavings_survive_crash_and_replay(
        nops in 1usize..80,
        seed in 0u64..1_000,
    ) {
        for shards in [1usize, 3] {
            let dir = std::env::temp_dir().join(format!(
                "revival_wal_prop_{shards}_{nops}_{seed}_{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let opts = ServeOptions {
                jobs: 1,
                shards,
                wal: true,
                state: Some(dir.clone()),
                ..ServeOptions::default()
            };
            let (tier, summary) = ShardedSession::open(&opts).unwrap();
            prop_assert_eq!(summary.relations, 0);

            // The mirror applies the same logical ops directly; the
            // tier must replay back into agreement with it.
            let mut mirror = DeltaSession::new(1);
            let mut rng = StdRng::seed_from_u64(seed ^ (shards as u64) << 32);
            let mut live: Vec<(String, u64)> = Vec::new();
            for table in TABLES {
                let resp = tier.handle(&Request::Register {
                    table: table.into(),
                    csv: SEED_CSV.into(),
                    cfds: suite_for(table),
                    merged: false,
                });
                prop_assert!(resp.is_ok(), "register {}: {:?}", table, resp);
                let parsed = csv::read_table_infer(table, SEED_CSV).unwrap();
                let cfds = parse_cfds(&suite_for(table), parsed.schema()).unwrap();
                mirror.register(parsed, cfds).unwrap();
                live.extend(mirror.table(table).unwrap().tuple_ids().map(|id| (table.to_string(), id.0)));
            }

            for i in 0..nops {
                let table = TABLES.choose(&mut rng).unwrap().to_string();
                match rng.gen_range(0..100) {
                    0..=59 => {
                        let row = random_row(&mut rng);
                        let resp = tier.handle(&Request::Append {
                            table: table.clone(),
                            row: row.clone(),
                        });
                        prop_assert!(resp.is_ok(), "append #{}: {:?}", i, resp);
                        let values: Vec<Value> = row.split(',').map(Value::from).collect();
                        let id = mirror.insert(&table, values).unwrap();
                        // Same ops in the same order allocate the same
                        // ids on both sides — the WAL relies on that
                        // determinism to make replayed lines mean what
                        // they meant pre-crash.
                        prop_assert_eq!(resp.int("tuple"), Some(id.0 as i64));
                        live.push((table, id.0));
                    }
                    60..=79 if !live.is_empty() => {
                        let at = rng.gen_range(0..live.len());
                        let (table, tuple) = live.swap_remove(at);
                        let resp = tier.handle(&Request::Delete { table: table.clone(), tuple });
                        prop_assert!(resp.is_ok(), "delete #{}: {:?}", i, resp);
                        mirror.delete(&table, TupleId(tuple)).unwrap();
                    }
                    _ if !live.is_empty() => {
                        let (table, tuple) = live.choose(&mut rng).unwrap().clone();
                        let attr = rng.gen_range(0..ATTRS.len());
                        let value = value_for(attr, &mut rng);
                        let resp = tier.handle(&Request::Update {
                            table: table.clone(),
                            tuple,
                            attr: ATTRS[attr].into(),
                            value: value.into(),
                        });
                        prop_assert!(resp.is_ok(), "update #{}: {:?}", i, resp);
                        mirror.update(&table, TupleId(tuple), attr, value.into()).unwrap();
                    }
                    _ => {}
                }
            }
            let before = tier.handle(&Request::Count { replica: false });
            prop_assert!(before.is_ok());
            drop(tier); // no shutdown, no checkpoint: the crash

            let (tier, summary) = ShardedSession::open(&opts).unwrap();
            prop_assert_eq!(summary.replay_errors, 0, "acked lines must re-execute");
            prop_assert_eq!(summary.torn_bytes, 0);
            prop_assert!(summary.replayed >= TABLES.len(), "registers live in the WAL");

            let after = tier.handle(&Request::Count { replica: false });
            prop_assert_eq!(
                after.int("violations"), before.int("violations"),
                "violation count must survive the crash"
            );
            prop_assert_eq!(after.int("violations"), Some(mirror.violation_count().unwrap() as i64));

            // Cell-for-cell table parity, and the count re-derived by
            // fresh batch detection over the restored tables.
            let mut batch = 0usize;
            for table in TABLES {
                let shard = tier.shard(tier.route(table));
                let session = shard.session().read().unwrap();
                let restored = session.table(table).unwrap();
                let mirrored = mirror.table(table).unwrap();
                prop_assert_eq!(restored.len(), mirrored.len(), "{} row count", table);
                prop_assert_eq!(restored.diff_cells(mirrored), 0, "{} cells", table);
                let cfds = parse_cfds(&suite_for(table), restored.schema()).unwrap();
                batch += NativeEngine.run(&DetectJob::on_table(restored, &cfds)).unwrap().len();
            }
            prop_assert_eq!(after.int("violations"), Some(batch as i64));

            drop(tier);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    /// Group commit keeps acked-implies-durable: concurrent writers
    /// share fsyncs through a gather window, the tier is dropped
    /// mid-stream without shutdown, and a garbage half-frame is
    /// appended to the hot shard's log (the torn batch a real crash
    /// leaves). Reopen must replay every acked append cell-for-cell,
    /// tolerate the torn tail without panicking, and report it.
    fn group_commit_crash_preserves_every_acked_op(
        ops_per_client in 4usize..24,
        seed in 0u64..1_000,
        clients_idx in 0usize..2,
    ) {
        let clients = [1usize, 4][clients_idx];
        for shards in [1usize, 3] {
            let dir = std::env::temp_dir().join(format!(
                "revival_wal_group_prop_{shards}_{clients}_{ops_per_client}_{seed}_{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let opts = ServeOptions {
                jobs: 1,
                shards,
                wal: true,
                state: Some(dir.clone()),
                wal_group_max_wait_us: 200,
                ..ServeOptions::default()
            };
            let (tier, _) = ShardedSession::open(&opts).unwrap();
            let resp = tier.handle(&Request::Register {
                table: "hot".into(),
                csv: SEED_CSV.into(),
                cfds: suite_for("hot"),
                merged: false,
            });
            prop_assert!(resp.is_ok(), "register hot: {:?}", resp);

            // Concurrent clients over one shared table: every append a
            // client sees acked goes into its ledger with the tuple id
            // the ack carried.
            let tier = std::sync::Arc::new(tier);
            let joins: Vec<_> = (0..clients)
                .map(|c| {
                    let tier = std::sync::Arc::clone(&tier);
                    std::thread::spawn(move || {
                        let mut acked: Vec<(u64, String)> = Vec::new();
                        for i in 0..ops_per_client {
                            let row = format!("c{c}i{i},EH8,Crichton,edi");
                            let resp = tier.handle(&Request::Append {
                                table: "hot".into(),
                                row: row.clone(),
                            });
                            let tuple = resp
                                .int("tuple")
                                .unwrap_or_else(|| panic!("append not acked: {resp:?}"));
                            acked.push((tuple as u64, row));
                        }
                        acked
                    })
                })
                .collect();
            let mut acked: Vec<(u64, String)> = Vec::new();
            for join in joins {
                acked.extend(join.join().expect("client thread"));
            }
            drop(tier); // no shutdown, no checkpoint: the crash

            // A real crash can also tear the final batch mid-write.
            // Fake one: a frame header claiming 200 payload bytes with
            // only 20 behind it, appended to the hot shard's log.
            let wal_path = (0..shards)
                .map(|i| dir.join(format!("wal-{i}.log")))
                .find(|p| p.metadata().map(|m| m.len() > 0).unwrap_or(false))
                .expect("one shard logged the hot table");
            {
                use std::io::Write;
                let mut file = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&wal_path)
                    .unwrap();
                let mut torn = Vec::new();
                torn.extend_from_slice(&200u32.to_le_bytes());
                torn.extend_from_slice(&0u64.to_le_bytes());
                torn.extend_from_slice(&[0xAB; 20]);
                file.write_all(&torn).unwrap();
            }

            let (tier, summary) = ShardedSession::open(&opts).unwrap();
            prop_assert_eq!(summary.replay_errors, 0, "acked lines must re-execute");
            prop_assert!(summary.torn_bytes > 0, "the torn tail must be reported");
            prop_assert_eq!(
                summary.replayed,
                1 + acked.len(),
                "register + every acked append replays"
            );

            // Stage order is apply order, so replay reassigns each
            // acked tuple id to the same row.
            let shard = tier.shard(tier.route("hot"));
            let session = shard.session().read().unwrap();
            let restored = session.table("hot").unwrap();
            for (tuple, row) in &acked {
                let cells = restored.get(TupleId(*tuple)).unwrap_or_else(|e| {
                    panic!("acked tuple {tuple} lost in replay: {e}")
                });
                let expect: Vec<Value> = row.split(',').map(Value::from).collect();
                prop_assert_eq!(&cells, &expect, "tuple {} cells", tuple);
            }
            drop(session);

            drop(tier);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
