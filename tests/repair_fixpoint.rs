//! Repair fixpoint: once `BatchRepair` converges (zero residual
//! violations), *every* detection engine behind the `Detector` trait —
//! native, sql, incremental, parallel — must report zero violations on
//! the repaired table. This ties repair correctness back to the engine
//! layer: the repairer's internal oracle (the same engine layer it
//! detects through) cannot disagree with any externally-selectable
//! engine.

use proptest::prelude::*;
use revival::detect::{engine_by_name, DetectJob};
use revival::dirty::customer::{attrs, generate, standard_cfds, CustomerConfig};
use revival::dirty::noise::{inject, NoiseConfig};
use revival::repair::{BatchRepair, CostModel};

const ENGINES: [&str; 4] = ["native", "sql", "incremental", "parallel"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sequential and sharded repairs both reach a state every engine
    /// certifies clean.
    #[test]
    fn all_engines_certify_repaired_tables_clean(
        rows in 30usize..160,
        noise_pct in 1usize..10,
        seed in 0u64..400,
        jobs in 1usize..5,
    ) {
        let data = generate(&CustomerConfig { rows, seed, ..Default::default() });
        let ds = inject(
            &data.table,
            &NoiseConfig::new(
                noise_pct as f64 / 100.0,
                vec![attrs::STREET, attrs::CITY, attrs::ZIP],
                seed ^ 0xf1f0,
            ),
        );
        let cfds = standard_cfds(&data.schema);
        let repairer = BatchRepair::new(&cfds, CostModel::uniform(data.schema.arity()))
            .with_jobs(jobs);
        let (fixed, stats) = repairer.repair(&ds.dirty).expect("repair");
        prop_assert_eq!(stats.residual_violations, 0, "repair must converge");
        // The original (unmerged) suite through every engine: all clean.
        let job = DetectJob::on_table(&fixed, &cfds);
        for name in ENGINES {
            let report = engine_by_name(name, 3).unwrap().run(&job).unwrap();
            prop_assert!(
                report.is_empty(),
                "engine {} still sees {} violation(s) after repair (jobs={})",
                name, report.len(), jobs
            );
        }
    }
}

/// Deterministic spot check including the merged suite and a dirtier
/// workload than the property test's ranges.
#[test]
fn heavy_noise_fixpoint_certified_by_all_engines() {
    let data = generate(&CustomerConfig { rows: 400, seed: 3, ..Default::default() });
    let ds = inject(
        &data.table,
        &NoiseConfig::new(0.15, vec![attrs::STREET, attrs::CITY, attrs::ZIP], 77),
    );
    let cfds = standard_cfds(&data.schema);
    let repairer = BatchRepair::new(&cfds, CostModel::uniform(data.schema.arity())).with_jobs(4);
    let (fixed, stats) = repairer.repair(&ds.dirty).expect("repair");
    assert_eq!(stats.residual_violations, 0);
    assert!(stats.cells_changed > 0, "15% noise must force edits");
    // Both the original suite and the merged suite the repairer actually
    // enforced come back clean from every engine.
    let merged = repairer.cfds().to_vec();
    for suite in [&cfds, &merged] {
        let job = DetectJob::on_table(&fixed, suite);
        for name in ENGINES {
            let report = engine_by_name(name, 4).unwrap().run(&job).unwrap();
            assert!(report.is_empty(), "engine {name}: {report}");
        }
    }
}
