//! Cross-engine parity: on generated dirty-customer data, every
//! detection engine behind the [`Detector`] trait must report the same
//! violations for the same CFD suite — and the parallel engine must
//! match the sequential reference *byte for byte*, at any shard count.

use proptest::prelude::*;
use revival::detect::Detector;
use revival::detect::{engine_by_name, DetectJob, NativeEngine, ParallelEngine};
use revival::dirty::customer::{attrs, generate, standard_cfds, CustomerConfig};
use revival::dirty::noise::{inject, NoiseConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Native, SQL-gen, incremental and parallel detectors report
    /// identical violation sets on arbitrary dirty-customer workloads.
    fn engines_report_identical_violation_sets(
        rows in 40usize..320,
        noise_pct in 0usize..12,
        seed in 0u64..1_000,
        jobs in 2usize..6,
    ) {
        let data = generate(&CustomerConfig { rows, seed, ..Default::default() });
        let ds = inject(
            &data.table,
            &NoiseConfig::new(
                noise_pct as f64 / 100.0,
                vec![attrs::STREET, attrs::CITY, attrs::ZIP],
                seed ^ 0xbead,
            ),
        );
        let cfds = standard_cfds(&data.schema);
        let job = DetectJob::on_table(&ds.dirty, &cfds);

        let reference = NativeEngine.run(&job).unwrap();
        for name in ["sql", "incremental", "parallel"] {
            let mut got = engine_by_name(name, jobs).unwrap().run(&job).unwrap();
            got.normalize();
            let mut want = reference.clone();
            want.normalize();
            prop_assert_eq!(
                got.violating_tuples(),
                want.violating_tuples(),
                "engine {} implicates different tuples", name
            );
            prop_assert_eq!(got, want, "engine {} reports different violations", name);
        }

        // Stronger property for the sharded engine: the merged report is
        // byte-identical to the sequential one without normalisation.
        let parallel = ParallelEngine::new(jobs).run(&job).unwrap();
        prop_assert_eq!(format!("{}", &parallel), format!("{}", &reference));
        prop_assert_eq!(parallel, reference);
    }

    /// Merged-tableau execution (`DetectJob::merged`) reports exactly
    /// the unmerged violation set, on every engine and shard count —
    /// including suites where merging actually folds tableaux (the
    /// random tail duplicates CFDs and re-derives them as plain FDs, so
    /// embedded FDs repeat and rows dedupe).
    fn merged_runs_match_unmerged_across_engines(
        rows in 40usize..240,
        noise_pct in 0usize..12,
        seed in 0u64..1_000,
        dup in 0usize..5,
    ) {
        let data = generate(&CustomerConfig { rows, seed, ..Default::default() });
        let ds = inject(
            &data.table,
            &NoiseConfig::new(
                noise_pct as f64 / 100.0,
                vec![attrs::STREET, attrs::CITY, attrs::ZIP],
                seed ^ 0xfeed,
            ),
        );
        let mut cfds = standard_cfds(&data.schema);
        // Force real merging: repeat a suite member verbatim and add an
        // overlapping embedded FD with a different tableau row.
        let base = cfds.len();
        cfds.push(cfds[dup % base].clone());
        cfds.push(revival::constraints::Cfd::from_fd(&data.schema, &["zip"], "city").unwrap());
        let job = DetectJob::on_table(&ds.dirty, &cfds);

        let mut want = NativeEngine.run(&job).unwrap();
        want.normalize();
        for name in ["native", "sql", "incremental", "parallel"] {
            for jobs in [1usize, 4] {
                let engine = engine_by_name(name, jobs).unwrap();
                let mut got = engine.run(&job.merged(true)).unwrap();
                got.normalize();
                prop_assert_eq!(
                    &got, &want,
                    "engine {} at jobs={} diverges under --merged", name, jobs
                );
            }
        }
        // Merged native and merged parallel also agree byte-for-byte,
        // like their unmerged counterparts.
        let native = NativeEngine.run(&job.merged(true)).unwrap();
        let parallel = ParallelEngine::new(4).run(&job.merged(true)).unwrap();
        prop_assert_eq!(format!("{}", &native), format!("{}", &parallel));
    }
}
