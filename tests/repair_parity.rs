//! Repair parity: the sharded `BatchRepair` engine must produce exactly
//! the sequential result — repaired table *and* `RepairStats`
//! byte-for-byte — on generated dirty customer and hospital workloads,
//! at any shard count. This is the repair counterpart of
//! `cross_engine_parity`: detection shards through the `Detector`
//! engine layer and equivalence-class resolution shards its per-class
//! cost scans, so any nondeterminism in either merge would surface here
//! as a diverging cell or statistic.

use proptest::prelude::*;
use revival::dirty::noise::{inject, NoiseConfig};
use revival::dirty::{customer, hospital};
use revival::relation::{csv, Table};
use revival::repair::{BatchRepair, CostModel, RepairStats};

/// Repair `dirty` sequentially and at `jobs ∈ {2, 4}` shards; assert
/// all three runs agree byte-for-byte.
fn assert_shard_parity(dirty: &Table, cfds: &[revival::constraints::Cfd]) -> (Table, RepairStats) {
    let arity = dirty.schema().arity();
    let (seq_table, seq_stats) =
        BatchRepair::new(cfds, CostModel::uniform(arity)).repair(dirty).expect("sequential repair");
    let seq_bytes = csv::write_table(&seq_table);
    for jobs in [2usize, 4] {
        let (sharded_table, sharded_stats) = BatchRepair::new(cfds, CostModel::uniform(arity))
            .with_jobs(jobs)
            .repair(dirty)
            .expect("sharded repair");
        assert_eq!(sharded_stats, seq_stats, "RepairStats diverge from sequential at jobs={jobs}");
        assert_eq!(sharded_table.diff_cells(&seq_table), 0, "cells diverge at jobs={jobs}");
        assert_eq!(
            csv::write_table(&sharded_table),
            seq_bytes,
            "serialised table diverges at jobs={jobs}"
        );
    }
    (seq_table, seq_stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Customer workloads: arbitrary size, noise level, and seed.
    #[test]
    fn sharded_repair_matches_sequential_on_customer(
        rows in 30usize..180,
        noise_pct in 0usize..12,
        seed in 0u64..500,
    ) {
        let data = customer::generate(&customer::CustomerConfig { rows, seed, ..Default::default() });
        let ds = inject(
            &data.table,
            &NoiseConfig::new(
                noise_pct as f64 / 100.0,
                vec![customer::attrs::STREET, customer::attrs::CITY, customer::attrs::ZIP],
                seed ^ 0xfeed,
            ),
        );
        let cfds = customer::standard_cfds(&data.schema);
        let (fixed, stats) = assert_shard_parity(&ds.dirty, &cfds);
        prop_assert_eq!(stats.residual_violations, 0);
        prop_assert!(cfds.iter().all(|c| c.satisfied_by(&fixed)));
    }

    /// Hospital workloads: the second canonical CFD dataset, with its
    /// wider schema and multi-RHS provider dependency.
    #[test]
    fn sharded_repair_matches_sequential_on_hospital(
        rows in 40usize..200,
        noise_pct in 0usize..8,
        seed in 0u64..500,
    ) {
        let data = hospital::generate(&hospital::HospitalConfig {
            rows,
            providers: 20,
            measures: 8,
            seed,
            ..Default::default()
        });
        let ds = inject(
            &data.table,
            &NoiseConfig::new(
                noise_pct as f64 / 100.0,
                vec![
                    hospital::attrs::STATE,
                    hospital::attrs::MEASURE_NAME,
                    hospital::attrs::HNAME,
                ],
                seed ^ 0x405b,
            ),
        );
        let cfds = hospital::standard_cfds(&data.schema);
        let (fixed, stats) = assert_shard_parity(&ds.dirty, &cfds);
        prop_assert_eq!(stats.residual_violations, 0);
        prop_assert!(cfds.iter().all(|c| c.satisfied_by(&fixed)));
    }
}
