//! eCFD extension tests — disequality and disjunction patterns
//! (Bravo, Fan, Geerts, Ma — ICDE 2008; reference [3] of the tutorial).
//!
//! Exercised across the stack: parsing, native detection, SQL-based
//! detection (parity), static analysis, and repair.

use revival::constraints::analysis::{implies, is_satisfiable, Outcome, DEFAULT_BUDGET};
use revival::constraints::parser::{cfd_to_text, parse_cfds};
use revival::constraints::PatternValue;
use revival::detect::sqlgen::detect_sql;
use revival::detect::NativeDetector;
use revival::relation::{Schema, Table, Type};
use revival::repair::{BatchRepair, CostModel};

fn schema() -> Schema {
    Schema::builder("orders")
        .attr("country", Type::Str)
        .attr("region", Type::Str)
        .attr("tax", Type::Str)
        .attr("carrier", Type::Str)
        .build()
}

fn table(rows: &[[&str; 4]]) -> Table {
    let mut t = Table::new(schema());
    for r in rows {
        t.push(r.iter().map(|x| (*x).into()).collect()).unwrap();
    }
    t
}

#[test]
fn parse_disequality_and_disjunction() {
    let s = schema();
    let cfds = parse_cfds(
        "orders([country!='us', region] -> [tax])\n\
         orders([country in ('fr','de')] -> [carrier='dhl'])",
        &s,
    )
    .unwrap();
    assert_eq!(cfds.len(), 2);
    assert_eq!(cfds[0].tableau[0].lhs[0], PatternValue::NotConst("us".into()));
    assert!(cfds[0].tableau[0].lhs[1].is_wildcard());
    assert_eq!(cfds[1].tableau[0].lhs[0], PatternValue::one_of(["fr".into(), "de".into()]));
    assert_eq!(cfds[1].tableau[0].rhs, PatternValue::Const("dhl".into()));
}

#[test]
fn roundtrip_surface_syntax() {
    let s = schema();
    let text = "orders([country!='us', region] -> [tax])\n";
    let cfds = parse_cfds(text, &s).unwrap();
    assert_eq!(cfd_to_text(&cfds[0], &s), text);
    let text = "orders([country in ('de', 'fr')] -> [carrier='dhl'])\n";
    let cfds = parse_cfds(text, &s).unwrap();
    assert_eq!(cfd_to_text(&cfds[0], &s), text);
}

#[test]
fn disequality_guard_scopes_the_fd() {
    // Outside the US (country != 'us'), region determines tax.
    let s = schema();
    let cfds = parse_cfds("orders([country!='us', region] -> [tax])", &s).unwrap();
    let t = table(&[
        ["fr", "idf", "20", "dhl"],
        ["fr", "idf", "19", "ups"], // violates: same non-us region, diff tax
        ["us", "ca", "7.25", "usps"],
        ["us", "ca", "9.5", "fedex"], // fine: guard excludes us
    ]);
    let report = NativeDetector::new(&t).detect_all(&cfds);
    assert_eq!(report.len(), 1);
    let tuples = report.violating_tuples();
    assert!(tuples.contains(&revival::relation::TupleId(0)));
    assert!(!tuples.contains(&revival::relation::TupleId(2)));
}

#[test]
fn disjunction_guard_and_rhs() {
    // EU orders ship with dhl; tax must be one of the EU rates.
    let s = schema();
    let cfds = parse_cfds(
        "orders([country in ('fr','de')] -> [carrier='dhl'])\n\
         orders([country in ('fr','de')] -> [tax in ('19','20')])",
        &s,
    )
    .unwrap();
    let t = table(&[
        ["fr", "idf", "20", "dhl"], // ok
        ["de", "by", "19", "ups"],  // carrier violation
        ["fr", "idf", "7", "dhl"],  // tax-disjunction violation
        ["us", "ca", "7", "usps"],  // guard does not apply
    ]);
    let report = NativeDetector::new(&t).detect_all(&cfds);
    assert_eq!(report.len(), 2);
    assert_eq!(report.violating_tuples().len(), 2);
}

#[test]
fn rhs_disequality_detects_forbidden_value() {
    // Non-us orders must not use usps.
    let s = schema();
    let cfds = parse_cfds("orders([country!='us'] -> [carrier!='usps'])", &s).unwrap();
    let t = table(&[
        ["fr", "idf", "20", "usps"], // violation
        ["fr", "idf", "20", "dhl"],
        ["us", "ca", "7", "usps"], // guard excludes
    ]);
    let report = NativeDetector::new(&t).detect_all(&cfds);
    assert_eq!(report.len(), 1);
}

#[test]
fn sql_detection_agrees_on_ecfds() {
    let s = schema();
    let cfds = parse_cfds(
        "orders([country!='us', region] -> [tax])\n\
         orders([country in ('fr','de')] -> [carrier='dhl'])\n\
         orders([country!='us'] -> [carrier!='usps'])",
        &s,
    )
    .unwrap();
    let t = table(&[
        ["fr", "idf", "20", "usps"],
        ["fr", "idf", "19", "dhl"],
        ["de", "by", "19", "ups"],
        ["us", "ca", "7", "usps"],
        ["jp", "kanto", "10", "yamato"],
    ]);
    let mut native = NativeDetector::new(&t).detect_all(&cfds);
    let mut sql = detect_sql(&t, &cfds).unwrap();
    native.normalize();
    sql.normalize();
    assert_eq!(native, sql);
    assert!(!native.is_empty());
}

#[test]
fn generated_sql_uses_in_and_not_in() {
    use revival::detect::sqlgen::generate;
    let s = schema();
    let cfds = parse_cfds("orders([country in ('fr','de')] -> [tax in ('19','20')])", &s).unwrap();
    let q = generate(&cfds[0], &s);
    let text = &q.constant[0].1;
    assert!(text.contains("country IN ('de', 'fr')"), "got {text}");
    assert!(text.contains("tax NOT IN ('19', '20')"), "got {text}");
}

#[test]
fn static_analysis_handles_ecfd_patterns() {
    let s = schema();
    // Satisfiable: pick country='us' (escapes both guards) — or any
    // fresh country with carrier dhl and tax 19.
    let suite = parse_cfds(
        "orders([country!='us'] -> [carrier='dhl'])\n\
         orders([country!='us'] -> [carrier='ups'])",
        &s,
    )
    .unwrap();
    assert_eq!(is_satisfiable(&s, &suite, DEFAULT_BUDGET), Outcome::Yes);

    // Force the guard with a OneOf wildcard-free chain: every order is
    // fr or de, and both carriers are forced → unsatisfiable.
    let forced = parse_cfds(
        "orders([region] -> [country in ('fr','de')])\n\
         orders([country in ('fr','de')] -> [carrier='dhl'])\n\
         orders([country in ('fr','de')] -> [carrier='ups'])",
        &s,
    )
    .unwrap();
    // Hmm: country ∈ {fr,de} forces carrier dhl AND ups → contradiction;
    // and every tuple's country is forced into the set.
    assert_eq!(is_satisfiable(&s, &forced, DEFAULT_BUDGET), Outcome::No);

    // Implication: ≠us guard implies the weaker fr-only guard.
    let sigma = parse_cfds("orders([country!='us', region] -> [tax])", &s).unwrap();
    let phi = parse_cfds("orders([country='fr', region] -> [tax])", &s).unwrap();
    assert_eq!(implies(&s, &sigma, &phi[0], DEFAULT_BUDGET), Outcome::Yes);
    // The converse fails.
    let sigma2 = parse_cfds("orders([country='fr', region] -> [tax])", &s).unwrap();
    let phi2 = parse_cfds("orders([country!='us', region] -> [tax])", &s).unwrap();
    assert_eq!(implies(&s, &sigma2, &phi2[0], DEFAULT_BUDGET), Outcome::No);
}

#[test]
fn repair_resolves_ecfd_violations() {
    let s = schema();
    let cfds = parse_cfds(
        "orders([country in ('fr','de')] -> [carrier='dhl'])\n\
         orders([country!='us'] -> [tax in ('10','19','20')])",
        &s,
    )
    .unwrap();
    let t = table(&[
        ["fr", "idf", "20", "ups"], // carrier must become dhl
        ["de", "by", "7", "dhl"],   // tax must enter the allowed set
        ["us", "ca", "7", "usps"],  // untouched
    ]);
    let repairer = BatchRepair::new(&cfds, CostModel::uniform(4));
    let (fixed, stats) = repairer.repair(&t).unwrap();
    assert_eq!(stats.residual_violations, 0);
    assert!(revival::detect::native::satisfies(&fixed, &cfds));
    // The US row is untouched.
    let us_row = fixed.get(revival::relation::TupleId(2)).unwrap();
    assert_eq!(us_row[3], "usps".into());
}
