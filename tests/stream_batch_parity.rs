//! Stream/batch parity: a [`DeltaSession`] driven through a random
//! interleaving of inserts, deletes, updates and burst batches must end
//! with exactly the violations every batch engine reports on the final
//! table — at 1 and 4 shards (the shard count steers the session's
//! burst-rescan fallback). Reports are compared after normalisation
//! (the canonical order shared by all engines).

use proptest::prelude::*;
use rand::prelude::*;
use revival::detect::{engine_by_name, DetectJob};
use revival::stream::{ApplyPath, DeltaOp, DeltaSession};
use revival_relation::{Schema, Table, TupleId, Type, Value};

const CCS: [&str; 2] = ["44", "01"];
const ZIPS: [&str; 3] = ["EH8", "07974", "G1"];
const STREETS: [&str; 3] = ["Crichton", "Mayfield", "MtnAve"];
const CITIES: [&str; 3] = ["edi", "mh", "nyc"];

fn schema() -> Schema {
    Schema::builder("customer")
        .attr("cc", Type::Str)
        .attr("zip", Type::Str)
        .attr("street", Type::Str)
        .attr("city", Type::Str)
        .build()
}

fn random_row(rng: &mut StdRng) -> Vec<Value> {
    vec![
        Value::from(*CCS.choose(rng).unwrap()),
        Value::from(*ZIPS.choose(rng).unwrap()),
        Value::from(*STREETS.choose(rng).unwrap()),
        Value::from(*CITIES.choose(rng).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random edit interleavings leave the session byte-identical (after
    /// normalisation) to batch detection on the final table, across all
    /// four engines and at jobs ∈ {1, 4}.
    fn random_interleavings_match_batch_detection(
        base_rows in 0usize..30,
        nops in 1usize..120,
        seed in 0u64..1_000,
    ) {
        let s = schema();
        let cfds = revival_constraints::parser::parse_cfds(
            "customer([cc='44', zip] -> [street])\n\
             customer([cc='01', zip='07974'] -> [city='mh'])\n\
             customer([zip] -> [city])",
            &s,
        )
        .unwrap();

        for jobs in [1usize, 4] {
            let mut rng = StdRng::seed_from_u64(seed ^ (jobs as u64) << 32);
            let mut base = Table::new(s.clone());
            for _ in 0..base_rows {
                base.push(random_row(&mut rng)).unwrap();
            }
            let mut session = DeltaSession::new(jobs);
            session.register(base, cfds.clone()).unwrap();
            let mut live: Vec<TupleId> = session
                .table("customer")
                .unwrap()
                .tuple_ids()
                .collect();

            let mut saw_rescan = false;
            for _ in 0..nops {
                match rng.gen_range(0..100) {
                    // Burst batch: enough inserts to outweigh the base,
                    // forcing the sharded-rescan fallback. Each burst
                    // doubles the table, so only small tables burst —
                    // otherwise the case grows exponentially.
                    0..=7 if live.len() < 120 => {
                        let k = live.len().max(1) + rng.gen_range(0..3usize);
                        let ops: Vec<DeltaOp> = (0..k)
                            .map(|_| DeltaOp::Insert {
                                relation: "customer".into(),
                                row: random_row(&mut rng),
                            })
                            .collect();
                        let path = session.apply(ops).unwrap();
                        prop_assert_eq!(path, ApplyPath::Rescan);
                        saw_rescan = true;
                        live = session.table("customer").unwrap().tuple_ids().collect();
                    }
                    8..=55 => {
                        let id = session
                            .insert("customer", random_row(&mut rng))
                            .unwrap();
                        live.push(id);
                    }
                    56..=75 if !live.is_empty() => {
                        let i = rng.gen_range(0..live.len());
                        let id = live.swap_remove(i);
                        session.delete("customer", id).unwrap();
                    }
                    _ if !live.is_empty() => {
                        let id = *live.choose(&mut rng).unwrap();
                        let attr = rng.gen_range(0..4);
                        let value = match attr {
                            0 => *CCS.choose(&mut rng).unwrap(),
                            1 => *ZIPS.choose(&mut rng).unwrap(),
                            2 => *STREETS.choose(&mut rng).unwrap(),
                            _ => *CITIES.choose(&mut rng).unwrap(),
                        };
                        session.update("customer", id, attr, value.into()).unwrap();
                    }
                    _ => {}
                }
            }
            let _ = saw_rescan; // not every small case bursts; fine.

            let mut streamed = session.report().unwrap();
            streamed.normalize();
            prop_assert_eq!(
                streamed.len(),
                session.violation_count().unwrap(),
                "live counter diverges from the materialised report"
            );
            let final_table = session.table("customer").unwrap();
            let job = DetectJob::on_table(final_table, &cfds);
            for name in ["native", "sql", "incremental", "parallel"] {
                let mut batch = engine_by_name(name, jobs).unwrap().run(&job).unwrap();
                batch.normalize();
                prop_assert_eq!(
                    &streamed,
                    &batch,
                    "session (jobs={}) diverges from the {} engine", jobs, name
                );
            }
        }
    }
}
