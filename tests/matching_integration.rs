//! Integration: RCK derivation + matcher vs. generated card/billing
//! feeds — the E8 claim as a fast regression test.

use revival::dirty::cardbilling::{attrs, generate, CardBillingConfig};
use revival::matching::matcher::{
    AttributePair, BlockKey, Comparator, MatchQuality, RecordMatcher,
};
use revival::matching::rck::derive_rcks;
use revival::matching::rules::{paper_rules, Cmp};
use revival::matching::RelativeCandidateKey;

fn pairs() -> Vec<AttributePair> {
    vec![
        AttributePair::new("fname", attrs::CARD_FN, attrs::BILL_FN, Comparator::PersonName),
        AttributePair::new("lname", attrs::CARD_LN, attrs::BILL_LN, Comparator::JaroWinkler(0.88)),
        AttributePair::new("addr", attrs::CARD_ADDR, attrs::BILL_ADDR, Comparator::Address),
        AttributePair::new("phn", attrs::CARD_PHN, attrs::BILL_PHN, Comparator::Phone),
        AttributePair::new("email", attrs::CARD_EMAIL, attrs::BILL_EMAIL, Comparator::Exact),
    ]
}

#[test]
fn rck_matcher_beats_exact_baseline_on_varied_feeds() {
    let data = generate(&CardBillingConfig {
        persons: 600,
        variation_rate: 0.4,
        typo_rate: 0.05,
        seed: 123,
        ..Default::default()
    });
    let y = ["fname", "lname", "addr", "phn", "email"];
    let rcks = derive_rcks(&y, &y, &paper_rules(), 3);
    assert!(rcks.len() >= 2, "at least the paper's two RCKs");
    let blocking = vec![("phn", BlockKey::Digits), ("lname", BlockKey::Soundex)];
    let rck_matcher = RecordMatcher::new(pairs(), rcks, blocking.clone());
    let baseline = RecordMatcher::new(
        pairs(),
        vec![RelativeCandidateKey::new(&[
            ("fname", Cmp::Equal),
            ("lname", Cmp::Equal),
            ("addr", Cmp::Equal),
        ])],
        blocking,
    );
    let rck_q = MatchQuality::score(&rck_matcher.run(&data.card, &data.billing), &data.true_pairs);
    let base_q = MatchQuality::score(&baseline.run(&data.card, &data.billing), &data.true_pairs);
    assert!(rck_q.recall > 0.95, "rck recall {:.3}", rck_q.recall);
    assert!(rck_q.precision > 0.95, "rck precision {:.3}", rck_q.precision);
    assert!(
        rck_q.recall > base_q.recall + 0.2,
        "rck {:.3} must clearly beat baseline {:.3}",
        rck_q.recall,
        base_q.recall
    );
}

#[test]
fn blocking_loses_no_matches_on_this_workload() {
    // Blocking on phone digits + lname soundex: phones are never
    // corrupted by the generator, so blocked and exhaustive matching
    // agree — and blocked is the one E8 times.
    let data = generate(&CardBillingConfig {
        persons: 150,
        variation_rate: 0.4,
        typo_rate: 0.05,
        seed: 9,
        ..Default::default()
    });
    let y = ["fname", "lname", "addr", "phn", "email"];
    let rcks = derive_rcks(&y, &y, &paper_rules(), 3);
    let m = RecordMatcher::new(
        pairs(),
        rcks,
        vec![("phn", BlockKey::Digits), ("lname", BlockKey::Soundex)],
    );
    assert_eq!(m.run(&data.card, &data.billing), m.run_exhaustive(&data.card, &data.billing));
}

#[test]
fn candidate_generation_is_bounded_by_blocks() {
    let data = generate(&CardBillingConfig { persons: 300, ..Default::default() });
    let y = ["fname", "lname", "addr", "phn", "email"];
    let rcks = derive_rcks(&y, &y, &paper_rules(), 3);
    let m = RecordMatcher::new(pairs(), rcks, vec![("phn", BlockKey::Digits)]);
    let candidates = m.candidates(&data.card, &data.billing);
    let full = data.card.len() * data.billing.len();
    assert!(
        candidates.len() * 10 < full,
        "blocking must prune the cross product: {} vs {full}",
        candidates.len()
    );
    // Every true pair survives blocking (phones shared by construction).
    for p in &data.true_pairs {
        assert!(candidates.contains(p));
    }
}
