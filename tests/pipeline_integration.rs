//! Cross-crate integration: generators → detectors → repair → scoring,
//! plus detector agreement on generated workloads.

use revival::detect::sqlgen::detect_sql;
use revival::detect::{IncrementalDetector, NativeDetector};
use revival::dirty::customer::{attrs, generate, standard_cfds, CustomerConfig};
use revival::dirty::noise::{inject, NoiseConfig};
use revival::repair::{BatchRepair, CostModel, IncRepair};

fn workload(
    rows: usize,
    noise: f64,
    seed: u64,
) -> (
    revival::dirty::customer::CustomerData,
    revival::dirty::noise::DirtyDataset,
    Vec<revival::constraints::Cfd>,
) {
    let data = generate(&CustomerConfig { rows, seed, ..Default::default() });
    let ds = inject(
        &data.table,
        &NoiseConfig::new(noise, vec![attrs::STREET, attrs::CITY, attrs::ZIP], seed + 1),
    );
    let cfds = standard_cfds(&data.schema);
    (data, ds, cfds)
}

#[test]
fn three_detectors_agree_on_generated_workload() {
    let (_, ds, cfds) = workload(1_500, 0.06, 21);
    let mut native = NativeDetector::new(&ds.dirty).detect_all(&cfds);
    let mut sql = detect_sql(&ds.dirty, &cfds).unwrap();
    let mut inc = {
        let mut d = IncrementalDetector::new(cfds.clone());
        d.load(&ds.dirty);
        d.report()
    };
    native.normalize();
    sql.normalize();
    inc.normalize();
    assert_eq!(native, sql, "native vs sql");
    assert_eq!(native, inc, "native vs incremental");
    assert!(!native.is_empty(), "6% noise must produce violations");
}

#[test]
fn repair_fixes_everything_detection_confirms() {
    let (data, ds, cfds) = workload(2_000, 0.05, 22);
    let repairer = BatchRepair::new(&cfds, CostModel::uniform(data.schema.arity()));
    let (fixed, stats) = repairer.repair(&ds.dirty).unwrap();
    assert_eq!(stats.residual_violations, 0);
    assert!(NativeDetector::new(&fixed).detect_all(&cfds).is_empty());
    // Quality floor on this standard workload.
    let score = ds.score_repair(&fixed, &[attrs::STREET, attrs::CITY, attrs::ZIP]);
    assert!(score.precision > 0.6, "precision {:.3} too low", score.precision);
    assert!(score.recall > 0.4, "recall {:.3} too low", score.recall);
}

#[test]
fn repair_is_idempotent() {
    let (data, ds, cfds) = workload(800, 0.05, 23);
    let repairer = BatchRepair::new(&cfds, CostModel::uniform(data.schema.arity()));
    let (once, _) = repairer.repair(&ds.dirty).unwrap();
    let (twice, stats) = repairer.repair(&once).unwrap();
    assert_eq!(stats.cells_changed, 0, "repairing a consistent table is a no-op");
    assert_eq!(once.diff_cells(&twice), 0);
}

#[test]
fn incremental_repair_matches_oracle_consistency() {
    let (data, _, cfds) = workload(1_000, 0.0, 24);
    // Clean base + dirty delta drawn from a second generation.
    let (_, delta_ds, _) = workload(200, 0.2, 25);
    let delta: Vec<Vec<revival::relation::Value>> =
        delta_ds.dirty.rows().map(|(_, r)| r.to_vec()).collect();
    let mut combined = data.table.clone();
    let stats = IncRepair::repair_delta(&cfds, &mut combined, delta, CostModel::uniform(7));
    assert!(revival::detect::native::satisfies(&combined, &cfds));
    assert_eq!(combined.len(), 1_200);
    assert!(stats.cells_changed > 0, "a 20%-dirty delta needs edits");
}

#[test]
fn incremental_detector_tracks_repair_edits() {
    // Stream the repair's edits through the incremental detector: the
    // violation count must drop to zero.
    let (data, ds, cfds) = workload(600, 0.05, 26);
    let mut inc = IncrementalDetector::new(cfds.clone());
    inc.load(&ds.dirty);
    assert!(inc.violation_count() > 0);
    let repairer = BatchRepair::new(&cfds, CostModel::uniform(data.schema.arity()));
    let (fixed, _) = repairer.repair(&ds.dirty).unwrap();
    for (id, new_row) in fixed.rows() {
        let old_row = ds.dirty.get(id).unwrap();
        if old_row != new_row {
            inc.update(id, &old_row, &new_row);
        }
    }
    assert_eq!(inc.violation_count(), 0);
}

#[test]
fn csv_roundtrip_preserves_detection() {
    let (_, ds, cfds) = workload(500, 0.08, 27);
    let text = revival::relation::csv::write_table(&ds.dirty);
    let back = revival::relation::csv::read_table(ds.dirty.schema(), &text).unwrap();
    let a = NativeDetector::new(&ds.dirty).detect_all(&cfds);
    let b = NativeDetector::new(&back).detect_all(&cfds);
    assert_eq!(a.violating_tuples().len(), b.violating_tuples().len());
}

#[test]
fn discovery_recovers_standard_suite_fds_from_clean_data() {
    use revival::discovery::tane::{discover_fds, TaneOptions};
    let data = generate(&CustomerConfig { rows: 3_000, seed: 30, ..Default::default() });
    let fds = discover_fds(&data.table, &TaneOptions { max_lhs: 2 });
    // (cc, zip) → street and (cc, ac) → city hold on clean data; TANE
    // must find them or something smaller implying them.
    let implies = |lhs: &[usize], rhs: usize| {
        fds.iter().any(|f| f.rhs == vec![rhs] && f.lhs.iter().all(|a| lhs.contains(a)))
    };
    assert!(implies(&[attrs::CC, attrs::ZIP], attrs::STREET));
    assert!(implies(&[attrs::CC, attrs::AC], attrs::CITY));
}

#[test]
fn cqa_certain_answers_are_sound_on_dirty_data() {
    use revival::cqa::{certain_answers_enumerate, certain_answers_rewrite, SpQuery};
    use revival::relation::Expr;
    let (_, ds, cfds) = workload(300, 0.02, 31);
    let query = SpQuery::new(Expr::col(attrs::CC).eq(Expr::lit("01")), vec![attrs::CITY]);
    let rewritten = certain_answers_rewrite(&ds.dirty, &cfds, &query);
    if let Some(enumerated) = certain_answers_enumerate(&ds.dirty, &cfds, &query, 50_000) {
        assert!(rewritten.is_subset(&enumerated), "rewriting must be sound w.r.t. enumeration");
    }
    // Every certain answer is a real city of a US tuple in the dirty data.
    for ans in &rewritten {
        assert!(ds
            .dirty
            .rows()
            .any(|(_, r)| r[attrs::CC] == "01".into() && r[attrs::CITY] == ans[0]));
    }
}

#[test]
fn papers_cind_is_discoverable_from_generated_data() {
    // The book/CD CIND of §3 can be *found* by profiling: the global
    // album ⊆ title inclusion fails, but lifting recovers the
    // genre='a-book' condition.
    use revival::dirty::orders::{generate, OrdersConfig};
    use revival::discovery::ind_disc::{lift_to_cinds, IndOptions};
    use revival::relation::Catalog;
    let data = generate(&OrdersConfig {
        cds: 2_000,
        extra_books: 500,
        violation_rate: 0.0, // clean data for profiling
        ..Default::default()
    });
    let mut catalog = Catalog::new();
    let (cd_schema, album, genre_name) = {
        let s = data.cd.schema().clone();
        (s.clone(), s.attr_id("album").unwrap(), "genre")
    };
    let title = data.book.schema().attr_id("title").unwrap();
    catalog.register(data.cd);
    catalog.register(data.book);
    let candidates =
        lift_to_cinds(&catalog, "cd", album, "book", title, &IndOptions::default()).unwrap();
    let genre_attr = cd_schema.attr_id(genre_name).unwrap();
    let found = candidates.iter().any(|c| {
        c.cind.from_conds.len() == 1
            && c.cind.from_conds[0].attr == genre_attr
            && c.cind.from_conds[0].value == "a-book".into()
    });
    assert!(found, "profiling must recover the paper's genre='a-book' condition");
}
