//! The paper's own running examples, verified end to end.
//!
//! Every concrete constraint, scenario and deduction the tutorial text
//! states is reproduced here as an executable assertion.

use revival::constraints::parser::{parse_cfds, parse_cinds};
use revival::detect::{CindDetector, NativeDetector};
use revival::matching::rck::derive_rcks;
use revival::matching::rules::{paper_rules, Cmp};
use revival::matching::RelativeCandidateKey;
use revival::relation::{Schema, Table, Type, Value};

fn customer_schema() -> Schema {
    Schema::builder("customer")
        .attr("cc", Type::Str)
        .attr("ac", Type::Str)
        .attr("phn", Type::Str)
        .attr("street", Type::Str)
        .attr("city", Type::Str)
        .attr("zip", Type::Str)
        .build()
}

#[test]
fn section3_first_cfd_uk_zip_determines_street() {
    // "customer([cc = 44, zip] → [street]) … asserts that for customers
    //  in the UK (cc = 44), zip code determines street."
    let s = customer_schema();
    let cfds = parse_cfds("customer([cc='44', zip] -> [street])", &s).unwrap();
    let mut t = Table::new(s);
    t.push(vec!["44".into(), "131".into(), "1".into(), "A St".into(), "edi".into(), "EH8".into()])
        .unwrap();
    t.push(vec!["44".into(), "131".into(), "2".into(), "B St".into(), "edi".into(), "EH8".into()])
        .unwrap();
    // Same zip in the US — NOT constrained.
    t.push(vec!["01".into(), "908".into(), "3".into(), "C St".into(), "mh".into(), "EH8".into()])
        .unwrap();
    let report = NativeDetector::new(&t).detect_all(&cfds);
    assert_eq!(report.len(), 1, "only the UK pair violates");
    let tuples = report.violating_tuples();
    assert!(tuples.contains(&revival::relation::TupleId(0)));
    assert!(tuples.contains(&revival::relation::TupleId(1)));
    assert!(!tuples.contains(&revival::relation::TupleId(2)));
}

#[test]
fn section3_second_cfd_with_rhs_constant() {
    // "customer([cc = 01, ac = 908, phn] → [street, city = 'mh', zip])":
    // two US customers with area code 908 and the same phn must share
    // street and zip, and city must be mh.
    let s = customer_schema();
    let cfds =
        parse_cfds("customer([cc='01', ac='908', phn] -> [street, city='mh', zip])", &s).unwrap();
    assert_eq!(cfds.len(), 3, "normalises to one CFD per RHS attribute");

    // Single tuple with the wrong city violates the constant component —
    // "it is not a traditional fd since it is defined with constants".
    let mut t = Table::new(s.clone());
    t.push(vec![
        "01".into(),
        "908".into(),
        "5550000".into(),
        "Mtn Ave".into(),
        "nyc".into(), // must be mh
        "07974".into(),
    ])
    .unwrap();
    let report = NativeDetector::new(&t).detect_all(&cfds);
    assert_eq!(report.len(), 1);

    // Two such customers sharing phn but differing on zip violate the
    // variable component.
    let mut t2 = Table::new(s);
    for zip in ["07974", "07975"] {
        t2.push(vec![
            "01".into(),
            "908".into(),
            "5550000".into(),
            "Mtn Ave".into(),
            "mh".into(),
            zip.into(),
        ])
        .unwrap();
    }
    let report = NativeDetector::new(&t2).detect_all(&cfds);
    assert_eq!(report.len(), 1);
}

#[test]
fn section3_cind_audio_books() {
    // "(CD(album, price, genre ='a-book') ⊆ book(title, price, format
    //  ='audio'))"
    let cd = Schema::builder("cd")
        .attr("album", Type::Str)
        .attr("price", Type::Int)
        .attr("genre", Type::Str)
        .build();
    let book = Schema::builder("book")
        .attr("title", Type::Str)
        .attr("price", Type::Int)
        .attr("format", Type::Str)
        .build();
    let cind = parse_cinds(
        "cd(album, price; genre='a-book') <= book(title, price; format='audio')",
        &[cd.clone(), book.clone()],
    )
    .unwrap()
    .remove(0);

    let mut cds = Table::new(cd);
    cds.push(vec!["Dune".into(), Value::Int(20), "a-book".into()]).unwrap();
    let mut books = Table::new(book);
    // Witness must carry format 'audio' — 'print' does not count.
    books.push(vec!["Dune".into(), Value::Int(20), "print".into()]).unwrap();
    assert_eq!(CindDetector::detect(&cind, &cds, &books, 0).len(), 1);
    books.push(vec!["Dune".into(), Value::Int(20), "audio".into()]).unwrap();
    assert!(CindDetector::detect(&cind, &cds, &books, 0).is_empty());
}

#[test]
fn section4_rck_derivation_matches_paper() {
    // "from these one can deduce … rck1: ([email, addr], [email, addr]
    //  ‖ [=, =])  rck2: ([ln, phn, fn], [ln, phn, fn] ‖ [=, =, ≈])"
    let y = ["fname", "lname", "addr", "phn", "email"];
    let rcks = derive_rcks(&y, &y, &paper_rules(), 3);
    let rck1 = RelativeCandidateKey::new(&[("email", Cmp::Equal), ("addr", Cmp::Equal)]);
    let rck2 = RelativeCandidateKey::new(&[
        ("lname", Cmp::Equal),
        ("phn", Cmp::Equal),
        ("fname", Cmp::Similar),
    ]);
    assert!(rcks.contains(&rck1), "paper's rck1 must be derived: {rcks:#?}");
    assert!(rcks.contains(&rck2), "paper's rck2 must be derived");
}

#[test]
fn section5_semandaq_workflow() {
    // "(a) specifications of cfds, (b) automatic detections of cfd
    //  violations, based on efficient sql-based techniques, and (c)
    //  repairing … We show how the user can inspect and modify this
    //  repair."
    use semandaq::{Engine, Session};
    let csv = "cc,ac,phn,street,city,zip\n\
               44,131,1,Crichton,edi,EH8\n\
               44,131,2,Mayfield,edi,EH8\n";
    let cfds = "customer([cc='44', zip] -> [street])\n";
    let mut session = Session::load("customer", csv, cfds).unwrap();
    // (b) detection, both engines agree.
    let native = session.detect(Engine::Native).unwrap();
    let sql = session.detect(Engine::Sql).unwrap();
    assert_eq!(native.violating_tuples(), sql.violating_tuples());
    assert_eq!(native.len(), 1);
    // (c) repair produces a consistent candidate.
    let (repaired, _) = session.repair().unwrap();
    assert!(revival::detect::native::satisfies(&repaired, &session.cfds));
    // The user modifies the data; detection reflects it.
    session.apply_edit("t1:street=Crichton").unwrap();
    assert!(session.detect(Engine::Native).unwrap().is_empty());
}
