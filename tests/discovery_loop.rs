//! The full profiling loop, end to end: discover a suite from data,
//! vet it, and close the loop through detection — on clean samples the
//! discovered suite is violation-free on all four detect engines; on
//! seeded-noise data approximate discovery (`min_confidence < 1`)
//! recovers the planted dependencies; parallel discovery is
//! byte-identical to sequential; and `display ∘ parse = id` holds for
//! every mined rule (the emit → detect round trip's foundation).

use revival::constraints::cfd::merge_by_embedded_fd;
use revival::constraints::parser::parse_cfds;
use revival::detect::{engine_by_name, DetectJob};
use revival::discovery::{
    DiscoverJob, DiscoverOptions, DiscoveryEngine, ParallelDiscovery, SequentialDiscovery,
};
use revival::relation::Table;

/// A clean hospital instance plus its schema-owning table.
fn hospital(rows: usize) -> Table {
    use revival::dirty::hospital::{generate, HospitalConfig};
    generate(&HospitalConfig { rows, ..Default::default() }).table
}

/// A seeded dirty hospital instance (noise on state/measure_name/hname).
fn dirty_hospital(rows: usize, rate: f64) -> Table {
    use revival::dirty::hospital::{attrs, generate, HospitalConfig};
    use revival::dirty::noise::{inject, NoiseConfig};
    let data = generate(&HospitalConfig { rows, ..Default::default() });
    inject(
        &data.table,
        &NoiseConfig::new(rate, vec![attrs::STATE, attrs::MEASURE_NAME, attrs::HNAME], 7),
    )
    .dirty
}

fn customer(rows: usize) -> Table {
    use revival::dirty::customer::{generate, CustomerConfig};
    generate(&CustomerConfig { rows, ..Default::default() }).table
}

#[test]
fn clean_samples_yield_violation_free_suites_on_every_engine() {
    for table in [hospital(400), customer(300)] {
        let d = SequentialDiscovery
            .run(&DiscoverJob::on_table(&table, DiscoverOptions::default()))
            .unwrap();
        assert!(!d.vetted.is_empty(), "{} must yield rules", table.schema().name());
        // Exact mining (min_confidence 1.0 default): every vetted rule
        // holds on the data it was mined from, so all four detection
        // engines agree the instance is clean under the mined suite.
        let job = DetectJob::on_table(&table, &d.vetted);
        for engine in ["native", "sql", "incremental", "parallel"] {
            let report = engine_by_name(engine, 2).unwrap().run(&job).unwrap();
            assert!(
                report.is_empty(),
                "engine {engine} found violations of a mined suite on {}: {report}",
                table.schema().name()
            );
        }
    }
}

#[test]
fn approximate_discovery_recovers_planted_fds_from_dirty_data() {
    use revival::dirty::hospital::attrs;
    let dirty = dirty_hospital(500, 0.02);
    // Exact discovery loses the planted rules the noise chipped…
    let exact = SequentialDiscovery
        .run(&DiscoverJob::on_table(&dirty, DiscoverOptions::default()))
        .unwrap();
    let has_plain = |d: &revival::discovery::Discovered, lhs: usize, rhs: usize| {
        d.rules.iter().any(|m| m.cfd.lhs == vec![lhs] && m.cfd.rhs == rhs && m.cfd.is_plain_fd())
    };
    assert!(
        !has_plain(&exact, attrs::ZIP, attrs::STATE),
        "noise on state must break exact zip → state"
    );
    // …approximate discovery gets them back, with honest confidence.
    let opts = DiscoverOptions { min_confidence: 0.9, ..DiscoverOptions::default() };
    let approx = SequentialDiscovery.run(&DiscoverJob::on_table(&dirty, opts)).unwrap();
    for (lhs, rhs, name) in [
        (attrs::ZIP, attrs::STATE, "zip → state"),
        (attrs::MEASURE_CODE, attrs::MEASURE_NAME, "measure_code → measure_name"),
        (attrs::PROVIDER, attrs::HNAME, "provider → hname"),
    ] {
        assert!(has_plain(&approx, lhs, rhs), "{name} not recovered at 0.9 confidence");
        let rule = approx
            .rules
            .iter()
            .find(|m| m.cfd.lhs == vec![lhs] && m.cfd.rhs == rhs && m.cfd.is_plain_fd())
            .unwrap();
        assert!(
            rule.confidence >= 0.9 && rule.confidence < 1.0,
            "{name} confidence must reflect the noise: {rule:?}"
        );
    }
}

#[test]
fn parallel_discovery_is_byte_identical_to_sequential() {
    let dirty = dirty_hospital(400, 0.03);
    let base = DiscoverOptions { min_confidence: 0.92, ..DiscoverOptions::default() };
    let seq = SequentialDiscovery.run(&DiscoverJob::on_table(&dirty, base.clone())).unwrap();
    for jobs in [1, 4] {
        let opts = DiscoverOptions { jobs, ..base.clone() };
        let par = ParallelDiscovery.run(&DiscoverJob::on_table(&dirty, opts)).unwrap();
        assert_eq!(format!("{:?}", seq.rules), format!("{:?}", par.rules), "jobs={jobs}");
        assert_eq!(format!("{:?}", seq.vetted), format!("{:?}", par.vetted), "jobs={jobs}");
        assert_eq!(seq.stats, par.stats, "jobs={jobs}");
    }
}

#[test]
fn display_parse_roundtrip_holds_for_every_mined_rule() {
    // Property: display ∘ parse = id over mined suites — single-row
    // mined rules parse back exactly; multi-row vetted CFDs re-merge to
    // themselves. This is what `semandaq discover --emit` leans on.
    for table in [hospital(300), dirty_hospital(300, 0.03), customer(250)] {
        let opts = DiscoverOptions { min_confidence: 0.9, ..DiscoverOptions::default() };
        let d = SequentialDiscovery.run(&DiscoverJob::on_table(&table, opts)).unwrap();
        let schema = table.schema();
        for m in &d.rules {
            let text = m.cfd.display(schema).to_string();
            let back =
                parse_cfds(&text, schema).unwrap_or_else(|e| panic!("`{text}` must re-parse: {e}"));
            assert_eq!(back, vec![m.cfd.clone()], "mined rule round trip: {text}");
        }
        for cfd in &d.vetted {
            let text = cfd.display(schema).to_string();
            let merged = merge_by_embedded_fd(
                &parse_cfds(&text, schema)
                    .unwrap_or_else(|e| panic!("`{text}` must re-parse: {e}")),
            );
            assert_eq!(merged, vec![cfd.clone()], "vetted rule round trip: {text}");
        }
    }
}
