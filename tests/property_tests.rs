//! Property-based tests over the core invariants, spanning crates.

use proptest::prelude::*;
use revival::constraints::parser::parse_cfds;
use revival::constraints::Cfd;
use revival::detect::sqlgen::detect_sql;
use revival::detect::NativeDetector;
use revival::relation::{Schema, Table, Type, Value};
use revival::repair::{BatchRepair, CostModel};

fn schema() -> Schema {
    Schema::builder("r").attr("a", Type::Str).attr("b", Type::Str).attr("c", Type::Str).build()
}

/// Small random tables over a tiny alphabet (dense collisions → lots of
/// FD/CFD interaction).
fn arb_table() -> impl Strategy<Value = Table> {
    prop::collection::vec((0..3u8, 0..3u8, 0..4u8), 0..24).prop_map(|rows| {
        let mut t = Table::new(schema());
        for (a, b, c) in rows {
            t.push(vec![
                Value::str(format!("a{a}")),
                Value::str(format!("b{b}")),
                Value::str(format!("c{c}")),
            ])
            .unwrap();
        }
        t
    })
}

/// A small random CFD suite over the fixed schema.
fn arb_suite() -> impl Strategy<Value = Vec<Cfd>> {
    let line = prop_oneof![
        Just("r([a] -> [b])".to_string()),
        Just("r([a, b] -> [c])".to_string()),
        (0..3u8).prop_map(|k| format!("r([a='a{k}', b] -> [c])")),
        (0..3u8, 0..4u8).prop_map(|(k, v)| format!("r([a='a{k}'] -> [c='c{v}'])")),
        (0..3u8).prop_map(|k| format!("r([b='b{k}'] -> [a])")),
    ];
    prop::collection::vec(line, 1..5)
        .prop_map(|lines| parse_cfds(&lines.join("\n"), &schema()).expect("generated suite parses"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SQL-based detector and the native detector implicate exactly
    /// the same tuples on arbitrary inputs.
    #[test]
    fn sql_and_native_detection_agree(table in arb_table(), suite in arb_suite()) {
        let mut native = NativeDetector::new(&table).detect_all(&suite);
        let mut sql = detect_sql(&table, &suite).unwrap();
        native.normalize();
        sql.normalize();
        prop_assert_eq!(native, sql);
    }

    /// A detection report is empty iff the satisfaction oracle agrees.
    #[test]
    fn detection_matches_satisfaction_oracle(table in arb_table(), suite in arb_suite()) {
        let report = NativeDetector::new(&table).detect_all(&suite);
        let satisfied = suite.iter().all(|c| c.satisfied_by(&table));
        prop_assert_eq!(report.is_empty(), satisfied);
    }

    /// BatchRepair always produces an instance satisfying the suite
    /// (when the suite is satisfiable over the table's active domain,
    /// which the fresh-value fallback guarantees).
    #[test]
    fn repair_always_satisfies(table in arb_table(), suite in arb_suite()) {
        let repairer = BatchRepair::new(&suite, CostModel::uniform(3));
        let (fixed, stats) = repairer.repair(&table).unwrap();
        prop_assert_eq!(stats.residual_violations, 0);
        prop_assert!(suite.iter().all(|c| c.satisfied_by(&fixed)));
        // Tuple count is preserved: repairs edit cells, never delete.
        prop_assert_eq!(fixed.len(), table.len());
    }

    /// Repair of an already-consistent table changes nothing.
    #[test]
    fn repair_of_consistent_table_is_identity(table in arb_table(), suite in arb_suite()) {
        if suite.iter().all(|c| c.satisfied_by(&table)) {
            let repairer = BatchRepair::new(&suite, CostModel::uniform(3));
            let (fixed, stats) = repairer.repair(&table).unwrap();
            prop_assert_eq!(stats.cells_changed, 0);
            prop_assert_eq!(fixed.diff_cells(&table), 0);
        }
    }

    /// Incremental detection agrees with full detection after an
    /// arbitrary prefix of inserts.
    #[test]
    fn incremental_agrees_with_full(table in arb_table(), suite in arb_suite()) {
        use revival::detect::IncrementalDetector;
        let mut inc = IncrementalDetector::new(suite.clone());
        inc.load(&table);
        let mut inc_report = inc.report();
        let mut full = NativeDetector::new(&table).detect_all(&suite);
        inc_report.normalize();
        full.normalize();
        prop_assert_eq!(inc_report, full);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Subset repairs from the CQA conflict graph always satisfy the
    /// suite and are maximal w.r.t. adding back excluded tuples.
    #[test]
    fn enumerated_repairs_are_consistent(table in arb_table(), suite in arb_suite()) {
        use revival::cqa::{enumerate_repairs, ConflictGraph};
        use revival::cqa::conflict::repair_table;
        let graph = ConflictGraph::build(&table, &suite);
        let repairs = enumerate_repairs(&graph, 64);
        prop_assert!(!repairs.is_empty());
        for kept in repairs.iter().take(8) {
            let rt = repair_table(&table, &graph, kept);
            prop_assert!(suite.iter().all(|c| c.satisfied_by(&rt)));
        }
    }

    /// Certain answers from the rewriting are sound: contained in the
    /// enumeration-based answer set whenever the oracle completes.
    #[test]
    fn rewriting_sound_vs_enumeration(table in arb_table(), suite in arb_suite()) {
        use revival::cqa::{certain_answers_enumerate, certain_answers_rewrite, SpQuery};
        use revival::relation::Expr;
        let query = SpQuery::new(Expr::col(0).eq(Expr::lit("a0")), vec![2]);
        let rewritten = certain_answers_rewrite(&table, &suite, &query);
        if let Some(enumerated) = certain_answers_enumerate(&table, &suite, &query, 512) {
            prop_assert!(rewritten.is_subset(&enumerated),
                "rewrite {rewritten:?} ⊄ enum {enumerated:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// String distance is a normalized metric: symmetric, zero iff
    /// equal, bounded by 1.
    #[test]
    fn string_distance_is_metric_like(a in "[a-c]{0,8}", b in "[a-c]{0,8}") {
        use revival::repair::cost::string_distance;
        let d = string_distance(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((string_distance(&b, &a) - d).abs() < 1e-12);
        prop_assert_eq!(d == 0.0, a == b);
    }

    /// Jaro-Winkler is bounded and reflexive.
    #[test]
    fn jaro_winkler_bounded(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
        use revival::matching::similarity::jaro_winkler;
        let s = jaro_winkler(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((jaro_winkler(&a, &a) - 1.0).abs() < 1e-12 || a.is_empty());
    }

    /// CSV write→read is lossless for arbitrary string content.
    #[test]
    fn csv_roundtrip_lossless(rows in prop::collection::vec((".*", ".*"), 0..12)) {
        use revival::relation::csv;
        let schema = Schema::builder("r").attr("x", Type::Str).attr("y", Type::Str).build();
        let mut t = Table::new(schema.clone());
        for (x, y) in &rows {
            // NULL renders as the empty string, so empty strings do not
            // survive a roundtrip distinctly — normalise them out.
            let x = if x.is_empty() { "_" } else { x };
            let y = if y.is_empty() { "_" } else { y };
            t.push(vec![x.into(), y.into()]).unwrap();
        }
        let text = csv::write_table(&t);
        let back = csv::read_table(&schema, &text).unwrap();
        prop_assert_eq!(t.diff_cells(&back), 0);
        prop_assert_eq!(t.len(), back.len());
    }
}
