//! Profiled ≡ unprofiled parity: `run_profiled` must leave reports
//! byte-identical to `run` on every engine at every shard count, list
//! every constraint in the suite, and reconcile its per-constraint
//! rows-scanned totals with the job-level obs counter exactly.
//!
//! One test fn on purpose: the obs registry is process-global, and a
//! single fn keeps the counter-delta asserts race-free without locks.

use revival_constraints::parser::parse_cfds;
use revival_detect::{engine_by_name, DetectJob};
use revival_relation::{Schema, Table, Type};

fn schema() -> Schema {
    Schema::builder("customer")
        .attr("cc", Type::Str)
        .attr("zip", Type::Str)
        .attr("street", Type::Str)
        .attr("city", Type::Str)
        .build()
}

/// Deterministic pseudo-random table, big enough that 4 shards all see
/// chunk boundaries and every CFD finds violations.
fn big_table(rows: usize) -> Table {
    let mut t = Table::new(schema());
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut next = move |m: usize| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % m as u64) as usize
    };
    for _ in 0..rows {
        let cc = ["44", "01", "86"][next(3)];
        let zip = format!("Z{}", next(30));
        let street = format!("S{}", next(7));
        let city = format!("C{}", next(4));
        t.push(vec![cc.into(), zip.into(), street.into(), city.into()]).unwrap();
    }
    t
}

#[test]
fn profiled_runs_are_byte_identical_and_reconcile_with_counters() {
    let t = big_table(800);
    let cfds = parse_cfds(
        "customer([cc='44', zip] -> [street])\n\
         customer([cc='01', zip='Z7'] -> [city='C1'])\n\
         customer([zip] -> [city])",
        &schema(),
    )
    .unwrap();
    let rows_counter = revival_obs::global().counter("detect_rows_scanned_total");

    for engine_name in ["native", "sql", "incremental", "parallel"] {
        for jobs in [1usize, 4] {
            for merged in [false, true] {
                let job = DetectJob::on_table(&t, &cfds).merged(merged);
                let engine = engine_by_name(engine_name, jobs).unwrap();
                let plain = engine.run(&job).unwrap();
                let before = rows_counter.get();
                let (profiled, profile) = engine.run_profiled(&job).unwrap();
                let delta = rows_counter.get() - before;
                let ctx = format!("engine={engine_name} jobs={jobs} merged={merged}");

                // Byte-identical reports: same violations, same order.
                assert_eq!(plain, profiled, "{ctx}: profiled report differs");
                assert_eq!(
                    format!("{plain}"),
                    format!("{profiled}"),
                    "{ctx}: profiled report renders differently"
                );

                // No silent omissions: every constraint has a row, each
                // with the suite's nonzero rows-scanned tally.
                assert_eq!(
                    profile.constraints.len(),
                    cfds.len(),
                    "{ctx}: profile must list every constraint"
                );
                for (i, c) in profile.constraints.iter().enumerate() {
                    assert!(c.rows_scanned > 0, "{ctx}: constraint {i} has no rows scanned");
                }

                // Per-constraint totals reconcile with the job-level
                // counter: both equal the suite's rows-scanned sum.
                let per_constraint: u64 = profile.constraints.iter().map(|c| c.rows_scanned).sum();
                assert_eq!(per_constraint, job.rows_scanned_sum(), "{ctx}: profile sum drifted");
                assert_eq!(delta, job.rows_scanned_sum(), "{ctx}: obs counter drifted");

                // Exact accounting: attributed + overhead == wall.
                assert_eq!(
                    profile.attributed_us() + profile.overhead_us(),
                    profile.wall_us,
                    "{ctx}: profile totals must sum to the job wall time"
                );
                assert_eq!(profile.meta_get("suite_cfds"), Some(cfds.len() as u64), "{ctx}");
            }
        }
    }
}
