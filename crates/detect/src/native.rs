//! Native hash-based CFD detection.
//!
//! For each CFD the detector makes one scan:
//!
//! * **constant rows** are checked tuple-at-a-time (`O(n · |Tp|)`);
//! * **variable rows** group tuples by the LHS projection; a group
//!   violates a row iff the group key matches the row's LHS patterns and
//!   the group contains ≥ 2 distinct RHS values.
//!
//! The grouping pass runs on the interned kernel
//! ([`revival_relation::GroupBy`]): tuples are scanned as symbol rows,
//! keys hash as `u32` words via [`KeyProj`], and nothing is cloned per
//! probed row — an owned key materialises once per distinct group.
//! Values reappear only at emission, where group keys map back through
//! the table's [`revival_relation::ValuePool`] for pattern matching and
//! reporting.
//!
//! Merged-tableau detection (the TODS 2008 optimisation: one grouping
//! pass per embedded FD regardless of suite shape) lives in the engine
//! layer now — set [`crate::DetectJob::merged`] and any engine runs the
//! merged suite with violation indices mapped back to the caller's.

use crate::report::{Violation, ViolationReport};
use revival_constraints::cfd::Cfd;
use revival_constraints::SymPred;
use revival_relation::{ColProj, GroupBy, Sym, Table, TupleId, ValuePool};

/// Detects CFD violations on an in-memory table.
pub struct NativeDetector<'a> {
    table: &'a Table,
}

impl<'a> NativeDetector<'a> {
    /// Create a detector over `table`.
    pub fn new(table: &'a Table) -> Self {
        NativeDetector { table }
    }

    /// Detect all violations of one CFD. `cfd_idx` is echoed into the
    /// report so suite-level callers can attribute violations.
    pub fn detect(&self, cfd: &Cfd, cfd_idx: usize) -> ViolationReport {
        let mut report = ViolationReport::default();
        self.detect_into(cfd, cfd_idx, &mut report);
        report
    }

    /// Detect one CFD's violations into `report`, returning the number
    /// of LHS groups the variable pass probed (0 when the CFD has no
    /// variable rows) — the per-constraint figure `--explain` reports.
    pub(crate) fn detect_into(
        &self,
        cfd: &Cfd,
        cfd_idx: usize,
        report: &mut ViolationReport,
    ) -> usize {
        debug_assert_eq!(cfd.relation, self.table.schema().name());
        let lhs_cols = self.table.proj(&cfd.lhs);
        let rhs_col = self.table.col(cfd.rhs);
        // Pass 1: constant rows, tuple at a time — the tableau compiles
        // to symbol predicates once, then the scan touches only the
        // CFD's columns (no row is materialised).
        let const_rows = compile_constant_rows(cfd, self.table.pool());
        if !const_rows.is_empty() {
            for slot in self.table.live_slots() {
                if let Some(tp_idx) = constant_violation_at(&const_rows, &lhs_cols, rhs_col, slot) {
                    report.violations.push(Violation::CfdConstant {
                        cfd: cfd_idx,
                        row: tp_idx,
                        tuple: TupleId(slot as u64),
                    });
                }
            }
        }
        // Pass 2: variable rows via interned grouping over the columns.
        let var_rows = variable_rows_of(cfd);
        if var_rows.is_empty() {
            return 0;
        }
        // Group tuples by LHS key symbols; track the distinct RHS
        // symbols and the member ids per group.
        let mut groups: SymGroups = GroupBy::new();
        for slot in self.table.live_slots() {
            add_slot_to_group(&mut groups, &lhs_cols, rhs_col, slot);
        }
        if revival_obs::enabled() {
            revival_obs::global().counter("detect_groups_probed_total").add(groups.len() as u64);
        }
        emit_variable_violations(cfd_idx, &var_rows, &groups, self.table.pool(), report);
        groups.len()
    }

    /// Detect violations of a whole suite, one grouping pass per CFD.
    pub fn detect_all(&self, cfds: &[Cfd]) -> ViolationReport {
        let mut report = ViolationReport::default();
        for (i, cfd) in cfds.iter().enumerate() {
            self.detect_into(cfd, i, &mut report);
        }
        report
    }
}

/// One LHS group of the variable-row grouping pass: its live members
/// (in row order) and the distinct RHS symbols seen (first-seen order).
/// Shared by the sequential and parallel kernels so both produce
/// identically-ordered reports.
pub(crate) struct VarGroup {
    pub members: Vec<TupleId>,
    pub rhs_syms: Vec<Sym>,
}

/// The grouping state of one variable-row pass: interned LHS key →
/// group, in first-seen order.
pub(crate) type SymGroups = GroupBy<Box<[Sym]>, VarGroup>;

/// The variable tableau rows of `cfd`, with their tableau indices.
pub(crate) fn variable_rows_of(
    cfd: &Cfd,
) -> Vec<(usize, &revival_constraints::pattern::PatternRow)> {
    cfd.tableau.iter().enumerate().filter(|(_, r)| !r.is_constant_row()).collect()
}

/// One constant tableau row compiled to symbol space (see
/// [`revival_constraints::PatternValue::resolve`]): LHS predicates
/// aligned with the CFD's LHS attributes, plus the RHS predicate.
pub(crate) struct ConstRow {
    pub tp_idx: usize,
    pub lhs: Vec<SymPred>,
    pub rhs: SymPred,
}

/// Compile a CFD's constant rows against a table's pool. Row order is
/// tableau order, so first-match indices agree with
/// [`Cfd::constant_violation`].
pub(crate) fn compile_constant_rows(cfd: &Cfd, pool: &ValuePool) -> Vec<ConstRow> {
    cfd.tableau
        .iter()
        .enumerate()
        .filter(|(_, tp)| tp.is_constant_row())
        .map(|(i, tp)| ConstRow {
            tp_idx: i,
            lhs: tp.lhs.iter().map(|p| p.resolve(pool)).collect(),
            rhs: tp.rhs.resolve(pool),
        })
        .collect()
}

/// First compiled constant row a slot violates (LHS patterns all match,
/// RHS pattern fails) — the symbol-space image of
/// [`Cfd::constant_violation`].
#[inline]
pub(crate) fn constant_violation_at(
    const_rows: &[ConstRow],
    lhs_cols: &ColProj<'_>,
    rhs_col: &[Sym],
    slot: usize,
) -> Option<usize> {
    const_rows
        .iter()
        .find(|cr| {
            cr.lhs.iter().enumerate().all(|(i, p)| p.matches(lhs_cols.sym_at(i, slot)))
                && !cr.rhs.matches(rhs_col[slot])
        })
        .map(|cr| cr.tp_idx)
}

/// Fold one slot into the group map keyed by its LHS column projection.
/// The probe hashes the column cells in place; a key vector is built
/// only for a first-seen group.
#[inline]
pub(crate) fn add_slot_to_group(
    groups: &mut SymGroups,
    lhs_cols: &ColProj<'_>,
    rhs_col: &[Sym],
    slot: usize,
) {
    let g = groups.entry_mut(
        lhs_cols.hash_at(slot),
        |k| lhs_cols.matches_at(slot, k),
        || (lhs_cols.key_at(slot), VarGroup { members: Vec::new(), rhs_syms: Vec::new() }),
    );
    g.members.push(TupleId(slot as u64));
    let rhs = rhs_col[slot];
    if !g.rhs_syms.contains(&rhs) {
        g.rhs_syms.push(rhs);
    }
}

/// Emit violations for every group matching a variable row with ≥ 2
/// distinct RHS values, in sorted-key order (deterministic reports).
/// Keys leave symbol space here: per distinct group — not per tuple —
/// the key maps back to values for pattern matching and the report.
pub(crate) fn emit_variable_violations(
    cfd_idx: usize,
    var_rows: &[(usize, &revival_constraints::pattern::PatternRow)],
    groups: &SymGroups,
    pool: &ValuePool,
    report: &mut ViolationReport,
) {
    // Filter before leaving symbol space: only violating groups pay the
    // key clone + sort (filter-then-sort emits the same sequence as
    // sort-then-filter over distinct keys).
    let mut keyed: Vec<(Vec<revival_relation::Value>, &VarGroup)> = groups
        .iter()
        .filter(|(_, g)| g.rhs_syms.len() >= 2)
        .map(|(k, g)| (k.iter().map(|&s| pool.value(s).clone()).collect(), g))
        .collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    for (key, group) in keyed {
        for (tp_idx, tp) in var_rows {
            if tp.lhs_matches(&key) {
                report.violations.push(Violation::CfdVariable {
                    cfd: cfd_idx,
                    row: *tp_idx,
                    key: key.clone(),
                    tuples: group.members.clone(),
                });
            }
        }
    }
}

/// Detect a suite spanning several relations, resolving each CFD's
/// table from the catalog. Violation indices refer to positions in
/// `cfds`; tuple ids are relative to each CFD's own relation.
pub fn detect_catalog(
    cfds: &[Cfd],
    catalog: &revival_relation::Catalog,
) -> revival_relation::Result<ViolationReport> {
    let mut report = ViolationReport::default();
    for (i, cfd) in cfds.iter().enumerate() {
        let table = catalog.get(&cfd.relation)?;
        NativeDetector::new(table).detect_into(cfd, i, &mut report);
    }
    Ok(report)
}

/// Count the violating tuples of a suite — the headline number in
/// detection-quality experiments (E3).
pub fn count_violating_tuples(table: &Table, cfds: &[Cfd]) -> usize {
    NativeDetector::new(table).detect_all(cfds).violating_tuples().len()
}

/// Quick satisfaction check for a suite (used by repair as its oracle).
pub fn satisfies(table: &Table, cfds: &[Cfd]) -> bool {
    cfds.iter().all(|c| c.satisfied_by(table))
}

/// Render a violation in terms of attribute names (diagnostics, CLI).
pub fn describe_violation(
    v: &Violation,
    cfds: &[Cfd],
    schema: &revival_relation::Schema,
) -> String {
    match v {
        Violation::CfdConstant { cfd, row, tuple } => {
            let c = &cfds[*cfd];
            let tp = &c.tableau[*row];
            // display_row keeps the message one line even when the CFD
            // carries a multi-row (merged) tableau, and names exactly
            // the violated row.
            format!(
                "tuple {tuple} matches pattern {tp} of {} but {} fails the RHS pattern {}",
                c.display_row(schema, *row),
                schema.attr_name(c.rhs),
                tp.rhs
            )
        }
        Violation::CfdVariable { cfd, row, key, tuples } => {
            let c = &cfds[*cfd];
            let keys: Vec<String> = c
                .lhs
                .iter()
                .zip(key)
                .map(|(&a, v)| format!("{}={}", schema.attr_name(a), v))
                .collect();
            format!(
                "{} tuples agree on ({}) but disagree on {} ({})",
                tuples.len(),
                keys.join(", "),
                schema.attr_name(c.rhs),
                c.display_row(schema, *row),
            )
        }
        Violation::CindMissingWitness { cind, tuple } => {
            format!("tuple {tuple} has no witness for cind#{cind}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_constraints::parser::parse_cfds;
    use revival_relation::{Schema, Type, Value};

    fn schema() -> Schema {
        Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("ac", Type::Str)
            .attr("phn", Type::Str)
            .attr("street", Type::Str)
            .attr("city", Type::Str)
            .attr("zip", Type::Str)
            .build()
    }

    fn table(rows: &[[&str; 6]]) -> Table {
        let mut t = Table::new(schema());
        for r in rows {
            t.push(r.iter().map(|s| Value::from(*s)).collect()).unwrap();
        }
        t
    }

    #[test]
    fn detects_variable_violation() {
        let s = schema();
        let cfds = parse_cfds("customer([cc='44', zip] -> [street])", &s).unwrap();
        let t = table(&[
            ["44", "131", "111", "Crichton", "edi", "EH8"],
            ["44", "131", "222", "Mayfield", "edi", "EH8"],
            ["01", "908", "333", "MtnAve", "mh", "07974"],
        ]);
        let report = NativeDetector::new(&t).detect(&cfds[0], 0);
        assert_eq!(report.len(), 1);
        assert!(
            matches!(&report.violations[0], Violation::CfdVariable { key, tuples, .. }
                if key.len() == 2 && tuples.len() == 2),
            "expected a 2-tuple variable violation, got {:?}",
            report.violations[0]
        );
    }

    #[test]
    fn detects_constant_violation() {
        let s = schema();
        let cfds = parse_cfds("customer([cc='01', ac='908'] -> [city='mh'])", &s).unwrap();
        let t = table(&[
            ["01", "908", "111", "MtnAve", "nyc", "07974"], // violates: city must be mh
            ["01", "908", "222", "MtnAve", "mh", "07974"],  // fine
            ["44", "908", "333", "X", "nyc", "EH8"],        // pattern doesn't apply
        ]);
        let report = NativeDetector::new(&t).detect(&cfds[0], 0);
        assert_eq!(report.len(), 1);
        assert_eq!(report.violating_tuples().len(), 1);
    }

    #[test]
    fn cfd_catches_more_than_fd() {
        // The tutorial's core §3 claim: with the same embedded FD, the
        // CFD's constant rows catch single-tuple errors the FD cannot.
        let s = schema();
        let fd_suite = parse_cfds("customer([zip] -> [city])", &s).unwrap();
        let cfd_suite = parse_cfds(
            "customer([zip] -> [city])\n\
             customer([zip='07974'] -> [city='mh'])",
            &s,
        )
        .unwrap();
        // Single tuple with the wrong city: consistent as far as the FD
        // can see (no conflicting pair), but the CFD flags it.
        let t = table(&[["01", "908", "111", "MtnAve", "nyc", "07974"]]);
        assert_eq!(count_violating_tuples(&t, &fd_suite), 0);
        assert_eq!(count_violating_tuples(&t, &cfd_suite), 1);
    }

    #[test]
    fn merged_detection_agrees_with_per_cfd() {
        use crate::engine::{DetectJob, Detector, NativeEngine};
        let s = schema();
        let cfds = parse_cfds(
            "customer([cc='44', zip] -> [street])\n\
             customer([cc='01', zip] -> [street])\n\
             customer([cc='01', ac='908'] -> [city='mh'])",
            &s,
        )
        .unwrap();
        let t = table(&[
            ["44", "131", "111", "Crichton", "edi", "EH8"],
            ["44", "131", "222", "Mayfield", "edi", "EH8"],
            ["01", "908", "333", "MtnAve", "nyc", "07974"],
            ["01", "908", "444", "Elm", "mh", "07974"],
            ["01", "908", "555", "Oak", "mh", "07974"],
        ]);
        let job = DetectJob::on_table(&t, &cfds);
        let mut plain = NativeEngine.run(&job).unwrap();
        let mut merged = NativeEngine.run(&job.merged(true)).unwrap();
        assert_eq!(
            plain.violating_tuples(),
            merged.violating_tuples(),
            "merged and per-CFD detection must implicate the same tuples"
        );
        plain.normalize();
        merged.normalize();
        assert_eq!(plain, merged, "merged detection must report the same violations");
    }

    #[test]
    fn satisfies_oracle() {
        let s = schema();
        let cfds = parse_cfds("customer([cc='44', zip] -> [street])", &s).unwrap();
        let good = table(&[["44", "131", "111", "Crichton", "edi", "EH8"]]);
        assert!(satisfies(&good, &cfds));
        let bad = table(&[
            ["44", "131", "111", "Crichton", "edi", "EH8"],
            ["44", "131", "222", "Mayfield", "edi", "EH8"],
        ]);
        assert!(!satisfies(&bad, &cfds));
    }

    #[test]
    fn group_with_same_rhs_is_fine() {
        let s = schema();
        let cfds = parse_cfds("customer([zip] -> [street])", &s).unwrap();
        let t = table(&[
            ["44", "131", "111", "Crichton", "edi", "EH8"],
            ["01", "908", "222", "Crichton", "edi", "EH8"],
        ]);
        assert!(NativeDetector::new(&t).detect(&cfds[0], 0).is_empty());
    }

    #[test]
    fn describe_violation_is_readable() {
        let s = schema();
        let cfds = parse_cfds("customer([cc='44', zip] -> [street])", &s).unwrap();
        let t = table(&[
            ["44", "131", "111", "Crichton", "edi", "EH8"],
            ["44", "131", "222", "Mayfield", "edi", "EH8"],
        ]);
        let report = NativeDetector::new(&t).detect(&cfds[0], 0);
        let text = describe_violation(&report.violations[0], &cfds, &s);
        assert!(text.contains("street"));
        assert!(text.contains("2 tuples"));
    }

    #[test]
    fn detect_catalog_spans_relations() {
        use revival_relation::Catalog;
        let s1 = schema();
        let s2 = Schema::builder("orders").attr("oid", Type::Str).attr("status", Type::Str).build();
        let mut t1 = table(&[
            ["44", "131", "111", "Crichton", "edi", "EH8"],
            ["44", "131", "222", "Mayfield", "edi", "EH8"],
        ]);
        let mut t2 = Table::new(s2.clone());
        t2.push(vec!["o1".into(), "weird".into()]).unwrap();
        let _ = &mut t1;
        let mut catalog = Catalog::new();
        catalog.register(t1);
        catalog.register(t2);
        let mut cfds = parse_cfds("customer([cc='44', zip] -> [street])", &s1).unwrap();
        cfds.extend(parse_cfds("orders([oid] -> [status in ('ok','weird')])", &s2).unwrap());
        let report = detect_catalog(&cfds, &catalog).unwrap();
        assert_eq!(report.len(), 1, "customer violation only; orders row satisfies");
        // Unknown relation errors cleanly.
        let bad = parse_cfds("customer([cc] -> [street])", &s1).unwrap();
        let empty = Catalog::new();
        assert!(detect_catalog(&bad, &empty).is_err());
    }

    #[test]
    fn multi_row_tableau_counts_per_row() {
        let s = schema();
        // Two variable rows with different cc constants; a group matching
        // only one row yields one violation.
        let cfds = parse_cfds(
            "customer([cc='44', zip] -> [street])\n\
             customer([cc='01', zip] -> [street])",
            &s,
        )
        .unwrap();
        let merged = revival_constraints::cfd::merge_by_embedded_fd(&cfds);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].tableau.len(), 2);
        let t = table(&[
            ["44", "131", "111", "Crichton", "edi", "EH8"],
            ["44", "131", "222", "Mayfield", "edi", "EH8"],
        ]);
        let report = NativeDetector::new(&t).detect(&merged[0], 0);
        assert_eq!(report.len(), 1);
    }
}
