//! Parallel CFD/CIND detection via sharded scans.
//!
//! The detection hot path is one grouping scan per embedded FD (after
//! tableau merging). Both of its passes shard cleanly:
//!
//! * **constant rows** are per-tuple checks — shard tuples into
//!   contiguous chunks, one worker per chunk, concatenate the per-chunk
//!   findings in chunk order;
//! * **variable rows** group by the LHS projection — each worker builds
//!   a partial group map over its chunk; the maps merge associatively
//!   (member lists concatenate in chunk order, distinct-RHS sets union
//!   in first-seen order).
//!
//! Because chunks are contiguous row ranges merged in order, the merged
//! state is *identical* to what one sequential scan builds, and the
//! final sorted-by-key emission is the same code
//! ([`native::emit_variable_violations`]) — so [`ParallelEngine`]
//! reports are byte-for-byte equal to [`NativeEngine`]'s, at any shard
//! count. Tests assert this; the CLI exposes the shard count as
//! `--jobs N`.
//!
//! Workers are `std::thread::scope` threads, not a work-stealing pool:
//! the build environment is offline (no rayon), shards are coarse and
//! uniform, and scoped threads let workers borrow the table directly.

use crate::engine::{
    cfd_profile_name, cind_profile_name, run_merged_job, DetectJob, Detector, NativeEngine,
};
use crate::native::{
    add_slot_to_group, compile_constant_rows, constant_violation_at, emit_variable_violations,
    variable_rows_of, SymGroups,
};
use crate::report::{Violation, ViolationReport};
use revival_constraints::cfd::Cfd;
use revival_constraints::cind::Cind;
use revival_relation::{GroupBy, Result, Table, TupleId, Value};

/// How many shards to use for `jobs = 0` (auto).
fn auto_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Parallel hash-grouping detection over one in-memory table — the
/// sharded counterpart of [`crate::native::NativeDetector`].
pub struct ParallelDetector<'a> {
    table: &'a Table,
    jobs: usize,
}

impl<'a> ParallelDetector<'a> {
    /// Create a detector over `table` with `jobs` shards (0 = one per
    /// available core).
    pub fn new(table: &'a Table, jobs: usize) -> Self {
        ParallelDetector { table, jobs: if jobs == 0 { auto_jobs() } else { jobs } }
    }

    /// The shard count in use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    pub(crate) fn detect_into(&self, cfd: &Cfd, cfd_idx: usize, report: &mut ViolationReport) {
        let slots: Vec<usize> = self.table.live_slots().collect();
        self.detect_slots_into(&slots, cfd, cfd_idx, report);
    }

    /// Kernel over a pre-collected live-slot list, so suite-level
    /// callers enumerate the bitmap once, not once per CFD. Each worker
    /// scans its contiguous slot chunk straight off the symbol columns.
    ///
    /// Returns the number of LHS groups the variable pass probed and the
    /// per-shard worker wall-µs (both passes summed per chunk index) so
    /// `--explain` can show shard balance; the two clock reads per chunk
    /// are noise next to the chunk scans themselves.
    fn detect_slots_into(
        &self,
        slots: &[usize],
        cfd: &Cfd,
        cfd_idx: usize,
        report: &mut ViolationReport,
    ) -> (usize, Vec<u64>) {
        debug_assert_eq!(cfd.relation, self.table.schema().name());
        let chunk_size = slots.len().div_ceil(self.jobs).max(1);
        let lhs_cols = self.table.proj(&cfd.lhs);
        let rhs_col = self.table.col(cfd.rhs);
        let mut shard_us: Vec<u64> = Vec::new();
        let absorb_shard = |i: usize, us: u64, shard_us: &mut Vec<u64>| {
            if shard_us.len() <= i {
                shard_us.resize(i + 1, 0);
            }
            shard_us[i] += us;
        };

        // Pass 1: constant rows, tuple at a time, sharded. The compiled
        // predicate table is shared read-only across workers.
        let const_rows = compile_constant_rows(cfd, self.table.pool());
        if !const_rows.is_empty() && !slots.is_empty() {
            let per_chunk: Vec<(Vec<Violation>, u64)> = std::thread::scope(|scope| {
                let (const_rows, lhs_cols) = (&const_rows, &lhs_cols);
                let handles: Vec<_> = slots
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move || {
                            let start = std::time::Instant::now();
                            let found: Vec<Violation> = chunk
                                .iter()
                                .filter_map(|&slot| {
                                    constant_violation_at(const_rows, lhs_cols, rhs_col, slot).map(
                                        |tp_idx| Violation::CfdConstant {
                                            cfd: cfd_idx,
                                            row: tp_idx,
                                            tuple: TupleId(slot as u64),
                                        },
                                    )
                                })
                                .collect();
                            (found, start.elapsed().as_micros() as u64)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("detect worker panicked")).collect()
            });
            // Chunks are contiguous slot ranges: concatenating in chunk
            // order is row order, exactly the sequential scan's output.
            for (i, (vs, us)) in per_chunk.into_iter().enumerate() {
                report.violations.extend(vs);
                absorb_shard(i, us, &mut shard_us);
            }
        }

        // Pass 2: variable rows via sharded interned grouping.
        let var_rows = variable_rows_of(cfd);
        if var_rows.is_empty() || slots.is_empty() {
            return (0, shard_us);
        }
        let timed_partials: Vec<(SymGroups, u64)> = std::thread::scope(|scope| {
            let lhs_cols = &lhs_cols;
            let handles: Vec<_> = slots
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        let start = std::time::Instant::now();
                        let mut groups: SymGroups = GroupBy::new();
                        for &slot in chunk {
                            add_slot_to_group(&mut groups, lhs_cols, rhs_col, slot);
                        }
                        (groups, start.elapsed().as_micros() as u64)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("detect worker panicked")).collect()
        });
        let partials: Vec<SymGroups> = timed_partials
            .into_iter()
            .enumerate()
            .map(|(i, (groups, us))| {
                absorb_shard(i, us, &mut shard_us);
                groups
            })
            .collect();
        // Deterministic merge: folding partial maps in chunk order keeps
        // each group's member list in global row order and its
        // distinct-RHS list in first-seen order — the same state a
        // sequential scan builds. The cached entry hashes are reused, so
        // the fold never re-hashes a key.
        let mut groups: SymGroups = GroupBy::new();
        for partial in partials {
            for (hash, key, part) in partial.into_entries() {
                match groups.probe(hash, |k| *k == key) {
                    None => {
                        groups.insert_unique(hash, key, part);
                    }
                    Some(i) => {
                        let g = groups.value_at_mut(i);
                        g.members.extend(part.members);
                        for rhs in part.rhs_syms {
                            if !g.rhs_syms.contains(&rhs) {
                                g.rhs_syms.push(rhs);
                            }
                        }
                    }
                }
            }
        }
        emit_variable_violations(cfd_idx, &var_rows, &groups, self.table.pool(), report);
        (groups.len(), shard_us)
    }

    /// Detect all violations of one CFD.
    pub fn detect(&self, cfd: &Cfd, cfd_idx: usize) -> ViolationReport {
        let mut report = ViolationReport::default();
        self.detect_into(cfd, cfd_idx, &mut report);
        report
    }

    /// Detect violations of a whole suite, one sharded pass per CFD
    /// (the live-slot list materialises once for the whole suite).
    pub fn detect_all(&self, cfds: &[Cfd]) -> ViolationReport {
        let slots: Vec<usize> = self.table.live_slots().collect();
        let mut report = ViolationReport::default();
        for (i, cfd) in cfds.iter().enumerate() {
            self.detect_slots_into(&slots, cfd, i, &mut report);
        }
        report
    }
}

/// Sharded CIND witness probing: the target index builds once, source
/// tuples shard across workers, findings concatenate in chunk order
/// (matching [`crate::cind::CindDetector::detect`]'s row-order output).
fn detect_cind_parallel(
    cind: &Cind,
    from: &Table,
    to: &Table,
    cind_idx: usize,
    jobs: usize,
) -> ViolationReport {
    let target = cind.build_target_index(to);
    let rows: Vec<(TupleId, Vec<Value>)> = from.rows().collect();
    let chunk_size = rows.len().div_ceil(jobs).max(1);
    let mut report = ViolationReport::default();
    let per_chunk: Vec<Vec<Violation>> = std::thread::scope(|scope| {
        let target = &target;
        let handles: Vec<_> = rows
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .filter(|(_, row)| cind.applies_to(row) && !target.contains_row(cind, row))
                        .map(|(id, _)| Violation::CindMissingWitness { cind: cind_idx, tuple: *id })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("detect worker panicked")).collect()
    });
    for vs in per_chunk {
        report.violations.extend(vs);
    }
    report
}

/// The parallel engine: [`NativeEngine`] semantics, sharded across
/// `jobs` threads. Reports are byte-identical to the native engine's.
#[derive(Clone, Copy, Debug)]
pub struct ParallelEngine {
    jobs: usize,
}

impl ParallelEngine {
    /// `jobs = 0` means one shard per available core.
    pub fn new(jobs: usize) -> Self {
        ParallelEngine { jobs: if jobs == 0 { auto_jobs() } else { jobs } }
    }

    /// The shard count in use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }
}

impl Default for ParallelEngine {
    fn default() -> Self {
        ParallelEngine::new(0)
    }
}

impl Detector for ParallelEngine {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn shards(&self) -> usize {
        self.jobs
    }

    fn scan(&self, job: &DetectJob<'_>) -> Result<ViolationReport> {
        // Merged tableaux: run the merged suite through this same
        // engine, then map indices back (byte-identical to NativeEngine
        // in merged mode too, since both remaps see identical reports).
        if job.merge_tableaux {
            return run_merged_job(job, |j| self.scan(j));
        }
        // Malformed patterns must error here, not panic in a worker.
        job.validate()?;
        // One shard degenerates to the sequential engine exactly.
        if self.jobs <= 1 {
            return NativeEngine.scan(job);
        }
        let mut report = ViolationReport::default();
        // Enumerate each relation's live slots once for the whole suite.
        type RelationCache<'a> = (&'a str, ParallelDetector<'a>, Vec<usize>);
        let mut cache: Vec<RelationCache<'_>> = Vec::new();
        for (i, cfd) in job.cfds.iter().enumerate() {
            if !cache.iter().any(|(r, ..)| *r == cfd.relation) {
                let table = job.table(&cfd.relation)?;
                cache.push((
                    &cfd.relation,
                    ParallelDetector::new(table, self.jobs),
                    table.live_slots().collect(),
                ));
            }
            let (_, detector, slots) =
                cache.iter().find(|(r, ..)| *r == cfd.relation).expect("just cached");
            detector.detect_slots_into(slots, cfd, i, &mut report);
        }
        if !job.cinds.is_empty() {
            let catalog = job.catalog().ok_or_else(|| {
                revival_relation::Error::Io("CIND detection needs a catalog-backed job".into())
            })?;
            for (i, cind) in job.cinds.iter().enumerate() {
                let from = catalog.get(&cind.from_relation)?;
                let to = catalog.get(&cind.to_relation)?;
                let r = detect_cind_parallel(cind, from, to, i, self.jobs);
                report.violations.extend(r.violations);
            }
        }
        Ok(report)
    }

    fn scan_profiled(
        &self,
        job: &DetectJob<'_>,
        profile: &mut revival_obs::JobProfile,
    ) -> Result<ViolationReport> {
        if job.merge_tableaux {
            // Merged-suite constraints don't map 1:1 to the caller's;
            // the completeness pass fills per-original-constraint rows.
            return run_merged_job(job, |j| self.scan(j));
        }
        job.validate()?;
        if self.jobs <= 1 {
            return NativeEngine.scan_profiled(job, profile);
        }
        // Same structure as `scan`, with the kernels' group counts and
        // per-shard worker times attributed per constraint. Reports are
        // byte-identical: profiling only reads what the scan computes.
        let mut report = ViolationReport::default();
        type RelationCache<'a> = (&'a str, ParallelDetector<'a>, Vec<usize>);
        let mut cache: Vec<RelationCache<'_>> = Vec::new();
        for (i, cfd) in job.cfds.iter().enumerate() {
            if !cache.iter().any(|(r, ..)| *r == cfd.relation) {
                let table = job.table(&cfd.relation)?;
                cache.push((
                    &cfd.relation,
                    ParallelDetector::new(table, self.jobs),
                    table.live_slots().collect(),
                ));
            }
            let (_, detector, slots) =
                cache.iter().find(|(r, ..)| *r == cfd.relation).expect("just cached");
            let name = cfd_profile_name(job, i);
            let start = std::time::Instant::now();
            let (groups, shard_us) = detector.detect_slots_into(slots, cfd, i, &mut report);
            let us = start.elapsed().as_micros() as u64;
            if revival_obs::trace::active() {
                revival_obs::trace::record_at(&name, start, us);
            }
            let c = profile.entry(&name, "cfd");
            c.groups_probed += groups as u64;
            c.wall_us += us;
            if c.shard_us.len() < shard_us.len() {
                c.shard_us.resize(shard_us.len(), 0);
            }
            for (acc, us) in c.shard_us.iter_mut().zip(&shard_us) {
                *acc += us;
            }
        }
        if !job.cinds.is_empty() {
            let catalog = job.catalog().ok_or_else(|| {
                revival_relation::Error::Io("CIND detection needs a catalog-backed job".into())
            })?;
            for (i, cind) in job.cinds.iter().enumerate() {
                let from = catalog.get(&cind.from_relation)?;
                let to = catalog.get(&cind.to_relation)?;
                let name = cind_profile_name(job, i);
                let start = std::time::Instant::now();
                let r = detect_cind_parallel(cind, from, to, i, self.jobs);
                let us = start.elapsed().as_micros() as u64;
                report.violations.extend(r.violations);
                if revival_obs::trace::active() {
                    revival_obs::trace::record_at(&name, start, us);
                }
                profile.entry(&name, "cind").wall_us += us;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::NativeDetector;
    use revival_constraints::parser::parse_cfds;
    use revival_relation::{Schema, Type};

    fn schema() -> Schema {
        Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("zip", Type::Str)
            .attr("street", Type::Str)
            .attr("city", Type::Str)
            .build()
    }

    fn suite() -> Vec<Cfd> {
        parse_cfds(
            "customer([cc='44', zip] -> [street])\n\
             customer([cc='01', zip='07974'] -> [city='mh'])\n\
             customer([zip] -> [city])",
            &schema(),
        )
        .unwrap()
    }

    /// A deterministic pseudo-random table big enough that every shard
    /// count exercises chunk boundaries.
    fn big_table(rows: usize) -> Table {
        let mut t = Table::new(schema());
        let mut x = 0x2545f4914f6cdd1du64;
        let mut next = move |m: usize| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % m as u64) as usize
        };
        for _ in 0..rows {
            let cc = ["44", "01", "86"][next(3)];
            let zip = format!("Z{}", next(40));
            let street = format!("S{}", next(8));
            let city = format!("C{}", next(5));
            t.push(vec![cc.into(), zip.into(), street.into(), city.into()]).unwrap();
        }
        t
    }

    #[test]
    fn byte_identical_to_sequential_at_any_shard_count() {
        let t = big_table(1_000);
        let cfds = suite();
        let sequential = NativeDetector::new(&t).detect_all(&cfds);
        assert!(!sequential.is_empty());
        for jobs in [1, 2, 3, 4, 7, 16] {
            let parallel = ParallelDetector::new(&t, jobs).detect_all(&cfds);
            assert_eq!(
                format!("{sequential}"),
                format!("{parallel}"),
                "jobs={jobs} must render identically"
            );
            assert_eq!(sequential, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn engine_matches_native_engine_byte_for_byte() {
        let t = big_table(500);
        let cfds = suite();
        let job = DetectJob::on_table(&t, &cfds);
        let native = NativeEngine.run(&job).unwrap();
        for jobs in [2, 4] {
            let parallel = ParallelEngine::new(jobs).run(&job).unwrap();
            assert_eq!(native, parallel);
            assert_eq!(format!("{native}"), format!("{parallel}"));
        }
    }

    #[test]
    fn empty_and_tiny_tables() {
        let t = Table::new(schema());
        let cfds = suite();
        assert!(ParallelDetector::new(&t, 4).detect_all(&cfds).is_empty());
        let mut one = Table::new(schema());
        one.push(vec!["01".into(), "07974".into(), "Mtn".into(), "nyc".into()]).unwrap();
        // More shards than rows: still one constant violation.
        let report = ParallelDetector::new(&one, 8).detect_all(&cfds);
        assert_eq!(report.violating_tuples().len(), 1);
    }

    #[test]
    fn auto_jobs_resolves() {
        let t = big_table(10);
        let d = ParallelDetector::new(&t, 0);
        assert!(d.jobs() >= 1);
        assert!(ParallelEngine::new(0).jobs() >= 1);
        assert_eq!(ParallelEngine::default().jobs(), ParallelEngine::new(0).jobs());
    }
}
