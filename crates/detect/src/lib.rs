//! # revival-detect
//!
//! Violation detection for conditional dependencies — the capability the
//! Semandaq prototype (§5 of the paper) demonstrates: *"automatic
//! detections of cfd violations, based on efficient sql-based
//! techniques"*.
//!
//! Four detectors are provided:
//!
//! * [`native::NativeDetector`] — hash-group detection, one pass per
//!   embedded FD; the fastest path and the reference implementation;
//! * [`sqlgen`] — the two-query SQL encoding of Fan et al. (TODS 2008):
//!   a per-tuple query `Q_c` for constant tableau rows and a
//!   `GROUP BY … HAVING COUNT(DISTINCT …) > 1` query `Q_v` for variable
//!   rows, executed on `revival-relation`'s SQL engine;
//! * [`incremental::IncrementalDetector`] — maintains violations under
//!   tuple insertions and deletions in time proportional to the delta;
//! * [`cind::CindDetector`] — detection for conditional inclusion
//!   dependencies across two relations.
//!
//! All detectors agree on the [`report::ViolationReport`] structure, and
//! tests in this crate assert they agree with each other.
//!
//! The [`engine`] module unifies them behind one [`engine::Detector`]
//! trait: callers build a [`engine::DetectJob`] (data + suite) and run
//! it on any engine — including [`parallel::ParallelEngine`], which
//! shards the scans across threads and merges per-shard reports
//! deterministically (byte-identical to the sequential engine).

pub mod cind;
pub mod engine;
pub mod incremental;
pub mod native;
pub mod parallel;
pub mod report;
pub mod sqlgen;

pub use cind::CindDetector;
pub use engine::{
    cfd_profile_name, cind_profile_name, engine_by_name, CindEngine, DetectJob, Detector,
    IncrementalEngine, NativeEngine, SqlEngine,
};
pub use incremental::IncrementalDetector;
pub use native::NativeDetector;
pub use parallel::{ParallelDetector, ParallelEngine};
pub use report::{Violation, ViolationReport};
