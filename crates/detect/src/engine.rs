//! The unified detection engine layer.
//!
//! Before this layer existed, every caller (the `semandaq` CLI, the
//! bench harness, tests) wired itself to one concrete detector's
//! entry points — `NativeDetector::detect_all`, `detect_sql`,
//! `CindDetector::detect_all`, hand-rolled `IncrementalDetector`
//! replay — each with a different shape. The [`Detector`] trait gives
//! them all one: a [`DetectJob`] names the data (a single table or a
//! multi-relation catalog) and the constraint suite (CFDs and,
//! optionally, CINDs); an engine turns the job into a
//! [`ViolationReport`].
//!
//! Engines are interchangeable and agree tuple-for-tuple; the parity is
//! asserted by tests in this crate and by the workspace-level
//! `cross_engine_parity` property test. [`NativeEngine`] and
//! [`crate::parallel::ParallelEngine`] additionally agree on report
//! *order* byte-for-byte, because both run the same shared kernels in
//! `native`/`parallel` (sequentially vs. sharded-and-merged).

use crate::cind::CindDetector;
use crate::incremental::IncrementalDetector;
use crate::native::NativeDetector;
use crate::report::{Violation, ViolationReport};
use crate::sqlgen::SqlDetector;
use revival_constraints::{Cfd, Cind};
use revival_relation::{Catalog, Error, Result, Table};
use std::sync::Mutex;

/// The data a detection job runs over: one in-memory table, or a
/// catalog resolving relation names for multi-relation suites.
#[derive(Clone, Copy)]
enum DataRef<'a> {
    Table(&'a Table),
    Catalog(&'a Catalog),
}

/// One detection request: data plus the constraint suite.
///
/// Violation indices in the resulting report refer to positions in
/// `cfds` (for CFD violations) and `cinds` (for CIND violations) — also
/// under [`DetectJob::merged`], where engines scan the merged suite but
/// report against the caller's original one.
#[derive(Clone, Copy)]
pub struct DetectJob<'a> {
    data: DataRef<'a>,
    pub cfds: &'a [Cfd],
    pub cinds: &'a [Cind],
    /// Run the suite merged by embedded FD (one grouping pass per FD
    /// instead of one per CFD — the TODS 2008 merged-tableau
    /// optimisation), with violation indices mapped back to `cfds`.
    pub merge_tableaux: bool,
}

impl<'a> DetectJob<'a> {
    /// A job over a single table (the common CLI/session case).
    pub fn on_table(table: &'a Table, cfds: &'a [Cfd]) -> Self {
        DetectJob { data: DataRef::Table(table), cfds, cinds: &[], merge_tableaux: false }
    }

    /// A job over a catalog of relations.
    pub fn on_catalog(catalog: &'a Catalog, cfds: &'a [Cfd]) -> Self {
        DetectJob { data: DataRef::Catalog(catalog), cfds, cinds: &[], merge_tableaux: false }
    }

    /// Attach a CIND suite (requires a catalog-backed job to resolve
    /// the two relations of each CIND, unless the suite is empty).
    pub fn with_cinds(mut self, cinds: &'a [Cind]) -> Self {
        self.cinds = cinds;
        self
    }

    /// Toggle merged-tableau execution: every engine scans the suite
    /// merged by embedded FD and maps violation indices back, so the
    /// report is interchangeable with the unmerged run's (up to order).
    pub fn merged(mut self, on: bool) -> Self {
        self.merge_tableaux = on;
        self
    }

    /// Resolve a relation name against the job's data.
    pub fn table(&self, name: &str) -> Result<&'a Table> {
        match self.data {
            DataRef::Table(t) if t.schema().name() == name => Ok(t),
            DataRef::Table(_) => Err(Error::UnknownRelation(name.into())),
            DataRef::Catalog(c) => c.get(name),
        }
    }

    /// The backing catalog, if the job was built over one.
    pub fn catalog(&self) -> Option<&'a Catalog> {
        match self.data {
            DataRef::Catalog(c) => Some(c),
            DataRef::Table(_) => None,
        }
    }

    /// Validate every CFD tableau in the suite. Engines run this before
    /// scanning so a malformed pattern surfaces as
    /// [`Error::MalformedPattern`] up front, never as a panic inside a
    /// worker thread mid-shard (which would abort a repair pass).
    pub fn validate(&self) -> Result<()> {
        self.cfds.iter().try_for_each(Cfd::validate)
    }

    /// Live rows across the distinct relations the suite reads — the
    /// footprint of data a run touches (merged runs scan the same rows
    /// as unmerged ones).
    pub fn rows_in_scope(&self) -> usize {
        let mut seen: Vec<&str> = Vec::new();
        let mut rows = 0;
        let names = self.cfds.iter().map(|c| c.relation.as_str()).chain(
            self.cinds.iter().flat_map(|c| [c.from_relation.as_str(), c.to_relation.as_str()]),
        );
        for name in names {
            if seen.contains(&name) {
                continue;
            }
            seen.push(name);
            if let Ok(table) = self.table(name) {
                rows += table.len();
            }
        }
        rows
    }

    /// Live rows of one relation, 0 if the job can't resolve it.
    pub(crate) fn relation_rows(&self, name: &str) -> u64 {
        self.table(name).map(|t| t.len() as u64).unwrap_or(0)
    }

    /// The per-constraint rows-scanned sum: every CFD scans its
    /// relation's live rows once, every CIND scans its source relation
    /// once. This is what `detect_rows_scanned_total` records and what
    /// each `--explain` constraint row reports, so per-constraint
    /// profile totals reconcile with the job-level counter exactly.
    pub fn rows_scanned_sum(&self) -> u64 {
        let cfd_rows: u64 = self.cfds.iter().map(|c| self.relation_rows(&c.relation)).sum();
        let cind_rows: u64 = self.cinds.iter().map(|c| self.relation_rows(&c.from_relation)).sum();
        cfd_rows + cind_rows
    }
}

/// The profile row name of CFD `i` in `job`'s suite: a stable `cfd#i`
/// prefix (unique even when the suite repeats a constraint) plus the
/// surface syntax flattened to one line. Public so repair profiles name
/// constraints identically to detect profiles.
pub fn cfd_profile_name(job: &DetectJob<'_>, i: usize) -> String {
    let cfd = &job.cfds[i];
    match job.table(&cfd.relation) {
        Ok(t) => {
            let text = cfd.display(t.schema()).to_string();
            format!("cfd#{i} {}", text.lines().collect::<Vec<_>>().join("; "))
        }
        Err(_) => format!("cfd#{i} {}(?)", cfd.relation),
    }
}

/// The profile row name of CIND `j` in `job`'s suite.
pub fn cind_profile_name(job: &DetectJob<'_>, j: usize) -> String {
    let cind = &job.cinds[j];
    format!("cind#{j} {} <= {}", cind.from_relation, cind.to_relation)
}

/// Make a detect profile complete: every constraint in the suite gets a
/// row, never silently omitted. Violation counts come from the report
/// (authoritative for every engine) and rows-scanned is the
/// constraint's relation size — the same per-constraint semantic
/// [`DetectJob::rows_scanned_sum`] sums, for any engine, so profile
/// totals always reconcile with the job-level counter.
fn fill_profile_gaps(
    job: &DetectJob<'_>,
    report: &ViolationReport,
    profile: &mut revival_obs::JobProfile,
) {
    let mut cfd_viol = vec![0u64; job.cfds.len()];
    let mut cind_viol = vec![0u64; job.cinds.len()];
    for v in &report.violations {
        match v {
            Violation::CfdConstant { cfd, .. } | Violation::CfdVariable { cfd, .. } => {
                if let Some(n) = cfd_viol.get_mut(*cfd) {
                    *n += 1;
                }
            }
            Violation::CindMissingWitness { cind, .. } => {
                if let Some(n) = cind_viol.get_mut(*cind) {
                    *n += 1;
                }
            }
        }
    }
    for (i, viol) in cfd_viol.iter().enumerate() {
        let name = cfd_profile_name(job, i);
        let rows = job.relation_rows(&job.cfds[i].relation);
        let c = profile.entry(&name, "cfd");
        c.rows_scanned = rows;
        c.violations = *viol;
    }
    for (j, viol) in cind_viol.iter().enumerate() {
        let name = cind_profile_name(job, j);
        let rows = job.relation_rows(&job.cinds[j].from_relation);
        let c = profile.entry(&name, "cind");
        c.rows_scanned = rows;
        c.violations = *viol;
    }
}

/// A violation-detection engine.
///
/// Implementations must agree on *what* violates (the same set of
/// [`Violation`]s up to order, asserted by parity tests); they differ
/// in *how* the scan runs (hash-grouping in process, generated SQL,
/// maintained incremental state, sharded threads).
pub trait Detector {
    /// Engine name, as the CLI `--engine` flag spells it.
    fn name(&self) -> &'static str;

    /// Shard count the engine scans with (1 for sequential engines).
    fn shards(&self) -> usize {
        1
    }

    /// The engine-specific scan. Implementors define this; callers go
    /// through [`Detector::run`], which layers engine metrics on top.
    fn scan(&self, job: &DetectJob<'_>) -> Result<ViolationReport>;

    /// The engine-specific *profiled* scan: the exact same report as
    /// [`Detector::scan`] (profiling is side-effect-only), with
    /// per-constraint work attributed into `profile` along the way.
    /// The default ignores the profile — engines without native
    /// per-constraint instrumentation (SQL, incremental) get their
    /// constraint rows filled by [`Detector::run_profiled`]'s
    /// completeness pass instead, so nothing is silently omitted.
    fn scan_profiled(
        &self,
        job: &DetectJob<'_>,
        _profile: &mut revival_obs::JobProfile,
    ) -> Result<ViolationReport> {
        self.scan(job)
    }

    /// Detect every violation of the job's suite, recording per-engine
    /// run counts and latency plus rows-scanned / violations-emitted
    /// tallies. Instrumentation is side-effect-only (reports are
    /// untouched, so engine parity holds with it on or off) and skipped
    /// entirely when observability is disabled.
    fn run(&self, job: &DetectJob<'_>) -> Result<ViolationReport> {
        if !revival_obs::enabled() {
            return self.scan(job);
        }
        let start = std::time::Instant::now();
        let result = self.scan(job);
        let us = start.elapsed().as_micros() as u64;
        record_run_obs(self.name(), job, &result, start, us);
        result
    }

    /// [`Detector::run`] with a [`revival_obs::JobProfile`] alongside:
    /// the same report and the same job-level obs records, plus
    /// per-constraint attribution. Every constraint in the suite
    /// appears in the profile — engines that can't attribute wall time
    /// per constraint still get rows-scanned and violation counts via
    /// the completeness pass. Reports stay byte-identical to
    /// [`Detector::run`]'s.
    fn run_profiled(
        &self,
        job: &DetectJob<'_>,
    ) -> Result<(ViolationReport, revival_obs::JobProfile)> {
        let mut profile = revival_obs::JobProfile::new("detect", self.name(), self.shards() as u64);
        let start = std::time::Instant::now();
        let result = self.scan_profiled(job, &mut profile);
        let us = start.elapsed().as_micros() as u64;
        if revival_obs::enabled() {
            record_run_obs(self.name(), job, &result, start, us);
        }
        let report = result?;
        fill_profile_gaps(job, &report, &mut profile);
        profile.meta_add("suite_cfds", job.cfds.len() as u64);
        profile.meta_add("suite_cinds", job.cinds.len() as u64);
        profile.meta_add("rows_in_scope", job.rows_in_scope() as u64);
        profile.finish(us);
        Ok((report, profile))
    }
}

/// The shared job-level obs flush of [`Detector::run`] and
/// [`Detector::run_profiled`] (callers check `enabled()`).
fn record_run_obs(
    engine: &str,
    job: &DetectJob<'_>,
    result: &Result<ViolationReport>,
    start: std::time::Instant,
    us: u64,
) {
    let reg = revival_obs::global();
    reg.histogram(&format!("detect_run_us{{engine=\"{engine}\"}}")).record(us);
    reg.counter(&format!("detect_runs_total{{engine=\"{engine}\"}}")).inc();
    if let Ok(report) = result {
        reg.counter("detect_violations_total").add(report.len() as u64);
        reg.counter("detect_rows_scanned_total").add(job.rows_scanned_sum());
    }
    if revival_obs::trace::active() {
        revival_obs::trace::record_at(&format!("detect.{engine}"), start, us);
    }
}

/// Run a merged-tableau job through `run`: merge the suite by embedded
/// FD (tracking row provenance), detect on the merged suite, and map
/// every violation back to the caller's original suite — *exactly*.
///
/// Variable violations map 1:1 per provenance entry (a tableau row
/// shared verbatim by several original CFDs expands to one violation
/// each — just as the unmerged run reports them). Constant violations
/// need care: detectors report one violation per `(cfd, tuple)` with the
/// *first* violating tableau row, so a merged CFD collapses what would
/// be several per-original-CFD reports into one. The remap re-checks the
/// reported tuple against the merged tableau and emits the first
/// violating row *per original CFD* — precisely the unmerged semantics,
/// asserted by the workspace-level merged-parity property test.
pub(crate) fn run_merged_job(
    job: &DetectJob<'_>,
    run: impl FnOnce(&DetectJob<'_>) -> Result<ViolationReport>,
) -> Result<ViolationReport> {
    job.validate()?;
    let merged = revival_constraints::cfd::merge_by_embedded_fd_mapped(job.cfds);
    let mut mjob = *job;
    mjob.cfds = &merged.cfds;
    mjob.merge_tableaux = false;
    let raw = run(&mjob)?;
    let mut out = ViolationReport::default();
    for v in raw.violations {
        match v {
            Violation::CfdConstant { cfd, tuple, .. } => {
                let mcfd = &merged.cfds[cfd];
                let row = job.table(&mcfd.relation)?.get(tuple)?;
                // First violating row per original CFD, in suite order.
                let mut firsts: Vec<(usize, usize)> = Vec::new();
                for (j, tp) in mcfd.tableau.iter().enumerate() {
                    if !mcfd.violates_constant_row(&row, tp) {
                        continue;
                    }
                    for &(oc, orow) in &merged.provenance[cfd][j] {
                        match firsts.iter_mut().find(|(c, _)| *c == oc) {
                            Some((_, r)) => *r = (*r).min(orow),
                            None => firsts.push((oc, orow)),
                        }
                    }
                }
                firsts.sort_unstable();
                for (oc, orow) in firsts {
                    out.violations.push(Violation::CfdConstant { cfd: oc, row: orow, tuple });
                }
            }
            Violation::CfdVariable { cfd, row, key, tuples } => {
                for &(oc, orow) in &merged.provenance[cfd][row] {
                    out.violations.push(Violation::CfdVariable {
                        cfd: oc,
                        row: orow,
                        key: key.clone(),
                        tuples: tuples.clone(),
                    });
                }
            }
            cind @ Violation::CindMissingWitness { .. } => out.violations.push(cind),
        }
    }
    Ok(out)
}

/// Detect the CIND portion of a job, appending to `report`.
fn detect_cinds_into(job: &DetectJob<'_>, report: &mut ViolationReport) -> Result<()> {
    if job.cinds.is_empty() {
        return Ok(());
    }
    let catalog = job
        .catalog()
        .ok_or_else(|| Error::Io("CIND detection needs a catalog-backed job".into()))?;
    let r = CindDetector::detect_all(job.cinds, catalog)?;
    report.violations.extend(r.violations);
    Ok(())
}

/// [`detect_cinds_into`] with per-CIND wall time attributed into
/// `profile` (and per-constraint trace spans when tracing is on).
pub(crate) fn detect_cinds_into_profiled(
    job: &DetectJob<'_>,
    report: &mut ViolationReport,
    profile: &mut revival_obs::JobProfile,
) -> Result<()> {
    if job.cinds.is_empty() {
        return Ok(());
    }
    let catalog = job
        .catalog()
        .ok_or_else(|| Error::Io("CIND detection needs a catalog-backed job".into()))?;
    for (j, cind) in job.cinds.iter().enumerate() {
        let from = catalog.get(&cind.from_relation)?;
        let to = catalog.get(&cind.to_relation)?;
        let name = cind_profile_name(job, j);
        let start = std::time::Instant::now();
        let r = CindDetector::detect(cind, from, to, j);
        let us = start.elapsed().as_micros() as u64;
        report.violations.extend(r.violations);
        if revival_obs::trace::active() {
            revival_obs::trace::record_at(&name, start, us);
        }
        profile.entry(&name, "cind").wall_us += us;
    }
    Ok(())
}

/// The native hash-grouping engine ([`NativeDetector`] per relation,
/// [`CindDetector`] for CINDs) — the sequential reference.
#[derive(Clone, Copy, Debug, Default)]
pub struct NativeEngine;

impl Detector for NativeEngine {
    fn name(&self) -> &'static str {
        "native"
    }

    fn scan(&self, job: &DetectJob<'_>) -> Result<ViolationReport> {
        if job.merge_tableaux {
            return run_merged_job(job, |j| self.scan(j));
        }
        job.validate()?;
        let mut report = ViolationReport::default();
        for (i, cfd) in job.cfds.iter().enumerate() {
            let table = job.table(&cfd.relation)?;
            NativeDetector::new(table).detect_into(cfd, i, &mut report);
        }
        detect_cinds_into(job, &mut report)?;
        Ok(report)
    }

    fn scan_profiled(
        &self,
        job: &DetectJob<'_>,
        profile: &mut revival_obs::JobProfile,
    ) -> Result<ViolationReport> {
        if job.merge_tableaux {
            // Merged runs scan the merged suite, so per-original-CFD
            // wall time is not measurable; the completeness pass still
            // fills rows and violations per original constraint.
            return self.scan(job);
        }
        job.validate()?;
        let mut report = ViolationReport::default();
        for (i, cfd) in job.cfds.iter().enumerate() {
            let table = job.table(&cfd.relation)?;
            let name = cfd_profile_name(job, i);
            let start = std::time::Instant::now();
            let groups = NativeDetector::new(table).detect_into(cfd, i, &mut report);
            let us = start.elapsed().as_micros() as u64;
            if revival_obs::trace::active() {
                revival_obs::trace::record_at(&name, start, us);
            }
            let c = profile.entry(&name, "cfd");
            c.groups_probed += groups as u64;
            c.wall_us += us;
        }
        detect_cinds_into_profiled(job, &mut report, profile)?;
        Ok(report)
    }
}

/// The two-query SQL encoding of Fan et al. (TODS 2008), executed on
/// the bundled SQL engine via [`SqlDetector`]. CINDs fall back to the
/// native witness probe (their `NOT EXISTS` encoding is outside the
/// SQL subset — see `cind::generate_sql`).
#[derive(Clone, Copy, Debug, Default)]
pub struct SqlEngine;

impl Detector for SqlEngine {
    fn name(&self) -> &'static str {
        "sql"
    }

    fn scan(&self, job: &DetectJob<'_>) -> Result<ViolationReport> {
        if job.merge_tableaux {
            return run_merged_job(job, |j| self.scan(j));
        }
        job.validate()?;
        // The SQL executor resolves relation names against a catalog;
        // single-table jobs get a throwaway one.
        let owned;
        let catalog = match job.catalog() {
            Some(c) => c,
            None => {
                let mut c = Catalog::new();
                for cfd in job.cfds {
                    if c.get(&cfd.relation).is_err() {
                        c.register(job.table(&cfd.relation)?.clone());
                    }
                }
                owned = c;
                &owned
            }
        };
        let mut report = SqlDetector::new(catalog).detect_all(job.cfds)?;
        detect_cinds_into(job, &mut report)?;
        Ok(report)
    }
}

/// The detector state [`IncrementalEngine`] keeps warm between runs.
struct IncCache {
    /// Fingerprint of the (suite, data) pair the state was built for.
    key: u64,
    /// Per relation: job-suite indices of its CFDs + loaded detector.
    relations: Vec<(Vec<usize>, IncrementalDetector)>,
}

/// Runs the job through [`IncrementalDetector`]s (one per relation) —
/// the batch entry point of the engine that otherwise maintains
/// violations under streaming inserts/deletes.
///
/// The engine caches the loaded detectors keyed by a fingerprint of the
/// whole job — the CFD suite plus every referenced table's name and
/// row contents. Re-running a matching job materialises the report from
/// the maintained group state without replaying the tables. **Cache
/// miss path:** any change to the suite or the data (or the first run)
/// changes the fingerprint, and the engine falls back to a full replay
/// — `IncrementalDetector::new` + `load` per relation, `O(n)` — then
/// stores the freshly loaded detectors for the next run. Only the CFD
/// state is cached; CINDs are witness-probed per run.
#[derive(Default)]
pub struct IncrementalEngine {
    cache: Mutex<Option<IncCache>>,
}

impl IncrementalEngine {
    /// An engine with a cold cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Partition the suite by relation (IncrementalDetector assumes
    /// one), remembering each CFD's index in the job's suite.
    fn partition(job: &DetectJob<'_>) -> Vec<(String, Vec<usize>)> {
        let mut relations: Vec<(String, Vec<usize>)> = Vec::new();
        for (i, cfd) in job.cfds.iter().enumerate() {
            match relations.iter_mut().find(|(r, _)| *r == cfd.relation) {
                Some((_, idxs)) => idxs.push(i),
                None => relations.push((cfd.relation.clone(), vec![i])),
            }
        }
        relations
    }

    /// Fingerprint the suite and every table it reads. Hashing rows is
    /// `O(n)` but allocation-free — far cheaper than rebuilding the
    /// group maps, which is what a hit skips. A hit trusts the 64-bit
    /// fingerprint (SipHash with the default key, ~2⁻⁶⁴ accidental
    /// collision on non-adversarial data); callers that cannot accept
    /// that use a fresh engine, which always misses.
    fn fingerprint(job: &DetectJob<'_>, relations: &[(String, Vec<usize>)]) -> Result<u64> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for cfd in job.cfds {
            format!("{cfd:?}").hash(&mut h);
        }
        for (relation, _) in relations {
            let table = job.table(relation)?;
            relation.hash(&mut h);
            table.len().hash(&mut h);
            for (id, row) in table.rows() {
                id.hash(&mut h);
                for v in row {
                    v.hash(&mut h);
                }
            }
        }
        Ok(h.finish())
    }

    /// Materialise the job report from loaded per-relation detectors,
    /// remapping sub-suite indices back to job-suite positions.
    fn materialize(relations: &[(Vec<usize>, IncrementalDetector)]) -> ViolationReport {
        let mut report = ViolationReport::default();
        for (idxs, detector) in relations {
            for mut v in detector.report().violations {
                match &mut v {
                    Violation::CfdConstant { cfd, .. } | Violation::CfdVariable { cfd, .. } => {
                        *cfd = idxs[*cfd]
                    }
                    Violation::CindMissingWitness { .. } => {}
                }
                report.violations.push(v);
            }
        }
        report
    }
}

impl Detector for IncrementalEngine {
    fn name(&self) -> &'static str {
        "incremental"
    }

    fn scan(&self, job: &DetectJob<'_>) -> Result<ViolationReport> {
        if job.merge_tableaux {
            return run_merged_job(job, |j| self.scan(j));
        }
        job.validate()?;
        let relations = Self::partition(job);
        let key = Self::fingerprint(job, &relations)?;
        let mut cache = self.cache.lock().expect("incremental cache lock");
        let mut report = match cache.as_ref() {
            Some(c) if c.key == key => Self::materialize(&c.relations),
            _ => {
                // Cache miss: full replay, then keep the state warm.
                let mut loaded = Vec::with_capacity(relations.len());
                for (relation, idxs) in relations {
                    let table = job.table(&relation)?;
                    let sub: Vec<Cfd> = idxs.iter().map(|&i| job.cfds[i].clone()).collect();
                    let mut inc = IncrementalDetector::new(sub);
                    inc.load(table);
                    loaded.push((idxs, inc));
                }
                let report = Self::materialize(&loaded);
                *cache = Some(IncCache { key, relations: loaded });
                report
            }
        };
        drop(cache);
        detect_cinds_into(job, &mut report)?;
        Ok(report)
    }
}

/// CIND-only detection behind the trait ([`CindDetector`] witness
/// probes); the engine multi-relation suites compose with.
#[derive(Clone, Copy, Debug, Default)]
pub struct CindEngine;

impl Detector for CindEngine {
    fn name(&self) -> &'static str {
        "cind"
    }

    fn scan(&self, job: &DetectJob<'_>) -> Result<ViolationReport> {
        let mut report = ViolationReport::default();
        detect_cinds_into(job, &mut report)?;
        Ok(report)
    }
}

/// Look an engine up by CLI name. `jobs` only affects `parallel` (0 =
/// one shard per available core).
pub fn engine_by_name(name: &str, jobs: usize) -> Result<Box<dyn Detector>> {
    match name {
        "native" => Ok(Box::new(NativeEngine)),
        "sql" => Ok(Box::new(SqlEngine)),
        "incremental" => Ok(Box::new(IncrementalEngine::new())),
        "cind" => Ok(Box::new(CindEngine)),
        "parallel" => Ok(Box::new(crate::parallel::ParallelEngine::new(jobs))),
        other => Err(Error::Io(format!(
            "unknown engine `{other}` (native|sql|incremental|parallel|cind)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_constraints::parser::{parse_cfds, parse_cinds};
    use revival_relation::{Schema, Type, Value};

    fn customer_schema() -> Schema {
        Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("zip", Type::Str)
            .attr("street", Type::Str)
            .attr("city", Type::Str)
            .build()
    }

    fn customer_table() -> Table {
        let mut t = Table::new(customer_schema());
        for r in [
            ["44", "EH8", "Crichton", "edi"],
            ["44", "EH8", "Mayfield", "edi"],
            ["01", "07974", "MtnAve", "nyc"],
            ["01", "10001", "5th", "nyc"],
        ] {
            t.push(r.iter().map(|s| Value::from(*s)).collect()).unwrap();
        }
        t
    }

    fn suite() -> Vec<Cfd> {
        parse_cfds(
            "customer([cc='44', zip] -> [street])\n\
             customer([cc='01', zip='07974'] -> [city='mh'])\n\
             customer([zip] -> [city])",
            &customer_schema(),
        )
        .unwrap()
    }

    #[test]
    fn all_engines_agree_on_table_jobs() {
        let t = customer_table();
        let cfds = suite();
        let job = DetectJob::on_table(&t, &cfds);
        let mut reference = NativeEngine.run(&job).unwrap();
        reference.normalize();
        assert!(!reference.is_empty());
        for name in ["sql", "incremental", "parallel"] {
            let engine = engine_by_name(name, 2).unwrap();
            let mut got = engine.run(&job).unwrap();
            got.normalize();
            assert_eq!(got, reference, "engine {name} disagrees with native");
        }
    }

    #[test]
    fn catalog_jobs_span_relations_and_cinds() {
        let cd_s = Schema::builder("cd")
            .attr("album", Type::Str)
            .attr("price", Type::Int)
            .attr("genre", Type::Str)
            .build();
        let book_s = Schema::builder("book")
            .attr("title", Type::Str)
            .attr("price", Type::Int)
            .attr("format", Type::Str)
            .build();
        let mut cd = Table::new(cd_s.clone());
        cd.push(vec!["Dune".into(), Value::Int(20), "a-book".into()]).unwrap();
        cd.push(vec!["Foundation".into(), Value::Int(15), "a-book".into()]).unwrap();
        let mut book = Table::new(book_s.clone());
        book.push(vec!["Dune".into(), Value::Int(20), "audio".into()]).unwrap();
        let mut catalog = Catalog::new();
        catalog.register(customer_table());
        catalog.register(cd);
        catalog.register(book);
        let cfds = suite();
        let cinds = parse_cinds(
            "cd(album, price; genre='a-book') <= book(title, price; format='audio')",
            &[cd_s, book_s],
        )
        .unwrap();
        let job = DetectJob::on_catalog(&catalog, &cfds).with_cinds(&cinds);
        let mut reference = NativeEngine.run(&job).unwrap();
        reference.normalize();
        // One CIND violation (Foundation has no audio witness) on top of
        // the CFD violations.
        assert_eq!(
            reference
                .violations
                .iter()
                .filter(|v| matches!(v, Violation::CindMissingWitness { .. }))
                .count(),
            1
        );
        for name in ["sql", "incremental", "parallel"] {
            let mut got = engine_by_name(name, 3).unwrap().run(&job).unwrap();
            got.normalize();
            assert_eq!(got, reference, "engine {name} disagrees on catalog job");
        }
        // The CIND-only engine sees exactly the CIND portion.
        let cind_only = CindEngine.run(&job).unwrap();
        assert_eq!(cind_only.len(), 1);
    }

    #[test]
    fn incremental_engine_cache_hits_and_invalidates() {
        let mut t = customer_table();
        let cfds = suite();
        let engine = IncrementalEngine::new();
        let first = engine.run(&DetectJob::on_table(&t, &cfds)).unwrap();
        // Second run hits the cache and reports identically.
        let second = engine.run(&DetectJob::on_table(&t, &cfds)).unwrap();
        assert_eq!(first, second);
        // Any data change misses the cache — no stale reports.
        t.push(vec!["44".into(), "EH8".into(), "NewSt".into(), "edi".into()]).unwrap();
        let third = engine.run(&DetectJob::on_table(&t, &cfds)).unwrap();
        assert_ne!(first, third);
        let mut want = NativeEngine.run(&DetectJob::on_table(&t, &cfds)).unwrap();
        let mut got = third;
        want.normalize();
        got.normalize();
        assert_eq!(got, want);
        // A suite change misses too.
        let fewer = &cfds[..1];
        let narrowed = engine.run(&DetectJob::on_table(&t, fewer)).unwrap();
        let mut want = NativeEngine.run(&DetectJob::on_table(&t, fewer)).unwrap();
        let mut got = narrowed;
        want.normalize();
        got.normalize();
        assert_eq!(got, want);
    }

    #[test]
    fn table_jobs_reject_foreign_relations_and_cinds() {
        let t = customer_table();
        let cfds = parse_cfds("customer([zip] -> [city])", &customer_schema()).unwrap();
        let job = DetectJob::on_table(&t, &cfds);
        assert!(job.table("orders").is_err());
        assert!(job.catalog().is_none());
        let cinds: Vec<Cind> = Vec::new();
        let ok = DetectJob::on_table(&t, &cfds).with_cinds(&cinds);
        assert!(NativeEngine.run(&ok).is_ok());
    }

    #[test]
    fn malformed_patterns_error_instead_of_panicking() {
        use revival_constraints::pattern::{PatternRow, PatternValue};
        let t = customer_table();
        let mut cfds = suite();
        // Corrupt one tableau row behind the constructor's back: the
        // arity no longer matches the LHS.
        cfds[0].tableau.push(PatternRow::new(vec![PatternValue::Wildcard], PatternValue::Wildcard));
        let job = DetectJob::on_table(&t, &cfds);
        for name in ["native", "sql", "incremental", "parallel"] {
            let got = engine_by_name(name, 2).unwrap().run(&job);
            assert!(
                matches!(got, Err(revival_relation::Error::MalformedPattern { .. })),
                "engine {name} must reject the malformed suite, got {got:?}"
            );
        }
    }

    #[test]
    fn merged_jobs_report_against_the_original_suite() {
        let t = customer_table();
        // A suite with a shared embedded FD, a duplicated CFD, and a
        // constant CFD whose embedded FD matches another's — the cases
        // where index remapping must not collapse or misattribute.
        let cfds = parse_cfds(
            "customer([cc='44', zip] -> [street])\n\
             customer([cc='44', zip] -> [street])\n\
             customer([cc, zip] -> [street])\n\
             customer([cc='01', zip='07974'] -> [city='mh'])\n\
             customer([zip] -> [city])",
            &customer_schema(),
        )
        .unwrap();
        let job = DetectJob::on_table(&t, &cfds);
        let mut want = NativeEngine.run(&job).unwrap();
        want.normalize();
        assert!(!want.is_empty());
        for name in ["native", "sql", "incremental", "parallel"] {
            let engine = engine_by_name(name, 2).unwrap();
            let mut got = engine.run(&job.merged(true)).unwrap();
            got.normalize();
            assert_eq!(got, want, "engine {name} merged run must match unmerged native");
        }
        // Native and parallel merged runs agree byte-for-byte, like
        // their unmerged runs.
        let native = NativeEngine.run(&job.merged(true)).unwrap();
        let parallel = engine_by_name("parallel", 3).unwrap().run(&job.merged(true)).unwrap();
        assert_eq!(format!("{native}"), format!("{parallel}"));
        // Every reported index stays within the original suite.
        for v in &native.violations {
            match v {
                Violation::CfdConstant { cfd, row, .. }
                | Violation::CfdVariable { cfd, row, .. } => {
                    assert!(*cfd < cfds.len());
                    assert!(*row < cfds[*cfd].tableau.len());
                }
                Violation::CindMissingWitness { .. } => {}
            }
        }
    }

    #[test]
    fn merged_constant_collapse_is_undone() {
        // Two constant CFDs over the same embedded FD, both violated by
        // the same tuple: the merged scan reports the tuple once, the
        // remap must restore one violation per original CFD.
        let s = customer_schema();
        let cfds = parse_cfds(
            "customer([zip='07974'] -> [city='mh'])\n\
             customer([zip='07974'] -> [city='princeton'])",
            &s,
        )
        .unwrap();
        let mut t = Table::new(s);
        t.push(vec!["01".into(), "07974".into(), "MtnAve".into(), "nyc".into()]).unwrap();
        let job = DetectJob::on_table(&t, &cfds);
        let mut want = NativeEngine.run(&job).unwrap();
        assert_eq!(want.len(), 2, "unmerged reports one violation per CFD");
        let mut got = NativeEngine.run(&job.merged(true)).unwrap();
        want.normalize();
        got.normalize();
        assert_eq!(got, want);
    }

    #[test]
    fn engine_lookup() {
        for name in ["native", "sql", "incremental", "parallel", "cind"] {
            assert_eq!(engine_by_name(name, 1).unwrap().name(), name);
        }
        assert!(engine_by_name("oracle", 1).is_err());
    }
}
