//! Violation reports shared by all detectors.

use revival_relation::{TupleId, Value};
use std::collections::BTreeSet;
use std::fmt;

/// One detected violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A single tuple falsifies a constant tableau row of a CFD.
    CfdConstant {
        /// Index of the CFD in the suite handed to the detector.
        cfd: usize,
        /// Index of the offending tableau row within that CFD.
        row: usize,
        /// The violating tuple.
        tuple: TupleId,
    },
    /// A group of tuples agreeing on the LHS but disagreeing on the RHS
    /// falsifies a variable tableau row.
    CfdVariable {
        cfd: usize,
        row: usize,
        /// The shared LHS key of the conflicting group.
        key: Vec<Value>,
        /// All tuples in the conflicting group (≥ 2, sorted).
        tuples: Vec<TupleId>,
    },
    /// A source tuple that falls under a CIND's pattern has no witness
    /// in the target relation.
    CindMissingWitness {
        /// Index of the CIND in the suite handed to the detector.
        cind: usize,
        tuple: TupleId,
    },
}

impl Violation {
    /// Tuples implicated by this violation.
    pub fn tuples(&self) -> Vec<TupleId> {
        match self {
            Violation::CfdConstant { tuple, .. } | Violation::CindMissingWitness { tuple, .. } => {
                vec![*tuple]
            }
            Violation::CfdVariable { tuples, .. } => tuples.clone(),
        }
    }
}

/// The outcome of a detection pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ViolationReport {
    pub violations: Vec<Violation>,
}

impl ViolationReport {
    /// Number of violations (constant violations count per tuple,
    /// variable violations per conflicting group — matching how the TODS
    /// experiments report "number of violations").
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// True when the data satisfies the suite.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// The set of all violating tuples (deduplicated).
    pub fn violating_tuples(&self) -> BTreeSet<TupleId> {
        self.violations.iter().flat_map(|v| v.tuples()).collect()
    }

    /// Violations concerning one constraint index.
    pub fn for_constraint(&self, idx: usize) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(move |v| match v {
            Violation::CfdConstant { cfd, .. } | Violation::CfdVariable { cfd, .. } => *cfd == idx,
            Violation::CindMissingWitness { cind, .. } => *cind == idx,
        })
    }

    /// Canonical ordering so reports from different detectors compare
    /// equal. Sorts violations and the tuple lists inside them.
    pub fn normalize(&mut self) {
        for v in &mut self.violations {
            if let Violation::CfdVariable { tuples, .. } = v {
                tuples.sort();
            }
        }
        self.violations.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        self.violations.dedup();
    }
}

impl fmt::Display for ViolationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} violation(s), {} tuple(s) involved",
            self.len(),
            self.violating_tuples().len()
        )?;
        for v in &self.violations {
            match v {
                Violation::CfdConstant { cfd, row, tuple } => {
                    writeln!(f, "  const  cfd#{cfd} row#{row} {tuple}")?
                }
                Violation::CfdVariable { cfd, row, key, tuples } => {
                    let key_s: Vec<String> = key.iter().map(|v| v.to_string()).collect();
                    let ts: Vec<String> = tuples.iter().map(|t| t.to_string()).collect();
                    writeln!(
                        f,
                        "  var    cfd#{cfd} row#{row} key=({}) tuples=[{}]",
                        key_s.join(", "),
                        ts.join(", ")
                    )?
                }
                Violation::CindMissingWitness { cind, tuple } => {
                    writeln!(f, "  cind   cind#{cind} {tuple}")?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_of_violations() {
        let v = Violation::CfdConstant { cfd: 0, row: 0, tuple: TupleId(3) };
        assert_eq!(v.tuples(), vec![TupleId(3)]);
        let v = Violation::CfdVariable {
            cfd: 0,
            row: 0,
            key: vec!["k".into()],
            tuples: vec![TupleId(1), TupleId(2)],
        };
        assert_eq!(v.tuples().len(), 2);
    }

    #[test]
    fn report_helpers() {
        let mut r = ViolationReport::default();
        r.violations.push(Violation::CfdConstant { cfd: 1, row: 0, tuple: TupleId(5) });
        r.violations.push(Violation::CfdVariable {
            cfd: 0,
            row: 0,
            key: vec![],
            tuples: vec![TupleId(5), TupleId(6)],
        });
        assert_eq!(r.len(), 2);
        assert_eq!(r.violating_tuples().len(), 2);
        assert_eq!(r.for_constraint(1).count(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn normalize_dedups_and_sorts() {
        let mut r = ViolationReport::default();
        let v = Violation::CfdConstant { cfd: 0, row: 0, tuple: TupleId(1) };
        r.violations.push(v.clone());
        r.violations.push(v);
        r.normalize();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn display_renders() {
        let mut r = ViolationReport::default();
        r.violations.push(Violation::CfdConstant { cfd: 0, row: 0, tuple: TupleId(1) });
        let s = r.to_string();
        assert!(s.contains("1 violation(s)"));
        assert!(s.contains("const"));
    }
}
