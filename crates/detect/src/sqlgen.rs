//! SQL-based detection — the encoding of Fan et al. (TODS 2008) that
//! Semandaq runs against a DBMS.
//!
//! For a normal-form CFD `φ = (R: X → A, Tp)` the paper generates two
//! queries per pattern row `tp`:
//!
//! * **`Q_c`** — constant rows (`tp[A] = c`): select the tuples that
//!   match the LHS pattern but carry a different RHS value:
//!
//!   ```sql
//!   SELECT * FROM R WHERE x1 = 'c1' AND … AND A <> 'c'
//!   ```
//!
//! * **`Q_v`** — variable rows (`tp[A] = _`): select LHS groups holding
//!   more than one RHS value among pattern-matching tuples:
//!
//!   ```sql
//!   SELECT X FROM R WHERE x1 = 'c1' AND …
//!   GROUP BY X HAVING COUNT(DISTINCT A) > 1
//!   ```
//!
//! The queries run on `revival-relation`'s SQL engine; violating tuple
//! ids are then materialised by probing a hash index with the keys the
//! queries return, giving a [`ViolationReport`] identical to the native
//! detector's (asserted by tests here and in `tests/`).

use crate::report::{Violation, ViolationReport};
use revival_constraints::cfd::Cfd;
use revival_constraints::pattern::{PatternRow, PatternValue};
use revival_relation::sql;
use revival_relation::{Catalog, Index, Result, Schema, Table, Value};

/// Quote a value for embedding in generated SQL.
fn sql_literal(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f}"),
        Value::Bool(b) => b.to_string(),
        Value::Null => "NULL".into(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

/// The SQL condition asserting a value matches a pattern, or `None` for
/// wildcards (no restriction).
fn pattern_condition(attr: &str, p: &PatternValue) -> Option<String> {
    match p {
        PatternValue::Wildcard => None,
        PatternValue::Const(c) => Some(format!("{attr} = {}", sql_literal(c))),
        PatternValue::NotConst(c) => Some(format!("{attr} <> {}", sql_literal(c))),
        PatternValue::OneOf(cs) => Some(format!(
            "{attr} IN ({})",
            cs.iter().map(sql_literal).collect::<Vec<_>>().join(", ")
        )),
    }
}

/// The SQL condition asserting a value *falsifies* a pattern.
fn pattern_violation_condition(attr: &str, p: &PatternValue) -> Option<String> {
    match p {
        PatternValue::Wildcard => None,
        PatternValue::Const(c) => Some(format!("{attr} <> {}", sql_literal(c))),
        PatternValue::NotConst(c) => Some(format!("{attr} = {}", sql_literal(c))),
        PatternValue::OneOf(cs) => Some(format!(
            "{attr} NOT IN ({})",
            cs.iter().map(sql_literal).collect::<Vec<_>>().join(", ")
        )),
    }
}

/// The WHERE conjuncts binding a tableau row's non-wildcard LHS patterns.
fn lhs_conditions(cfd: &Cfd, row: &PatternRow, schema: &Schema) -> Vec<String> {
    row.lhs
        .iter()
        .zip(&cfd.lhs)
        .filter_map(|(p, &a)| pattern_condition(schema.attr_name(a), p))
        .collect()
}

/// Generated detection queries for one CFD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectionQueries {
    /// One `Q_c` per constant tableau row: `(tableau_row_idx, sql)`.
    pub constant: Vec<(usize, String)>,
    /// One `Q_v` per variable tableau row: `(tableau_row_idx, sql)`.
    pub variable: Vec<(usize, String)>,
}

/// Generate the two-query encoding for `cfd`.
pub fn generate(cfd: &Cfd, schema: &Schema) -> DetectionQueries {
    let lhs_names: Vec<&str> = cfd.lhs.iter().map(|&a| schema.attr_name(a)).collect();
    let rhs_name = schema.attr_name(cfd.rhs);
    let mut constant = Vec::new();
    let mut variable = Vec::new();
    for (i, row) in cfd.tableau.iter().enumerate() {
        let mut conds = lhs_conditions(cfd, row, schema);
        match &row.rhs {
            rhs_pat @ (PatternValue::Const(_)
            | PatternValue::NotConst(_)
            | PatternValue::OneOf(_)) => {
                conds.extend(pattern_violation_condition(rhs_name, rhs_pat));
                let where_clause = conds.join(" AND ");
                constant.push((
                    i,
                    format!(
                        "SELECT {} FROM {} WHERE {}",
                        lhs_names.join(", "),
                        cfd.relation,
                        where_clause
                    ),
                ));
            }
            PatternValue::Wildcard => {
                let where_clause = if conds.is_empty() {
                    String::new()
                } else {
                    format!(" WHERE {}", conds.join(" AND "))
                };
                variable.push((
                    i,
                    format!(
                        "SELECT {cols} FROM {rel}{where} GROUP BY {cols} \
                         HAVING COUNT(DISTINCT {rhs}) > 1",
                        cols = lhs_names.join(", "),
                        rel = cfd.relation,
                        where = where_clause,
                        rhs = rhs_name,
                    ),
                ));
            }
        }
    }
    DetectionQueries { constant, variable }
}

/// Run SQL-based detection of a suite against a catalog containing the
/// constrained table.
///
/// `Q_c` results are materialised back to tuple ids by probing an index
/// on the LHS attributes and re-checking the row (the generated query
/// projects the LHS key, mirroring how Semandaq joins violation keys
/// back to the source table).
pub struct SqlDetector<'a> {
    catalog: &'a Catalog,
}

impl<'a> SqlDetector<'a> {
    /// Create a detector over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        SqlDetector { catalog }
    }

    /// Detect all violations of `cfds` (indices echo into the report).
    pub fn detect_all(&self, cfds: &[Cfd]) -> Result<ViolationReport> {
        let mut report = ViolationReport::default();
        for (idx, cfd) in cfds.iter().enumerate() {
            self.detect_into(cfd, idx, &mut report)?;
        }
        Ok(report)
    }

    fn detect_into(&self, cfd: &Cfd, cfd_idx: usize, report: &mut ViolationReport) -> Result<()> {
        let table = self.catalog.get(&cfd.relation)?;
        let schema = table.schema().clone();
        let queries = generate(cfd, &schema);
        let need_index = !queries.constant.is_empty() || !queries.variable.is_empty();
        let index = if need_index { Some(Index::build(table, &cfd.lhs)) } else { None };

        for (row_idx, q) in &queries.constant {
            let rs = sql::run(q, self.catalog)?;
            let index = index.as_ref().expect("index built");
            // Each result row is an LHS key of ≥1 violating tuple; recheck
            // members to pick exactly the violating ones.
            for key in &rs.rows {
                for &tid in index.lookup(key) {
                    let data = table.get(tid)?;
                    if cfd.constant_violation(&data) == Some(*row_idx) {
                        let v = Violation::CfdConstant { cfd: cfd_idx, row: *row_idx, tuple: tid };
                        if !report.violations.contains(&v) {
                            report.violations.push(v);
                        }
                    }
                }
            }
        }
        for (row_idx, q) in &queries.variable {
            let rs = sql::run(q, self.catalog)?;
            let index = index.as_ref().expect("index built");
            for key in &rs.rows {
                let tuples: Vec<_> = index.lookup(key).to_vec();
                if tuples.len() >= 2 {
                    report.violations.push(Violation::CfdVariable {
                        cfd: cfd_idx,
                        row: *row_idx,
                        key: key.clone(),
                        tuples,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Convenience: SQL-detect on a single table (builds a throwaway catalog).
pub fn detect_sql(table: &Table, cfds: &[Cfd]) -> Result<ViolationReport> {
    let mut catalog = Catalog::new();
    catalog.register(table.clone());
    SqlDetector::new(&catalog).detect_all(cfds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::NativeDetector;
    use revival_constraints::parser::parse_cfds;
    use revival_relation::{Schema, Type};

    fn schema() -> Schema {
        Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("zip", Type::Str)
            .attr("street", Type::Str)
            .attr("city", Type::Str)
            .build()
    }

    fn table(rows: &[[&str; 4]]) -> Table {
        let mut t = Table::new(schema());
        for r in rows {
            t.push(r.iter().map(|s| Value::from(*s)).collect()).unwrap();
        }
        t
    }

    #[test]
    fn generated_sql_shape() {
        let s = schema();
        let cfds = parse_cfds(
            "customer([cc='44', zip] -> [street])\n\
             customer([cc='01', zip='07974'] -> [city='mh'])",
            &s,
        )
        .unwrap();
        let q1 = generate(&cfds[0], &s);
        assert!(q1.constant.is_empty());
        assert_eq!(
            q1.variable[0].1,
            "SELECT cc, zip FROM customer WHERE cc = '44' \
             GROUP BY cc, zip HAVING COUNT(DISTINCT street) > 1"
        );
        let q2 = generate(&cfds[1], &s);
        assert!(q2.variable.is_empty());
        assert_eq!(
            q2.constant[0].1,
            "SELECT cc, zip FROM customer WHERE cc = '01' AND zip = '07974' AND city <> 'mh'"
        );
    }

    #[test]
    fn sql_matches_native() {
        let s = schema();
        let cfds = parse_cfds(
            "customer([cc='44', zip] -> [street])\n\
             customer([cc='01', zip='07974'] -> [city='mh'])\n\
             customer([zip] -> [city])",
            &s,
        )
        .unwrap();
        let t = table(&[
            ["44", "EH8", "Crichton", "edi"],
            ["44", "EH8", "Mayfield", "edi"],
            ["01", "07974", "MtnAve", "nyc"],
            ["01", "10001", "5th", "nyc"],
            ["44", "10001", "5th", "man"],
        ]);
        let mut native = NativeDetector::new(&t).detect_all(&cfds);
        let mut via_sql = detect_sql(&t, &cfds).unwrap();
        native.normalize();
        via_sql.normalize();
        assert_eq!(native, via_sql);
        assert!(!native.is_empty());
    }

    #[test]
    fn sql_literal_escaping() {
        assert_eq!(sql_literal(&Value::from("it's")), "'it''s'");
        assert_eq!(sql_literal(&Value::Int(3)), "3");
    }

    #[test]
    fn integer_constants_in_queries() {
        let s = Schema::builder("r").attr("a", Type::Int).attr("b", Type::Str).build();
        let cfds = parse_cfds("r([a=7] -> [b='x'])", &s).unwrap();
        let q = generate(&cfds[0], &s);
        assert_eq!(q.constant[0].1, "SELECT a FROM r WHERE a = 7 AND b <> 'x'");
        // Execute it end-to-end.
        let mut t = Table::new(s);
        t.push(vec![Value::Int(7), "y".into()]).unwrap(); // violation
        t.push(vec![Value::Int(7), "x".into()]).unwrap();
        t.push(vec![Value::Int(8), "z".into()]).unwrap();
        let report = detect_sql(&t, &cfds).unwrap();
        assert_eq!(report.len(), 1);
        assert_eq!(report.violating_tuples().len(), 1);
    }

    #[test]
    fn wildcard_only_row_has_no_where() {
        let s = schema();
        let cfds = parse_cfds("customer([zip] -> [street])", &s).unwrap();
        let q = generate(&cfds[0], &s);
        assert_eq!(
            q.variable[0].1,
            "SELECT zip FROM customer GROUP BY zip HAVING COUNT(DISTINCT street) > 1"
        );
    }
}
