//! Incremental CFD violation detection.
//!
//! The tutorial lists *"incremental repairing methods"* among the open
//! problems (§6d); for detection the TODS paper already gives the
//! technique reproduced here: keep, per CFD, a hash of LHS groups with
//! their RHS multiset, and update it per inserted/deleted tuple. Each
//! delta tuple costs `O(|Tp|)` expected time, versus a full `O(n)`
//! re-detection — the trade-off measured in experiment E11.

use crate::report::{Violation, ViolationReport};
use revival_constraints::cfd::Cfd;
use revival_relation::groupby::hash_syms;
use revival_relation::{GroupBy, Sym, Table, TupleId, Value, ValuePool};
use std::collections::HashMap;

/// Per-LHS-group state for one CFD.
struct GroupState {
    /// Live members and their RHS symbols.
    members: Vec<(TupleId, Sym)>,
    /// Distinct RHS symbol → live count.
    rhs_counts: HashMap<Sym, usize>,
    /// Tableau-row indices of variable rows whose LHS pattern this
    /// group's key matches (computed once per group).
    matched_var_rows: Vec<usize>,
}

impl GroupState {
    fn distinct_rhs(&self) -> usize {
        self.rhs_counts.len()
    }

    fn is_violating(&self) -> bool {
        !self.matched_var_rows.is_empty() && self.distinct_rhs() >= 2
    }
}

/// State for one CFD. Group slots live in the append-only interned
/// kernel: a group whose members all left stays allocated but empty
/// (`distinct_rhs() == 0`) and is skipped on every read — state is
/// `O(distinct keys ever seen)` rather than `O(live keys)`, the price
/// of probing without cloning a key per delta.
struct CfdState {
    groups: GroupBy<Box<[Sym]>, GroupState>,
    /// Tuple → tableau-row index of its constant violation.
    const_violations: HashMap<TupleId, usize>,
    /// Count of (group, matched variable row) pairs currently violating.
    violating_row_pairs: usize,
}

/// Maintains CFD violations under tuple insertions and deletions.
///
/// The detector owns no table — callers stream `(TupleId, row)` events
/// at it (typically mirroring edits applied to a [`Table`]). It interns
/// the projected cells of every event into its own [`ValuePool`], so
/// group probes hash words, not strings, and deletions resolve foreign
/// rows by pool lookup (a value never inserted cannot key a group).
pub struct IncrementalDetector {
    cfds: Vec<Cfd>,
    states: Vec<CfdState>,
    pool: ValuePool,
}

impl IncrementalDetector {
    /// Empty detector for a suite.
    pub fn new(cfds: Vec<Cfd>) -> Self {
        let states = cfds
            .iter()
            .map(|_| CfdState {
                groups: GroupBy::new(),
                const_violations: HashMap::new(),
                violating_row_pairs: 0,
            })
            .collect();
        IncrementalDetector { cfds, states, pool: ValuePool::new() }
    }

    /// Bulk-load an existing table (equivalent to inserting every row).
    pub fn load(&mut self, table: &Table) {
        for (id, row) in table.rows() {
            self.insert(id, &row);
        }
    }

    /// The suite being watched.
    pub fn cfds(&self) -> &[Cfd] {
        &self.cfds
    }

    /// Register an inserted tuple.
    pub fn insert(&mut self, id: TupleId, row: &[Value]) {
        let IncrementalDetector { cfds, states, pool } = self;
        let mut key: Vec<Sym> = Vec::new();
        for (cfd, state) in cfds.iter().zip(states.iter_mut()) {
            // Constant rows.
            if let Some(tp) = cfd.constant_violation(row) {
                state.const_violations.insert(id, tp);
            }
            // Variable rows.
            if cfd.variable_rows().next().is_none() {
                continue;
            }
            key.clear();
            key.extend(cfd.lhs.iter().map(|&a| pool.intern(&row[a])));
            let rhs = pool.intern(&row[cfd.rhs]);
            let hash = hash_syms(key.iter().copied());
            let group = state.groups.entry_mut(
                hash,
                |k| k.as_ref() == key,
                || {
                    // New group: match its key against the variable rows'
                    // LHS patterns once (pattern matching needs values, so
                    // this is the one spot the projection materialises).
                    let key_vals: Vec<Value> = cfd.lhs.iter().map(|&a| row[a].clone()).collect();
                    let matched_var_rows = cfd
                        .tableau
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| !r.is_constant_row() && r.lhs_matches(&key_vals))
                        .map(|(i, _)| i)
                        .collect();
                    (
                        key.clone().into_boxed_slice(),
                        GroupState {
                            members: Vec::new(),
                            rhs_counts: HashMap::new(),
                            matched_var_rows,
                        },
                    )
                },
            );
            let was = group.is_violating();
            group.members.push((id, rhs));
            *group.rhs_counts.entry(rhs).or_insert(0) += 1;
            let now = group.is_violating();
            if !was && now {
                state.violating_row_pairs += group.matched_var_rows.len();
            }
        }
    }

    /// Register a deleted tuple (caller supplies its former row).
    pub fn delete(&mut self, id: TupleId, row: &[Value]) {
        let IncrementalDetector { cfds, states, pool } = self;
        let mut key: Vec<Sym> = Vec::new();
        for (cfd, state) in cfds.iter().zip(states.iter_mut()) {
            state.const_violations.remove(&id);
            if cfd.variable_rows().next().is_none() {
                continue;
            }
            // Resolve the key without interning: a projection value the
            // pool never saw cannot key a live group.
            key.clear();
            let resolved = cfd.lhs.iter().all(|&a| match pool.lookup(&row[a]) {
                Some(s) => {
                    key.push(s);
                    true
                }
                None => false,
            });
            if !resolved {
                continue;
            }
            let hash = hash_syms(key.iter().copied());
            if let Some(i) = state.groups.probe(hash, |k| k.as_ref() == key) {
                let group = state.groups.value_at_mut(i);
                let was = group.is_violating();
                if let Some(pos) = group.members.iter().position(|(t, _)| *t == id) {
                    let (_, rhs) = group.members.swap_remove(pos);
                    if let Some(c) = group.rhs_counts.get_mut(&rhs) {
                        *c -= 1;
                        if *c == 0 {
                            group.rhs_counts.remove(&rhs);
                        }
                    }
                }
                let now = group.is_violating();
                if was && !now {
                    state.violating_row_pairs -= group.matched_var_rows.len();
                }
                // The emptied group keeps its slot (append-only kernel);
                // reads skip it via `distinct_rhs() < 2`.
            }
        }
    }

    /// Register an in-place cell update.
    pub fn update(&mut self, id: TupleId, old_row: &[Value], new_row: &[Value]) {
        self.delete(id, old_row);
        self.insert(id, new_row);
    }

    /// Total number of violations (constant tuple violations plus
    /// violating (group, variable-row) pairs) — O(#CFDs).
    pub fn violation_count(&self) -> usize {
        self.states.iter().map(|s| s.const_violations.len() + s.violating_row_pairs).sum()
    }

    /// Live violation count per CFD, positionally aligned with the
    /// suite handed to [`IncrementalDetector::new`] — the per-CFD
    /// counters a streaming session reports without materialising a
    /// report. O(#CFDs), like [`IncrementalDetector::violation_count`].
    pub fn per_cfd_counts(&self) -> Vec<usize> {
        self.states.iter().map(|s| s.const_violations.len() + s.violating_row_pairs).collect()
    }

    /// Materialise a full report from the maintained state.
    pub fn report(&self) -> ViolationReport {
        let mut report = ViolationReport::default();
        for (idx, state) in self.states.iter().enumerate() {
            let mut const_vs: Vec<(&TupleId, &usize)> = state.const_violations.iter().collect();
            const_vs.sort();
            for (tuple, row) in const_vs {
                report.violations.push(Violation::CfdConstant {
                    cfd: idx,
                    row: *row,
                    tuple: *tuple,
                });
            }
            // Keys re-enter value space per *violating* group only.
            let mut keyed: Vec<(Vec<Value>, &GroupState)> = state
                .groups
                .iter()
                .filter(|(_, g)| g.distinct_rhs() >= 2)
                .map(|(k, g)| (k.iter().map(|&s| self.pool.value(s).clone()).collect(), g))
                .collect();
            keyed.sort_by(|a, b| a.0.cmp(&b.0));
            for (key, group) in keyed {
                for &row in &group.matched_var_rows {
                    let mut tuples: Vec<TupleId> = group.members.iter().map(|(t, _)| *t).collect();
                    tuples.sort();
                    report.violations.push(Violation::CfdVariable {
                        cfd: idx,
                        row,
                        key: key.clone(),
                        tuples,
                    });
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::NativeDetector;
    use revival_constraints::parser::parse_cfds;
    use revival_relation::{Schema, Type};

    fn schema() -> Schema {
        Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("zip", Type::Str)
            .attr("street", Type::Str)
            .attr("city", Type::Str)
            .build()
    }

    fn suite(s: &Schema) -> Vec<Cfd> {
        parse_cfds(
            "customer([cc='44', zip] -> [street])\n\
             customer([cc='01', zip='07974'] -> [city='mh'])",
            s,
        )
        .unwrap()
    }

    #[test]
    fn insert_creates_and_delete_removes_violation() {
        let s = schema();
        let mut t = Table::new(s.clone());
        let mut d = IncrementalDetector::new(suite(&s));
        let a = t.push(vec!["44".into(), "EH8".into(), "Crichton".into(), "edi".into()]).unwrap();
        d.insert(a, &t.get(a).unwrap());
        assert_eq!(d.violation_count(), 0);
        let b = t.push(vec!["44".into(), "EH8".into(), "Mayfield".into(), "edi".into()]).unwrap();
        d.insert(b, &t.get(b).unwrap());
        assert_eq!(d.violation_count(), 1);
        let row = t.delete(b).unwrap();
        d.delete(b, &row);
        assert_eq!(d.violation_count(), 0);
    }

    #[test]
    fn constant_violations_tracked() {
        let s = schema();
        let mut d = IncrementalDetector::new(suite(&s));
        let row = vec![
            Value::from("01"),
            Value::from("07974"),
            Value::from("MtnAve"),
            Value::from("nyc"),
        ];
        d.insert(TupleId(0), &row);
        assert_eq!(d.violation_count(), 1);
        // Fixing the city via update removes the violation.
        let mut fixed = row.clone();
        fixed[3] = "mh".into();
        d.update(TupleId(0), &row, &fixed);
        assert_eq!(d.violation_count(), 0);
    }

    #[test]
    fn report_matches_native_after_random_edits() {
        use rand::prelude::*;
        let s = schema();
        let cfds = suite(&s);
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = Table::new(s.clone());
        let mut d = IncrementalDetector::new(cfds.clone());
        let ccs = ["44", "01"];
        let zips = ["EH8", "07974", "G1"];
        let streets = ["Crichton", "Mayfield", "MtnAve"];
        let cities = ["edi", "mh", "nyc"];
        let mut live: Vec<TupleId> = Vec::new();
        for _ in 0..300 {
            if live.is_empty() || rng.gen_bool(0.7) {
                let row = vec![
                    Value::from(*ccs.choose(&mut rng).unwrap()),
                    Value::from(*zips.choose(&mut rng).unwrap()),
                    Value::from(*streets.choose(&mut rng).unwrap()),
                    Value::from(*cities.choose(&mut rng).unwrap()),
                ];
                let id = t.push(row.clone()).unwrap();
                d.insert(id, &row);
                live.push(id);
            } else {
                let i = rng.gen_range(0..live.len());
                let id = live.swap_remove(i);
                let row = t.delete(id).unwrap();
                d.delete(id, &row);
            }
        }
        let mut inc = d.report();
        let mut full = NativeDetector::new(&t).detect_all(&cfds);
        inc.normalize();
        full.normalize();
        assert_eq!(inc, full);
        assert_eq!(d.violation_count(), full.len());
    }

    #[test]
    fn per_cfd_counts_align_with_suite() {
        let s = schema();
        let mut d = IncrementalDetector::new(suite(&s));
        // One constant violation of cfd#1, no variable violations.
        d.insert(TupleId(0), &["01".into(), "07974".into(), "Mtn".into(), Value::from("nyc")]);
        assert_eq!(d.per_cfd_counts(), vec![0, 1]);
        // A conflicting cc=44 group adds one violation of cfd#0.
        d.insert(TupleId(1), &["44".into(), "EH8".into(), "A".into(), Value::from("edi")]);
        d.insert(TupleId(2), &["44".into(), "EH8".into(), "B".into(), Value::from("edi")]);
        assert_eq!(d.per_cfd_counts(), vec![1, 1]);
        assert_eq!(d.per_cfd_counts().iter().sum::<usize>(), d.violation_count());
    }

    #[test]
    fn load_equivalent_to_inserts() {
        let s = schema();
        let mut t = Table::new(s.clone());
        t.push(vec!["44".into(), "EH8".into(), "A".into(), "edi".into()]).unwrap();
        t.push(vec!["44".into(), "EH8".into(), "B".into(), "edi".into()]).unwrap();
        let mut d = IncrementalDetector::new(suite(&s));
        d.load(&t);
        assert_eq!(d.violation_count(), 1);
    }
}
