//! CIND violation detection across two relations.
//!
//! A CIND `(R1[X; Xp] ⊆ R2[Y; Yp])` is violated by every `R1`-tuple that
//! matches the source pattern but has no target-side witness. Detection
//! builds one hash index over the (pattern-filtered) target relation and
//! probes it per applicable source tuple — `O(|R1| + |R2|)`, the scaling
//! measured in experiment E7. A SQL formulation is also generated for
//! parity with the paper's SQL-based techniques (\[4\] §SQL).

use crate::report::{Violation, ViolationReport};
use revival_constraints::cind::Cind;
use revival_relation::{Catalog, Result, Table};

/// Detects CIND violations given the two tables of each CIND.
pub struct CindDetector;

impl CindDetector {
    /// Detect violations of one CIND.
    pub fn detect(cind: &Cind, from: &Table, to: &Table, cind_idx: usize) -> ViolationReport {
        let mut report = ViolationReport::default();
        let target = cind.build_target_index(to);
        for (id, row) in from.rows() {
            // Borrowed probe: no key vector per source tuple.
            if cind.applies_to(&row) && !target.contains_row(cind, &row) {
                report.violations.push(Violation::CindMissingWitness { cind: cind_idx, tuple: id });
            }
        }
        report
    }

    /// Detect a suite of CINDs, resolving relations from a catalog.
    pub fn detect_all(cinds: &[Cind], catalog: &Catalog) -> Result<ViolationReport> {
        let mut report = ViolationReport::default();
        for (i, cind) in cinds.iter().enumerate() {
            let from = catalog.get(&cind.from_relation)?;
            let to = catalog.get(&cind.to_relation)?;
            let r = Self::detect(cind, from, to, i);
            report.violations.extend(r.violations);
        }
        Ok(report)
    }
}

/// Generate the SQL query of Bravo et al. that selects source tuples
/// without a witness — a `NOT IN`-free formulation via grouped counts is
/// not expressible in our subset, so the shipped engine path uses the
/// native detector; the generated text documents the DBMS encoding.
pub fn generate_sql(
    cind: &Cind,
    from_schema: &revival_relation::Schema,
    to_schema: &revival_relation::Schema,
) -> String {
    let from_cols: Vec<&str> = cind.from_attrs.iter().map(|&a| from_schema.attr_name(a)).collect();
    let mut conds: Vec<String> = cind
        .from_conds
        .iter()
        .map(|c| format!("s.{} = '{}'", from_schema.attr_name(c.attr), c.value.render()))
        .collect();
    let join_conds: Vec<String> = cind
        .from_attrs
        .iter()
        .zip(&cind.to_attrs)
        .map(|(&f, &t)| format!("s.{} = w.{}", from_schema.attr_name(f), to_schema.attr_name(t)))
        .collect();
    let target_conds: Vec<String> = cind
        .to_conds
        .iter()
        .map(|c| format!("w.{} = '{}'", to_schema.attr_name(c.attr), c.value.render()))
        .collect();
    conds.extend(std::iter::once(format!(
        "NOT EXISTS (SELECT * FROM {} w WHERE {})",
        cind.to_relation,
        join_conds.into_iter().chain(target_conds).collect::<Vec<_>>().join(" AND ")
    )));
    format!(
        "SELECT s.{} FROM {} s WHERE {}",
        from_cols.join(", s."),
        cind.from_relation,
        conds.join(" AND ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_constraints::parser::parse_cinds;
    use revival_relation::{Schema, Type, Value};

    fn schemas() -> (Schema, Schema) {
        let cd = Schema::builder("cd")
            .attr("album", Type::Str)
            .attr("price", Type::Int)
            .attr("genre", Type::Str)
            .build();
        let book = Schema::builder("book")
            .attr("title", Type::Str)
            .attr("price", Type::Int)
            .attr("format", Type::Str)
            .build();
        (cd, book)
    }

    fn paper_cind(cd: &Schema, book: &Schema) -> Cind {
        parse_cinds(
            "cd(album, price; genre='a-book') <= book(title, price; format='audio')",
            &[cd.clone(), book.clone()],
        )
        .unwrap()
        .remove(0)
    }

    #[test]
    fn detects_missing_witness() {
        let (cd_s, book_s) = schemas();
        let cind = paper_cind(&cd_s, &book_s);
        let mut cd = Table::new(cd_s);
        cd.push(vec!["Dune".into(), Value::Int(20), "a-book".into()]).unwrap(); // ok
        cd.push(vec!["Foundation".into(), Value::Int(15), "a-book".into()]).unwrap(); // violation
        cd.push(vec!["Thriller".into(), Value::Int(9), "pop".into()]).unwrap(); // n/a
        let mut book = Table::new(book_s);
        book.push(vec!["Dune".into(), Value::Int(20), "audio".into()]).unwrap();
        book.push(vec!["Foundation".into(), Value::Int(15), "print".into()]).unwrap();
        let report = CindDetector::detect(&cind, &cd, &book, 0);
        assert_eq!(report.len(), 1);
        assert_eq!(report.violating_tuples().len(), 1);
    }

    #[test]
    fn detect_all_via_catalog() {
        let (cd_s, book_s) = schemas();
        let cind = paper_cind(&cd_s, &book_s);
        let mut cd = Table::new(cd_s);
        cd.push(vec!["X".into(), Value::Int(1), "a-book".into()]).unwrap();
        let book = Table::new(book_s);
        let mut catalog = Catalog::new();
        catalog.register(cd);
        catalog.register(book);
        let report = CindDetector::detect_all(&[cind], &catalog).unwrap();
        assert_eq!(report.len(), 1);
    }

    #[test]
    fn generated_sql_documents_encoding() {
        let (cd_s, book_s) = schemas();
        let cind = paper_cind(&cd_s, &book_s);
        let sql = generate_sql(&cind, &cd_s, &book_s);
        assert!(sql.contains("NOT EXISTS"));
        assert!(sql.contains("s.genre = 'a-book'"));
        assert!(sql.contains("w.format = 'audio'"));
    }
}
