//! Cross-validation of the static analyses against brute-force oracles.
//!
//! The satisfiability and implication procedures in
//! `revival_constraints::analysis` search the bounded witness space of
//! the small-model property. These tests validate them against
//! *exhaustive enumeration* over tiny concrete domains — if the chase
//! and the oracle ever disagree on instances the oracle can decide, the
//! bounded search is wrong.

use proptest::prelude::*;
use revival_constraints::analysis::{implies, is_satisfiable, Outcome};
use revival_constraints::parser::parse_cfds;
use revival_constraints::Cfd;
use revival_relation::{Schema, Table, Type, Value};

const BUDGET: usize = 4_000_000;

/// Three attributes, each over the tiny concrete domain {v0, v1, v2}.
/// Over this *closed* world the finite-domain schema makes the bounded
/// search exact, and brute force is feasible: 27 possible tuples.
fn closed_schema() -> Schema {
    let dom = |_: ()| -> Vec<Value> { (0..3).map(|i| format!("v{i}").into()).collect() };
    Schema::builder("r")
        .attr_in("a", Type::Str, dom(()))
        .attr_in("b", Type::Str, dom(()))
        .attr_in("c", Type::Str, dom(()))
        .build()
}

/// All 27 tuples of the closed world.
fn all_tuples() -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    for a in 0..3 {
        for b in 0..3 {
            for c in 0..3 {
                out.push(vec![
                    Value::str(format!("v{a}")),
                    Value::str(format!("v{b}")),
                    Value::str(format!("v{c}")),
                ]);
            }
        }
    }
    out
}

fn satisfied_by_tuples(suite: &[Cfd], tuples: &[&Vec<Value>]) -> bool {
    let mut t = Table::new(closed_schema());
    for row in tuples {
        t.push_unchecked((*row).clone());
    }
    suite.iter().all(|c| c.satisfied_by(&t))
}

/// Brute-force satisfiability: does any single tuple satisfy the suite?
/// (Single-tuple suffices for CFD satisfiability.)
fn brute_satisfiable(suite: &[Cfd]) -> bool {
    all_tuples().iter().any(|t| satisfied_by_tuples(suite, &[t]))
}

/// Brute-force implication: Σ ⊨ φ iff no 1- or 2-tuple instance
/// satisfies Σ while violating φ. (Two tuples suffice for normal-form
/// CFDs.)
fn brute_implies(sigma: &[Cfd], phi: &Cfd) -> bool {
    let tuples = all_tuples();
    for t1 in &tuples {
        if satisfied_by_tuples(sigma, &[t1])
            && !satisfied_by_tuples(std::slice::from_ref(phi), &[t1])
        {
            return false;
        }
        for t2 in &tuples {
            if satisfied_by_tuples(sigma, &[t1, t2])
                && !satisfied_by_tuples(std::slice::from_ref(phi), &[t1, t2])
            {
                return false;
            }
        }
    }
    true
}

/// A random CFD line over the closed schema.
fn arb_cfd_line() -> impl Strategy<Value = String> {
    let val = 0..3u8;
    prop_oneof![
        Just("r([a, b] -> [c])".to_string()),
        Just("r([a] -> [b])".to_string()),
        Just("r([b] -> [c])".to_string()),
        (val.clone()).prop_map(|v| format!("r([a='v{v}', b] -> [c])")),
        (val.clone(), 0..3u8).prop_map(|(v, w)| format!("r([a='v{v}'] -> [c='v{w}'])")),
        (val.clone(), 0..3u8).prop_map(|(v, w)| format!("r([b='v{v}'] -> [a='v{w}'])")),
        (val.clone()).prop_map(|v| format!("r([a!='v{v}'] -> [b])")),
        (val.clone(), 0..3u8).prop_map(|(v, w)| format!("r([a in ('v{v}','v{w}')] -> [c])")),
        (val, 0..3u8).prop_map(|(v, w)| format!("r([c] -> [b in ('v{v}','v{w}')])")),
    ]
}

fn arb_suite(max: usize) -> impl Strategy<Value = Vec<Cfd>> {
    prop::collection::vec(arb_cfd_line(), 1..=max)
        .prop_map(|lines| parse_cfds(&lines.join("\n"), &closed_schema()).expect("suite parses"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn satisfiability_matches_brute_force(suite in arb_suite(4)) {
        let fast = is_satisfiable(&closed_schema(), &suite, BUDGET);
        let slow = brute_satisfiable(&suite);
        prop_assert_ne!(fast.clone(), Outcome::ResourceLimit, "budget must suffice");
        prop_assert_eq!(fast, if slow { Outcome::Yes } else { Outcome::No });
    }
}

proptest! {
    // Implication brute force is 27² × checks — keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn implication_matches_brute_force(sigma in arb_suite(3), phi in arb_suite(1)) {
        let phi = &phi[0];
        let fast = implies(&closed_schema(), &sigma, phi, BUDGET);
        prop_assert_ne!(fast.clone(), Outcome::ResourceLimit, "budget must suffice");
        let slow = brute_implies(&sigma, phi);
        prop_assert_eq!(fast, if slow { Outcome::Yes } else { Outcome::No });
    }
}

#[test]
fn known_finite_domain_case_analysis() {
    // Classic: over a ∈ {v0,v1,v2}, guards covering the whole domain
    // imply the unguarded FD.
    let s = closed_schema();
    let sigma = parse_cfds(
        "r([a='v0', b] -> [c])\n\
         r([a='v1', b] -> [c])\n\
         r([a='v2', b] -> [c])",
        &s,
    )
    .unwrap();
    let phi = parse_cfds("r([a, b] -> [c])", &s).unwrap();
    assert_eq!(implies(&s, &sigma, &phi[0], BUDGET), Outcome::Yes);
    assert!(brute_implies(&sigma, &phi[0]));

    // Covering only two of three values does not suffice.
    let partial = parse_cfds(
        "r([a='v0', b] -> [c])\n\
         r([a='v1', b] -> [c])",
        &s,
    )
    .unwrap();
    assert_eq!(implies(&s, &partial, &phi[0], BUDGET), Outcome::No);
    assert!(!brute_implies(&partial, &phi[0]));

    // eCFD twist: the ≠v2 guard plus the v2 guard also cover the domain.
    let ecfd = parse_cfds(
        "r([a!='v2', b] -> [c])\n\
         r([a='v2', b] -> [c])",
        &s,
    )
    .unwrap();
    assert_eq!(implies(&s, &ecfd, &phi[0], BUDGET), Outcome::Yes);
    assert!(brute_implies(&ecfd, &phi[0]));
}
