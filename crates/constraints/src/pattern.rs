//! Pattern values and pattern rows — the tableau machinery of CFDs.
//!
//! A pattern value is either a constant `c` or the unnamed variable `_`
//! (written `‖` bar-separated in the paper's tableau notation). A data
//! value *matches* a pattern value — written `v ≍ p` in the literature —
//! iff the pattern is `_` or the values are equal.

use revival_relation::{Sym, Value, ValuePool};
use std::fmt;

/// A constant or the wildcard `_` — extended with the eCFD pattern
/// forms of Bravo et al. (ICDE 2008, reference \[3\] of the tutorial):
/// disequality `≠ c` and disjunction `∈ {c1, …, ck}`, which increase
/// expressivity "without extra complexity".
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatternValue {
    /// Matches any data value.
    Wildcard,
    /// Matches exactly this constant.
    Const(Value),
    /// eCFD: matches any value *except* this constant.
    NotConst(Value),
    /// eCFD: matches any of these constants (non-empty, sorted).
    OneOf(Vec<Value>),
}

impl PatternValue {
    /// Constant pattern from anything `Into<Value>`.
    pub fn constant(v: impl Into<Value>) -> Self {
        PatternValue::Const(v.into())
    }

    /// eCFD disjunction pattern (values get sorted + deduplicated).
    ///
    /// # Panics
    /// Panics on an empty value list — an empty disjunction matches
    /// nothing and makes the tableau row vacuous.
    pub fn one_of(values: impl IntoIterator<Item = Value>) -> Self {
        let mut vs: Vec<Value> = values.into_iter().collect();
        assert!(!vs.is_empty(), "OneOf pattern needs at least one value");
        vs.sort();
        vs.dedup();
        PatternValue::OneOf(vs)
    }

    /// The match relation `v ≍ p`.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            PatternValue::Wildcard => true,
            PatternValue::Const(c) => c == v,
            PatternValue::NotConst(c) => c != v,
            PatternValue::OneOf(cs) => cs.contains(v),
        }
    }

    /// True for `_`.
    pub fn is_wildcard(&self) -> bool {
        matches!(self, PatternValue::Wildcard)
    }

    /// The constant, if this is a plain `Const` pattern.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            PatternValue::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Pattern subsumption: does every value matching `other` also match
    /// `self`? (`_` subsumes everything; `c` subsumes only `c`.)
    /// Sound but deliberately incomplete across the eCFD forms (returns
    /// `false` when unsure) — used only to prune redundant rows.
    pub fn subsumes(&self, other: &PatternValue) -> bool {
        match (self, other) {
            (PatternValue::Wildcard, _) => true,
            (PatternValue::Const(a), PatternValue::Const(b)) => a == b,
            (PatternValue::NotConst(a), PatternValue::Const(b)) => a != b,
            (PatternValue::NotConst(a), PatternValue::NotConst(b)) => a == b,
            (PatternValue::NotConst(a), PatternValue::OneOf(bs)) => !bs.contains(a),
            (PatternValue::OneOf(a), PatternValue::Const(b)) => a.contains(b),
            (PatternValue::OneOf(a), PatternValue::OneOf(b)) => b.iter().all(|v| a.contains(v)),
            _ => false,
        }
    }

    /// Compile the match relation against one table's [`ValuePool`]:
    /// the resulting [`SymPred`] tests `v ≍ p` by symbol comparison, so
    /// a column scan never materialises a [`Value`]. A constant the
    /// pool never interned can match no cell (`Never`); a disequality
    /// against such a constant matches every cell (`Always`) — this
    /// resolution step is where cross-pool safety lives.
    pub fn resolve(&self, pool: &ValuePool) -> SymPred {
        match self {
            PatternValue::Wildcard => SymPred::Always,
            PatternValue::Const(c) => pool.lookup(c).map(SymPred::Eq).unwrap_or(SymPred::Never),
            PatternValue::NotConst(c) => pool.lookup(c).map(SymPred::Ne).unwrap_or(SymPred::Always),
            PatternValue::OneOf(cs) => {
                let syms: Vec<Sym> = cs.iter().filter_map(|c| pool.lookup(c)).collect();
                if syms.is_empty() {
                    SymPred::Never
                } else {
                    SymPred::In(syms)
                }
            }
        }
    }

    /// Are the two patterns compatible, i.e. is there a value matching
    /// both? Conservative (`true` when unsure).
    pub fn compatible(&self, other: &PatternValue) -> bool {
        match (self, other) {
            (PatternValue::Const(a), PatternValue::Const(b)) => a == b,
            (PatternValue::Const(a), PatternValue::NotConst(b))
            | (PatternValue::NotConst(b), PatternValue::Const(a)) => a != b,
            (PatternValue::Const(a), PatternValue::OneOf(bs))
            | (PatternValue::OneOf(bs), PatternValue::Const(a)) => bs.contains(a),
            _ => true,
        }
    }
}

impl fmt::Display for PatternValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternValue::Wildcard => write!(f, "_"),
            PatternValue::Const(v) => write!(f, "'{v}'"),
            PatternValue::NotConst(v) => write!(f, "!'{v}'"),
            PatternValue::OneOf(vs) => {
                write!(f, "{{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "'{v}'")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<Value> for PatternValue {
    fn from(v: Value) -> Self {
        PatternValue::Const(v)
    }
}

/// A [`PatternValue`] lowered to symbol space for one specific
/// [`ValuePool`] (see [`PatternValue::resolve`]). Symbols from any
/// other pool are meaningless here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymPred {
    /// Wildcard: every cell matches.
    Always,
    /// Unsatisfiable in this pool: no cell matches.
    Never,
    /// Cell symbol must equal this symbol.
    Eq(Sym),
    /// Cell symbol must differ from this symbol.
    Ne(Sym),
    /// Cell symbol must be one of these (non-empty).
    In(Vec<Sym>),
}

impl SymPred {
    /// The match relation `v ≍ p`, on symbols.
    #[inline]
    pub fn matches(&self, s: Sym) -> bool {
        match self {
            SymPred::Always => true,
            SymPred::Never => false,
            SymPred::Eq(p) => s == *p,
            SymPred::Ne(p) => s != *p,
            SymPred::In(ps) => ps.contains(&s),
        }
    }

    /// True for [`SymPred::Always`] (the wildcard image).
    pub fn is_always(&self) -> bool {
        matches!(self, SymPred::Always)
    }
}

/// One row of a pattern tableau: pattern values for the LHS attributes
/// followed by one for the RHS attribute (normal-form CFDs have a single
/// RHS attribute).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PatternRow {
    /// Patterns over the LHS attributes, positionally aligned with the
    /// owning constraint's LHS attribute list.
    pub lhs: Vec<PatternValue>,
    /// Pattern over the RHS attribute.
    pub rhs: PatternValue,
}

impl PatternRow {
    /// Build a row.
    pub fn new(lhs: Vec<PatternValue>, rhs: PatternValue) -> Self {
        PatternRow { lhs, rhs }
    }

    /// An all-wildcard row of the given LHS arity (the embedded FD).
    pub fn all_wildcards(lhs_arity: usize) -> Self {
        PatternRow { lhs: vec![PatternValue::Wildcard; lhs_arity], rhs: PatternValue::Wildcard }
    }

    /// Does `lhs_values` (projection of a tuple on the LHS attrs) match
    /// this row's LHS patterns?
    pub fn lhs_matches(&self, lhs_values: &[Value]) -> bool {
        debug_assert_eq!(self.lhs.len(), lhs_values.len());
        self.lhs.iter().zip(lhs_values).all(|(p, v)| p.matches(v))
    }

    /// True if every LHS pattern and the RHS pattern are wildcards.
    pub fn is_embedded_fd_row(&self) -> bool {
        self.lhs.iter().all(PatternValue::is_wildcard) && self.rhs.is_wildcard()
    }

    /// True if the RHS is a constant (a "constant CFD" row, checkable
    /// tuple-at-a-time).
    pub fn is_constant_row(&self) -> bool {
        !self.rhs.is_wildcard()
    }

    /// Row subsumption: `self` subsumes `other` if self's LHS matches a
    /// superset of tuples and the RHS enforces the same-or-weaker
    /// constraint. Used to prune redundant tableau rows.
    pub fn subsumes(&self, other: &PatternRow) -> bool {
        self.lhs.len() == other.lhs.len()
            && self.lhs.iter().zip(&other.lhs).all(|(a, b)| a.subsumes(b))
            && (self.rhs == other.rhs || (other.rhs.is_wildcard() && !self.rhs.is_wildcard()))
    }
}

impl fmt::Display for PatternRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, " || {})", self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches() {
        assert!(PatternValue::Wildcard.matches(&Value::from("x")));
        assert!(PatternValue::constant("x").matches(&Value::from("x")));
        assert!(!PatternValue::constant("x").matches(&Value::from("y")));
        assert!(PatternValue::Wildcard.matches(&Value::Null));
    }

    #[test]
    fn subsumption() {
        let w = PatternValue::Wildcard;
        let c = PatternValue::constant("a");
        let d = PatternValue::constant("b");
        assert!(w.subsumes(&c));
        assert!(w.subsumes(&w));
        assert!(c.subsumes(&c));
        assert!(!c.subsumes(&w));
        assert!(!c.subsumes(&d));
    }

    #[test]
    fn compatibility() {
        let w = PatternValue::Wildcard;
        let c = PatternValue::constant("a");
        let d = PatternValue::constant("b");
        assert!(w.compatible(&c));
        assert!(c.compatible(&c));
        assert!(!c.compatible(&d));
    }

    #[test]
    fn row_matching() {
        let row = PatternRow::new(
            vec![PatternValue::constant("44"), PatternValue::Wildcard],
            PatternValue::Wildcard,
        );
        assert!(row.lhs_matches(&["44".into(), "EH8".into()]));
        assert!(!row.lhs_matches(&["01".into(), "EH8".into()]));
        assert!(!row.is_constant_row());
        assert!(!row.is_embedded_fd_row());
        assert!(PatternRow::all_wildcards(2).is_embedded_fd_row());
    }

    #[test]
    fn row_subsumption() {
        let general = PatternRow::new(
            vec![PatternValue::Wildcard, PatternValue::Wildcard],
            PatternValue::Wildcard,
        );
        let specific = PatternRow::new(
            vec![PatternValue::constant("44"), PatternValue::Wildcard],
            PatternValue::Wildcard,
        );
        assert!(general.subsumes(&specific));
        assert!(!specific.subsumes(&general));
        // A constant-RHS row is *stronger*, so it subsumes the wildcard
        // version on the same LHS.
        let const_rhs = PatternRow::new(
            vec![PatternValue::constant("44"), PatternValue::Wildcard],
            PatternValue::constant("mh"),
        );
        assert!(const_rhs.subsumes(&specific));
        assert!(!specific.subsumes(&const_rhs));
    }

    #[test]
    fn resolve_agrees_with_value_matching() {
        let mut pool = ValuePool::new();
        let vals = [Value::from("a"), Value::from("b"), Value::Int(3), Value::Null];
        for v in &vals {
            pool.intern(v);
        }
        let pats = [
            PatternValue::Wildcard,
            PatternValue::constant("a"),
            PatternValue::constant("zz"), // never interned
            PatternValue::NotConst(Value::from("b")),
            PatternValue::NotConst(Value::from("zz")),
            PatternValue::one_of([Value::from("a"), Value::Int(3)]),
            PatternValue::one_of([Value::from("zz")]),
        ];
        for p in &pats {
            let pred = p.resolve(&pool);
            for v in &vals {
                let s = pool.lookup(v).unwrap();
                assert_eq!(pred.matches(s), p.matches(v), "pattern {p} on value {v}");
            }
        }
    }

    #[test]
    fn display() {
        let row = PatternRow::new(
            vec![PatternValue::constant("44"), PatternValue::Wildcard],
            PatternValue::Wildcard,
        );
        assert_eq!(row.to_string(), "('44', _ || _)");
    }
}
