//! Classical inclusion dependencies.

use revival_relation::{AttrId, Result, Schema, Table, Value};
use std::collections::HashSet;
use std::fmt;

/// An inclusion dependency `R1[X] ⊆ R2[Y]` (positional correspondence).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ind {
    pub from_relation: String,
    pub from_attrs: Vec<AttrId>,
    pub to_relation: String,
    pub to_attrs: Vec<AttrId>,
}

impl Ind {
    /// Build from attribute names over the two schemas.
    pub fn new(from: &Schema, from_attrs: &[&str], to: &Schema, to_attrs: &[&str]) -> Result<Ind> {
        assert_eq!(from_attrs.len(), to_attrs.len(), "IND attribute lists must have equal length");
        Ok(Ind {
            from_relation: from.name().to_string(),
            from_attrs: from.attr_ids(from_attrs)?,
            to_relation: to.name().to_string(),
            to_attrs: to.attr_ids(to_attrs)?,
        })
    }

    /// Check `from ⊆ to` by building a hash set over the target side.
    pub fn satisfied_by(&self, from: &Table, to: &Table) -> bool {
        let target: HashSet<Vec<Value>> =
            to.rows().map(|(_, r)| self.to_attrs.iter().map(|&a| r[a].clone()).collect()).collect();
        from.rows().all(|(_, r)| {
            let key: Vec<Value> = self.from_attrs.iter().map(|&a| r[a].clone()).collect();
            target.contains(&key)
        })
    }
}

impl fmt::Display for Ind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{:?}] SUBSETEQ {}[{:?}]",
            self.from_relation, self.from_attrs, self.to_relation, self.to_attrs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_relation::Type;

    fn schemas() -> (Schema, Schema) {
        let orders =
            Schema::builder("orders").attr("cid", Type::Int).attr("amt", Type::Int).build();
        let customers =
            Schema::builder("customers").attr("id", Type::Int).attr("name", Type::Str).build();
        (orders, customers)
    }

    #[test]
    fn satisfied_and_violated() {
        let (so, sc) = schemas();
        let ind = Ind::new(&so, &["cid"], &sc, &["id"]).unwrap();
        let mut orders = Table::new(so);
        orders.push(vec![Value::Int(1), Value::Int(10)]).unwrap();
        let mut customers = Table::new(sc);
        customers.push(vec![Value::Int(1), "alice".into()]).unwrap();
        assert!(ind.satisfied_by(&orders, &customers));
        orders.push(vec![Value::Int(2), Value::Int(20)]).unwrap();
        assert!(!ind.satisfied_by(&orders, &customers));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn arity_mismatch_panics() {
        let (so, sc) = schemas();
        let _ = Ind::new(&so, &["cid", "amt"], &sc, &["id"]);
    }
}
