//! Conditional inclusion dependencies (CINDs).
//!
//! A CIND `ψ = (R1[X; Xp] ⊆ R2[Y; Yp], tp)` (Bravo, Fan, Ma — VLDB 2007)
//! extends an IND with patterns: it applies only to `R1`-tuples matching
//! the source pattern `Xp = tp[Xp]`, and requires the matching `R2`-tuple
//! to both agree on the correspondence `X ↦ Y` *and* carry the constants
//! `tp[Yp]`. The paper's example:
//!
//! ```text
//! (CD(album, price; genre='a-book') ⊆ book(title, price; format='audio'))
//! ```
//!
//! if a CD's genre is `a-book`, a book tuple must exist whose
//! title/price equal the CD's album/price, with format `audio`.

use revival_relation::{AttrId, Index, Result, Schema, Table, Value};
use std::fmt;

/// A source- or target-side pattern constraint `attr = const`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternCond {
    pub attr: AttrId,
    pub value: Value,
}

/// A conditional inclusion dependency in normal form (one pattern row;
/// suites with several rows use several `Cind`s).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cind {
    pub from_relation: String,
    /// Correspondence attributes on the source side.
    pub from_attrs: Vec<AttrId>,
    /// Source-side pattern conditions (`Xp`).
    pub from_conds: Vec<PatternCond>,
    pub to_relation: String,
    /// Correspondence attributes on the target side (same length as
    /// `from_attrs`).
    pub to_attrs: Vec<AttrId>,
    /// Target-side pattern conditions (`Yp`) the witness tuple must carry.
    pub to_conds: Vec<PatternCond>,
}

impl Cind {
    /// Build from names; `from_conds`/`to_conds` are `(attr, value)` pairs.
    pub fn new(
        from: &Schema,
        from_attrs: &[&str],
        from_conds: &[(&str, Value)],
        to: &Schema,
        to_attrs: &[&str],
        to_conds: &[(&str, Value)],
    ) -> Result<Cind> {
        assert_eq!(
            from_attrs.len(),
            to_attrs.len(),
            "CIND correspondence lists must have equal length"
        );
        let conds = |schema: &Schema, pairs: &[(&str, Value)]| -> Result<Vec<PatternCond>> {
            pairs
                .iter()
                .map(|(n, v)| Ok(PatternCond { attr: schema.attr_id(n)?, value: v.clone() }))
                .collect()
        };
        Ok(Cind {
            from_relation: from.name().to_string(),
            from_attrs: from.attr_ids(from_attrs)?,
            from_conds: conds(from, from_conds)?,
            to_relation: to.name().to_string(),
            to_attrs: to.attr_ids(to_attrs)?,
            to_conds: conds(to, to_conds)?,
        })
    }

    /// Does a source row fall under this CIND's source pattern?
    pub fn applies_to(&self, row: &[Value]) -> bool {
        self.from_conds.iter().all(|c| row[c.attr] == c.value)
    }

    /// Does a target row carry the required target pattern?
    pub fn target_pattern_ok(&self, row: &[Value]) -> bool {
        self.to_conds.iter().all(|c| row[c.attr] == c.value)
    }

    /// Build the target-side index this CIND probes: correspondence
    /// attributes of tuples carrying the target pattern.
    pub fn build_target_index(&self, to: &Table) -> CindTargetIndex {
        // Filter to pattern-carrying tuples first, then index.
        let mut filtered = Table::new(to.schema().clone());
        for (_, r) in to.rows() {
            if self.target_pattern_ok(&r) {
                filtered.push_unchecked(r);
            }
        }
        CindTargetIndex { index: Index::build(&filtered, &self.to_attrs) }
    }

    /// Full satisfaction check.
    pub fn satisfied_by(&self, from: &Table, to: &Table) -> bool {
        let target = self.build_target_index(to);
        from.rows().all(|(_, r)| !self.applies_to(&r) || target.contains_row(self, &r))
    }
}

/// Prebuilt index over the target side of a CIND.
pub struct CindTargetIndex {
    index: Index,
}

impl CindTargetIndex {
    /// Is there a witness for this *source row*? Probes the index with
    /// the row's correspondence projection in place — no key vector is
    /// allocated per probed tuple (the detection hot loop).
    pub fn contains_row(&self, cind: &Cind, row: &[Value]) -> bool {
        !self.index.lookup_mapped(row, &cind.from_attrs).is_empty()
    }
}

impl fmt::Display for Cind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{:?}; {:?}] SUBSETEQ {}[{:?}; {:?}]",
            self.from_relation,
            self.from_attrs,
            self.from_conds.iter().map(|c| (c.attr, c.value.to_string())).collect::<Vec<_>>(),
            self.to_relation,
            self.to_attrs,
            self.to_conds.iter().map(|c| (c.attr, c.value.to_string())).collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_relation::Type;

    fn schemas() -> (Schema, Schema) {
        let cd = Schema::builder("cd")
            .attr("album", Type::Str)
            .attr("price", Type::Int)
            .attr("genre", Type::Str)
            .build();
        let book = Schema::builder("book")
            .attr("title", Type::Str)
            .attr("price", Type::Int)
            .attr("format", Type::Str)
            .build();
        (cd, book)
    }

    fn paper_cind() -> (Cind, Schema, Schema) {
        let (cd, book) = schemas();
        let cind = Cind::new(
            &cd,
            &["album", "price"],
            &[("genre", "a-book".into())],
            &book,
            &["title", "price"],
            &[("format", "audio".into())],
        )
        .unwrap();
        (cind, cd, book)
    }

    #[test]
    fn satisfied_when_witness_exists() {
        let (cind, cd_s, book_s) = paper_cind();
        let mut cd = Table::new(cd_s);
        cd.push(vec!["Dune".into(), Value::Int(20), "a-book".into()]).unwrap();
        cd.push(vec!["Thriller".into(), Value::Int(10), "pop".into()]).unwrap(); // not applicable
        let mut book = Table::new(book_s);
        book.push(vec!["Dune".into(), Value::Int(20), "audio".into()]).unwrap();
        assert!(cind.satisfied_by(&cd, &book));
    }

    #[test]
    fn violated_without_witness() {
        let (cind, cd_s, book_s) = paper_cind();
        let mut cd = Table::new(cd_s);
        cd.push(vec!["Dune".into(), Value::Int(20), "a-book".into()]).unwrap();
        let mut book = Table::new(book_s);
        // Title/price match but format is wrong → no witness.
        book.push(vec!["Dune".into(), Value::Int(20), "hardcover".into()]).unwrap();
        assert!(!cind.satisfied_by(&cd, &book));
    }

    #[test]
    fn violated_on_price_mismatch() {
        let (cind, cd_s, book_s) = paper_cind();
        let mut cd = Table::new(cd_s);
        cd.push(vec!["Dune".into(), Value::Int(25), "a-book".into()]).unwrap();
        let mut book = Table::new(book_s);
        book.push(vec!["Dune".into(), Value::Int(20), "audio".into()]).unwrap();
        assert!(!cind.satisfied_by(&cd, &book));
    }

    #[test]
    fn non_applicable_rows_ignored() {
        let (cind, cd_s, book_s) = paper_cind();
        let mut cd = Table::new(cd_s);
        cd.push(vec!["X".into(), Value::Int(5), "rock".into()]).unwrap();
        let book = Table::new(book_s);
        assert!(cind.satisfied_by(&cd, &book));
    }
}
