//! Static analyses of CFD suites: satisfiability, implication, and
//! minimal cover (Fan et al., TODS 2008 — reproduced here as T1 in
//! EXPERIMENTS.md).
//!
//! ## Background
//!
//! Unlike classical FDs, a set of CFDs can be *unsatisfiable*: e.g.
//! `([A='1'] -> [B='2'])` and `([A='1'] -> [B='3'])` admit no tuple with
//! `A = 1`, and combined with `([_] -> [A='1'])` admit no tuple at all.
//! TODS 2008 shows:
//!
//! * satisfiability is NP-complete in general, PTIME when no attribute
//!   has a finite domain;
//! * implication is coNP-complete in general, PTIME without finite
//!   domains;
//! * both enjoy a **small-model property**: a CFD suite is satisfiable
//!   iff some *single tuple* satisfies it, and `Σ ⊭ φ` iff there is a
//!   counterexample instance with at most **two** tuples whose values
//!   are drawn from the constants occurring in `Σ ∪ {φ}` plus at most
//!   two fresh values per attribute.
//!
//! This module implements both analyses as backtracking searches over
//! exactly that bounded witness space, which makes them decision
//! procedures (not heuristics) for the bounded fragment. Searches carry
//! a configurable node budget; exceeding it returns
//! [`Outcome::ResourceLimit`] rather than a wrong answer.

use crate::cfd::{merge_by_embedded_fd, Cfd};
use crate::pattern::PatternValue;
use revival_relation::{Schema, Value};
use std::collections::BTreeSet;

/// Result of a static-analysis query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The property holds (satisfiable / implied).
    Yes,
    /// The property fails; for satisfiability this means *unsatisfiable*,
    /// for implication *not implied*.
    No,
    /// The node budget was exhausted before a decision was reached.
    ResourceLimit,
}

impl Outcome {
    /// Convenience: is this a definite yes?
    pub fn is_yes(&self) -> bool {
        matches!(self, Outcome::Yes)
    }
}

/// A symbolic value: a constant from the suite, or one of two fresh
/// values per attribute (fresh values are distinct from every constant
/// and from each other).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Sym {
    Const(Value),
    Fresh(u8),
}

impl Sym {
    fn matches(&self, p: &PatternValue) -> bool {
        match (p, self) {
            (PatternValue::Wildcard, _) => true,
            (PatternValue::Const(c), Sym::Const(v)) => c == v,
            (PatternValue::Const(_), Sym::Fresh(_)) => false,
            // Fresh values are distinct from every constant in the suite.
            (PatternValue::NotConst(c), Sym::Const(v)) => c != v,
            (PatternValue::NotConst(_), Sym::Fresh(_)) => true,
            (PatternValue::OneOf(cs), Sym::Const(v)) => cs.contains(v),
            (PatternValue::OneOf(_), Sym::Fresh(_)) => false,
        }
    }
}

/// Per-attribute symbolic domains for the witness search.
fn domains(schema: &Schema, cfds: &[Cfd], extra: Option<&Cfd>) -> Vec<Vec<Sym>> {
    let arity = schema.arity();
    let mut consts: Vec<BTreeSet<Value>> = vec![BTreeSet::new(); arity];
    let mut collect = |cfd: &Cfd| {
        let mut add = |a: usize, p: &PatternValue| match p {
            PatternValue::Const(c) | PatternValue::NotConst(c) => {
                consts[a].insert(c.clone());
            }
            PatternValue::OneOf(cs) => {
                consts[a].extend(cs.iter().cloned());
            }
            PatternValue::Wildcard => {}
        };
        for row in &cfd.tableau {
            for (p, &a) in row.lhs.iter().zip(&cfd.lhs) {
                add(a, p);
            }
            add(cfd.rhs, &row.rhs);
        }
    };
    for cfd in cfds {
        collect(cfd);
    }
    if let Some(cfd) = extra {
        collect(cfd);
    }
    (0..arity)
        .map(|a| {
            if let Some(dom) = &schema.attribute(a).finite_domain {
                // Finite domain: the witness must take a declared value.
                dom.iter().map(|v| Sym::Const(v.clone())).collect()
            } else {
                let mut d: Vec<Sym> = consts[a].iter().map(|v| Sym::Const(v.clone())).collect();
                d.push(Sym::Fresh(0));
                d.push(Sym::Fresh(1));
                d
            }
        })
        .collect()
}

/// Check all *constant* rows of `cfds` against a fully/partially assigned
/// tuple. `None` entries are unassigned; a row only fails when every
/// relevant position is assigned and the implication is falsified.
fn constant_rows_ok(cfds: &[Cfd], t: &[Option<Sym>]) -> bool {
    for cfd in cfds {
        for row in &cfd.tableau {
            if row.rhs.is_wildcard() {
                continue;
            }
            // Does the (partial) tuple definitely match the LHS pattern?
            let mut definite_match = true;
            for (p, &a) in row.lhs.iter().zip(&cfd.lhs) {
                if p.is_wildcard() {
                    continue; // matches any value, assigned or not
                }
                match &t[a] {
                    Some(v) => {
                        if !v.matches(p) {
                            definite_match = false;
                            break;
                        }
                    }
                    None => {
                        definite_match = false;
                        break;
                    }
                }
            }
            if definite_match {
                if let Some(v) = &t[cfd.rhs] {
                    if !v.matches(&row.rhs) {
                        return false;
                    }
                }
                // RHS unassigned: propagation happens implicitly when it
                // gets assigned (this function is re-run).
            }
        }
    }
    true
}

/// Check the *variable* rows of `cfds` across two fully/partially
/// assigned tuples.
fn variable_rows_ok(cfds: &[Cfd], t1: &[Option<Sym>], t2: &[Option<Sym>]) -> bool {
    for cfd in cfds {
        for row in &cfd.tableau {
            if !row.rhs.is_wildcard() {
                continue;
            }
            let mut applies = true;
            for (p, &a) in row.lhs.iter().zip(&cfd.lhs) {
                match (&t1[a], &t2[a]) {
                    (Some(v1), Some(v2)) => {
                        if v1 != v2 || !v1.matches(p) {
                            applies = false;
                            break;
                        }
                    }
                    _ => {
                        applies = false;
                        break;
                    }
                }
            }
            if applies {
                if let (Some(v1), Some(v2)) = (&t1[cfd.rhs], &t2[cfd.rhs]) {
                    if v1 != v2 {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Is the CFD suite satisfiable (by a non-empty instance)?
///
/// Uses the single-tuple small-model property: `Σ` is satisfiable iff
/// some single tuple satisfies every constant row (variable rows are
/// vacuous on one tuple).
pub fn is_satisfiable(schema: &Schema, cfds: &[Cfd], node_budget: usize) -> Outcome {
    let doms = domains(schema, cfds, None);
    let arity = schema.arity();
    let mut t: Vec<Option<Sym>> = vec![None; arity];
    // Only attributes that appear in some constant row matter; leave the
    // rest unassigned (any fresh value works).
    let mut relevant = vec![false; arity];
    for cfd in cfds {
        for row in &cfd.tableau {
            if row.rhs.is_wildcard() {
                continue;
            }
            relevant[cfd.rhs] = true;
            for (p, &a) in row.lhs.iter().zip(&cfd.lhs) {
                // Wildcard LHS positions match anything; only constant
                // positions and finite-domain attributes can prune.
                if !p.is_wildcard() || schema.attribute(a).is_finite() {
                    relevant[a] = true;
                }
            }
        }
    }
    let order: Vec<usize> = (0..arity).filter(|&a| relevant[a]).collect();
    let mut budget = node_budget;
    if search_tuple(&order, 0, &doms, cfds, &mut t, &mut budget) {
        Outcome::Yes
    } else if budget == 0 {
        Outcome::ResourceLimit
    } else {
        Outcome::No
    }
}

fn search_tuple(
    order: &[usize],
    depth: usize,
    doms: &[Vec<Sym>],
    cfds: &[Cfd],
    t: &mut Vec<Option<Sym>>,
    budget: &mut usize,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    if depth == order.len() {
        return constant_rows_ok(cfds, t);
    }
    let a = order[depth];
    for v in &doms[a] {
        t[a] = Some(v.clone());
        if constant_rows_ok(cfds, t) && search_tuple(order, depth + 1, doms, cfds, t, budget) {
            return true;
        }
    }
    t[a] = None;
    false
}

/// Does `Σ ⊨ φ`? Complete over the bounded witness space of the
/// small-model property (two tuples, constants of `Σ ∪ {φ}` plus two
/// fresh values per attribute).
///
/// Each tableau row of `φ` is checked independently (a multi-row CFD is
/// the conjunction of its rows).
pub fn implies(schema: &Schema, sigma: &[Cfd], phi: &Cfd, node_budget: usize) -> Outcome {
    // An unsatisfiable Σ implies everything; the counterexample search
    // below naturally returns `Yes` in that case (no model of Σ exists).
    for row in &phi.tableau {
        let single = Cfd {
            relation: phi.relation.clone(),
            lhs: phi.lhs.clone(),
            rhs: phi.rhs,
            tableau: vec![row.clone()],
        };
        let out = implies_single_row(schema, sigma, &single, node_budget);
        match out {
            Outcome::Yes => continue,
            other => return other,
        }
    }
    Outcome::Yes
}

fn implies_single_row(schema: &Schema, sigma: &[Cfd], phi: &Cfd, node_budget: usize) -> Outcome {
    let row = &phi.tableau[0];
    let doms = domains(schema, sigma, Some(phi));
    let arity = schema.arity();
    let mut budget = node_budget;

    if !row.rhs.is_wildcard() {
        // Counterexample: one tuple matching φ's LHS pattern whose RHS
        // value falsifies the RHS pattern, satisfying Σ.
        let mut t: Vec<Option<Sym>> = vec![None; arity];
        let order: Vec<usize> = (0..arity).collect();
        let found = search_ce_const(&order, 0, &doms, sigma, phi, &mut t, &mut budget);
        return decide(found, budget);
    }

    // Variable RHS: counterexample = two tuples agreeing on X (matching
    // the pattern), differing on A, both satisfying Σ.
    let mut t1: Vec<Option<Sym>> = vec![None; arity];
    let mut t2: Vec<Option<Sym>> = vec![None; arity];
    // Assign t1 fully, then t2; prune with partial checks.
    let order: Vec<usize> = (0..arity).collect();
    let found = search_ce_var(&order, 0, true, &doms, sigma, phi, &mut t1, &mut t2, &mut budget);
    decide(found, budget)
}

fn decide(counterexample_found: bool, budget_left: usize) -> Outcome {
    if counterexample_found {
        Outcome::No
    } else if budget_left == 0 {
        Outcome::ResourceLimit
    } else {
        Outcome::Yes
    }
}

fn search_ce_const(
    order: &[usize],
    depth: usize,
    doms: &[Vec<Sym>],
    sigma: &[Cfd],
    phi: &Cfd,
    t: &mut Vec<Option<Sym>>,
    budget: &mut usize,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let row = &phi.tableau[0];
    if depth == order.len() {
        // t must match φ's LHS pattern, violate its RHS, and satisfy Σ.
        let lhs_ok = row
            .lhs
            .iter()
            .zip(&phi.lhs)
            .all(|(p, &a)| t[a].as_ref().map(|v| v.matches(p)).unwrap_or(false));
        let rhs_bad = t[phi.rhs].as_ref().map(|v| !v.matches(&row.rhs)).unwrap_or(false);
        return lhs_ok && rhs_bad && constant_rows_ok(sigma, t);
    }
    let a = order[depth];
    for v in &doms[a] {
        // Prune: if a is a φ-LHS position with a constant pattern, only
        // matching values can yield a counterexample.
        if let Some(pos) = phi.lhs.iter().position(|&x| x == a) {
            if !v.matches(&row.lhs[pos]) {
                continue;
            }
        }
        if a == phi.rhs && v.matches(&row.rhs) {
            continue; // the RHS value must falsify the RHS pattern
        }
        t[a] = Some(v.clone());
        if constant_rows_ok(sigma, t)
            && search_ce_const(order, depth + 1, doms, sigma, phi, t, budget)
        {
            return true;
        }
    }
    t[a] = None;
    false
}

#[allow(clippy::too_many_arguments)]
fn search_ce_var(
    order: &[usize],
    depth: usize,
    first: bool,
    doms: &[Vec<Sym>],
    sigma: &[Cfd],
    phi: &Cfd,
    t1: &mut Vec<Option<Sym>>,
    t2: &mut Vec<Option<Sym>>,
    budget: &mut usize,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let row = &phi.tableau[0];
    if depth == order.len() {
        if first {
            // t1 complete: require it to match φ's LHS pattern before
            // starting on t2.
            let lhs_ok = row
                .lhs
                .iter()
                .zip(&phi.lhs)
                .all(|(p, &a)| t1[a].as_ref().map(|v| v.matches(p)).unwrap_or(false));
            if !lhs_ok || !constant_rows_ok(sigma, t1) {
                return false;
            }
            return search_ce_var(order, 0, false, doms, sigma, phi, t1, t2, budget);
        }
        // Both complete: violation of φ + satisfaction of Σ.
        let agree_x = phi.lhs.iter().all(|&a| t1[a] == t2[a]);
        let differ_a = t1[phi.rhs] != t2[phi.rhs];
        return agree_x
            && differ_a
            && constant_rows_ok(sigma, t2)
            && variable_rows_ok(sigma, t1, t2);
    }
    let a = order[depth];
    for v in doms[a].clone() {
        if let Some(pos) = phi.lhs.iter().position(|&x| x == a) {
            if !v.matches(&row.lhs[pos]) {
                continue;
            }
            // Second tuple must agree with the first on X.
            if !first {
                if let Some(v1) = &t1[a] {
                    if v != *v1 {
                        continue;
                    }
                }
            }
        }
        if first {
            t1[a] = Some(v);
        } else {
            t2[a] = Some(v);
        }
        let ok = if first {
            constant_rows_ok(sigma, t1)
        } else {
            constant_rows_ok(sigma, t2) && variable_rows_ok(sigma, t1, t2)
        };
        if ok && search_ce_var(order, depth + 1, first, doms, sigma, phi, t1, t2, budget) {
            return true;
        }
    }
    if first {
        t1[a] = None;
    } else {
        t2[a] = None;
    }
    false
}

/// Report of a minimal-cover computation.
#[derive(Clone, Debug, Default)]
pub struct CoverReport {
    /// Tableau rows in the input (after normal-form merge).
    pub rows_in: usize,
    /// Tableau rows in the output.
    pub rows_out: usize,
    /// Rows dropped because they were implied by the remainder.
    pub implied_dropped: usize,
    /// Rows dropped by intra-CFD subsumption.
    pub subsumed_dropped: usize,
}

/// Compute a minimal cover of a CFD suite (`MinCover` of TODS 2008):
/// merge CFDs sharing an embedded FD, drop subsumed tableau rows, then
/// drop every row implied by the remaining suite.
///
/// Rows whose implication test hits the node budget are conservatively
/// kept, so the output is always equivalent to the input.
pub fn minimal_cover(schema: &Schema, cfds: &[Cfd], node_budget: usize) -> (Vec<Cfd>, CoverReport) {
    let mut merged = merge_by_embedded_fd(cfds);
    let mut report = CoverReport {
        rows_in: merged.iter().map(|c| c.tableau.len()).sum(),
        ..CoverReport::default()
    };
    for cfd in &mut merged {
        let before = cfd.tableau.len();
        cfd.prune_subsumed_rows();
        report.subsumed_dropped += before - cfd.tableau.len();
    }
    // Drop rows implied by everything else, one at a time (greedy).
    let mut changed = true;
    while changed {
        changed = false;
        'outer: for ci in 0..merged.len() {
            for ri in 0..merged[ci].tableau.len() {
                // Build Σ' = suite minus this row; φ = this row alone.
                let mut candidate = merged[ci].clone();
                let row = candidate.tableau.remove(ri);
                let phi = Cfd {
                    relation: merged[ci].relation.clone(),
                    lhs: merged[ci].lhs.clone(),
                    rhs: merged[ci].rhs,
                    tableau: vec![row],
                };
                let mut sigma: Vec<Cfd> = Vec::with_capacity(merged.len());
                for (j, c) in merged.iter().enumerate() {
                    if j == ci {
                        if !candidate.tableau.is_empty() {
                            sigma.push(candidate.clone());
                        }
                    } else {
                        sigma.push(c.clone());
                    }
                }
                if implies(schema, &sigma, &phi, node_budget) == Outcome::Yes {
                    merged[ci].tableau.remove(ri);
                    if merged[ci].tableau.is_empty() {
                        merged.remove(ci);
                    }
                    report.implied_dropped += 1;
                    changed = true;
                    break 'outer;
                }
            }
        }
    }
    report.rows_out = merged.iter().map(|c| c.tableau.len()).sum();
    (merged, report)
}

/// Default node budget used by callers that don't care to tune it.
pub const DEFAULT_BUDGET: usize = 2_000_000;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cfds;
    use revival_relation::Type;

    fn schema() -> Schema {
        Schema::builder("r").attr("a", Type::Str).attr("b", Type::Str).attr("c", Type::Str).build()
    }

    fn schema_finite() -> Schema {
        Schema::builder("r")
            .attr_in("a", Type::Str, vec!["0".into(), "1".into()])
            .attr("b", Type::Str)
            .attr("c", Type::Str)
            .build()
    }

    #[test]
    fn satisfiable_simple() {
        let s = schema();
        let cfds = parse_cfds("r([a='1', b] -> [c])", &s).unwrap();
        assert_eq!(is_satisfiable(&s, &cfds, DEFAULT_BUDGET), Outcome::Yes);
    }

    #[test]
    fn unsat_conflicting_constants_after_forcing() {
        let s = schema();
        // Every tuple must have b='x' (wildcard LHS), and every tuple
        // with b='x' must have c='1' and c='2' → unsatisfiable.
        let cfds = parse_cfds(
            "r([a] -> [b='x'])\n\
             r([b='x'] -> [c='1'])\n\
             r([b='x'] -> [c='2'])",
            &s,
        )
        .unwrap();
        assert_eq!(is_satisfiable(&s, &cfds, DEFAULT_BUDGET), Outcome::No);
    }

    #[test]
    fn sat_conflict_avoidable_without_forcing() {
        let s = schema();
        // Conflicting constants guarded by a='1'; a tuple with a≠1 works.
        let cfds = parse_cfds(
            "r([a='1'] -> [c='1'])\n\
             r([a='1'] -> [c='2'])",
            &s,
        )
        .unwrap();
        assert_eq!(is_satisfiable(&s, &cfds, DEFAULT_BUDGET), Outcome::Yes);
    }

    #[test]
    fn finite_domain_makes_unsat() {
        let s = schema_finite();
        // a ∈ {0,1}; both values force conflicting c constants via b.
        let cfds = parse_cfds(
            "r([a='0'] -> [c='1'])\n\
             r([a='0'] -> [c='2'])\n\
             r([a='1'] -> [c='3'])\n\
             r([a='1'] -> [c='4'])",
            &s,
        )
        .unwrap();
        assert_eq!(is_satisfiable(&s, &cfds, DEFAULT_BUDGET), Outcome::No);
        // Same suite over an infinite domain is satisfiable (pick a='z').
        let s2 = schema();
        let cfds2 = parse_cfds(
            "r([a='0'] -> [c='1'])\n\
             r([a='0'] -> [c='2'])\n\
             r([a='1'] -> [c='3'])\n\
             r([a='1'] -> [c='4'])",
            &s2,
        )
        .unwrap();
        assert_eq!(is_satisfiable(&s2, &cfds2, DEFAULT_BUDGET), Outcome::Yes);
    }

    #[test]
    fn implication_reflexive() {
        let s = schema();
        let cfds = parse_cfds("r([a='1', b] -> [c])", &s).unwrap();
        assert_eq!(implies(&s, &cfds, &cfds[0], DEFAULT_BUDGET), Outcome::Yes);
    }

    #[test]
    fn general_implies_specific() {
        let s = schema();
        // Plain FD b → c implies the conditional version.
        let general = parse_cfds("r([b] -> [c])", &s).unwrap();
        let specific = parse_cfds("r([a='1', b] -> [c])", &s).unwrap();
        // Note different LHS sets: [b] vs [a,b]. The [a='1',b]→c CFD has
        // lhs {a,b}; the plain FD has lhs {b}. Implication still holds.
        assert_eq!(implies(&s, &general, &specific[0], DEFAULT_BUDGET), Outcome::Yes);
        // And not vice versa.
        assert_eq!(implies(&s, &specific, &general[0], DEFAULT_BUDGET), Outcome::No);
    }

    #[test]
    fn constant_rhs_implication() {
        let s = schema();
        let sigma = parse_cfds(
            "r([a='1'] -> [b='x'])\n\
             r([b='x'] -> [c='y'])",
            &s,
        )
        .unwrap();
        let phi = parse_cfds("r([a='1'] -> [c='y'])", &s).unwrap();
        assert_eq!(implies(&s, &sigma, &phi[0], DEFAULT_BUDGET), Outcome::Yes);
        let not_implied = parse_cfds("r([a='2'] -> [c='y'])", &s).unwrap();
        assert_eq!(implies(&s, &sigma, &not_implied[0], DEFAULT_BUDGET), Outcome::No);
    }

    #[test]
    fn transitivity_of_variable_cfds() {
        let s = schema();
        let sigma = parse_cfds(
            "r([a] -> [b])\n\
             r([b] -> [c])",
            &s,
        )
        .unwrap();
        let phi = parse_cfds("r([a] -> [c])", &s).unwrap();
        assert_eq!(implies(&s, &sigma, &phi[0], DEFAULT_BUDGET), Outcome::Yes);
        let reverse = parse_cfds("r([c] -> [a])", &s).unwrap();
        assert_eq!(implies(&s, &sigma, &reverse[0], DEFAULT_BUDGET), Outcome::No);
    }

    #[test]
    fn unsatisfiable_sigma_implies_everything() {
        let s = schema();
        let sigma = parse_cfds(
            "r([a] -> [b='x'])\n\
             r([b='x'] -> [c='1'])\n\
             r([b='x'] -> [c='2'])",
            &s,
        )
        .unwrap();
        let phi = parse_cfds("r([c] -> [a])", &s).unwrap();
        assert_eq!(implies(&s, &sigma, &phi[0], DEFAULT_BUDGET), Outcome::Yes);
    }

    #[test]
    fn finite_domain_implication() {
        // Over a ∈ {0,1}: ([a='0',b]→c) ∧ ([a='1',b]→c) imply ([a,b]→c)
        // — case analysis impossible over infinite domains.
        let s = schema_finite();
        let sigma = parse_cfds(
            "r([a='0', b] -> [c])\n\
             r([a='1', b] -> [c])",
            &s,
        )
        .unwrap();
        let phi = parse_cfds("r([a, b] -> [c])", &s).unwrap();
        // Counterexample would need t1,t2 agreeing on (a,b), differing on
        // c, matching no σ-row — impossible since a must be 0 or 1.
        // Wait: t1,t2 agree on a; if a=0 the first σ-CFD fires. So implied.
        assert_eq!(implies(&s, &sigma, &phi[0], DEFAULT_BUDGET), Outcome::Yes);
        // Over infinite domains the same implication FAILS (pick a='z').
        let s2 = schema();
        let sigma2 = parse_cfds(
            "r([a='0', b] -> [c])\n\
             r([a='1', b] -> [c])",
            &s2,
        )
        .unwrap();
        let phi2 = parse_cfds("r([a, b] -> [c])", &s2).unwrap();
        assert_eq!(implies(&s2, &sigma2, &phi2[0], DEFAULT_BUDGET), Outcome::No);
    }

    #[test]
    fn budget_exhaustion_reports_limit() {
        let s = schema();
        let sigma = parse_cfds("r([a] -> [b])", &s).unwrap();
        let phi = parse_cfds("r([b] -> [c])", &s).unwrap();
        assert_eq!(implies(&s, &sigma, &phi[0], 1), Outcome::ResourceLimit);
    }

    #[test]
    fn minimal_cover_drops_implied_rows() {
        let s = schema();
        let cfds = parse_cfds(
            "r([b] -> [c])\n\
             r([a='1', b] -> [c])\n\
             r([b] -> [c])",
            &s,
        )
        .unwrap();
        let (cover, report) = minimal_cover(&s, &cfds, DEFAULT_BUDGET);
        let total_rows: usize = cover.iter().map(|c| c.tableau.len()).sum();
        assert_eq!(total_rows, 1);
        assert!(report.rows_in >= 2);
        assert_eq!(report.rows_out, 1);
        // The surviving row is the general one.
        assert!(cover[0].tableau[0].lhs.iter().all(|p| p.is_wildcard()));
    }

    #[test]
    fn minimal_cover_keeps_independent_rows() {
        let s = schema();
        let cfds = parse_cfds(
            "r([a='1', b] -> [c])\n\
             r([a='2', b] -> [c])",
            &s,
        )
        .unwrap();
        let (cover, report) = minimal_cover(&s, &cfds, DEFAULT_BUDGET);
        let total_rows: usize = cover.iter().map(|c| c.tableau.len()).sum();
        assert_eq!(total_rows, 2);
        assert_eq!(report.implied_dropped, 0);
    }
}
