//! Textual constraint syntax — the notation the paper itself uses.
//!
//! One constraint per line, `#` starts a comment. Two forms:
//!
//! **CFDs** (§3, first example of the paper):
//!
//! ```text
//! customer([cc='44', zip] -> [street])
//! customer([cc='01', ac='908', phn] -> [street, city='mh', zip])
//! ```
//!
//! A plain attribute on the LHS is a wildcard pattern; `attr='c'` is a
//! constant pattern. Each RHS attribute yields one normal-form [`Cfd`]
//! (so the second line above produces three CFDs). Constants are parsed
//! according to the attribute's declared [`revival_relation::Type`]
//! (quotes optional for non-string types).
//!
//! **CINDs** (§3, second example):
//!
//! ```text
//! cd(album, price; genre='a-book') <= book(title, price; format='audio')
//! ```
//!
//! Attributes before `;` are the correspondence lists (positionally
//! paired); `attr='c'` items after `;` are pattern conditions.

use crate::cfd::Cfd;
use crate::cind::Cind;
use crate::pattern::{PatternRow, PatternValue};
use revival_relation::{Error, Result, Schema, Value};

/// Parse a suite of CFDs over one schema.
pub fn parse_cfds(text: &str, schema: &Schema) -> Result<Vec<Cfd>> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        out.extend(parse_cfd_line(line, schema).map_err(|e| annotate(e, lineno + 1))?);
    }
    Ok(out)
}

/// Parse a suite of CINDs over a set of schemas (resolved by name).
pub fn parse_cinds(text: &str, schemas: &[Schema]) -> Result<Vec<Cind>> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_cind_line(line, schemas).map_err(|e| annotate(e, lineno + 1))?);
    }
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    // `#` outside quotes starts a comment.
    let mut in_quote = false;
    for (i, c) in line.char_indices() {
        match c {
            '\'' => in_quote = !in_quote,
            '#' if !in_quote => return &line[..i],
            _ => {}
        }
    }
    line
}

fn annotate(e: Error, line: usize) -> Error {
    match e {
        Error::SqlParse { message, .. } => {
            Error::SqlParse { position: line, message: format!("line {line}: {message}") }
        }
        other => other,
    }
}

fn perr(msg: impl Into<String>) -> Error {
    Error::SqlParse { position: 0, message: msg.into() }
}

/// The pattern part of one bracket-list item.
enum ItemPattern {
    /// Plain attribute → wildcard.
    Wild,
    /// `attr='c'`.
    Eq(String),
    /// `attr!='c'` (eCFD disequality).
    Ne(String),
    /// `attr in ('a','b')` (eCFD disjunction).
    In(Vec<String>),
}

/// An item in a CFD bracket list: attribute name + pattern.
struct Item {
    attr: String,
    pattern: ItemPattern,
}

/// Split `a, b='x', c` respecting quotes. Separator is configurable so
/// the same splitter serves CFD lists and CIND `;`-sections.
fn split_items(s: &str, sep: char) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    let mut depth = 0usize;
    for c in s.chars() {
        match c {
            '\'' => {
                in_quote = !in_quote;
                cur.push(c);
            }
            '(' if !in_quote => {
                depth += 1;
                cur.push(c);
            }
            ')' if !in_quote => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            c if c == sep && !in_quote && depth == 0 => {
                parts.push(cur.trim().to_string());
                cur = String::new();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() || !parts.is_empty() {
        parts.push(cur.trim().to_string());
    }
    parts.retain(|p| !p.is_empty());
    parts
}

fn unquote(val: &str) -> String {
    let val = val.trim();
    match val.strip_prefix('\'').and_then(|v| v.strip_suffix('\'')) {
        // Inside a quoted constant a doubled quote is the escape for a
        // literal quote — the form [`quote_const`] renders, so mined
        // constants containing `'` survive a display → parse round trip.
        Some(inner) => inner.replace("''", "'"),
        None => val.to_string(),
    }
}

/// Render a constant in surface syntax: quoted, with embedded quotes
/// doubled (the escape [`unquote`] undoes). The quote-tracking helpers
/// in this module all treat `''` as leave-and-re-enter, which never
/// exposes a separator, so escaped constants split correctly too.
fn quote_const(v: &Value) -> String {
    format!("'{}'", v.render().replace('\'', "''"))
}

fn check_attr_name(attr: &str) -> Result<String> {
    if attr.is_empty() || !attr.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '#') {
        return Err(perr(format!("bad attribute `{attr}`")));
    }
    Ok(attr.to_string())
}

fn parse_item(s: &str) -> Result<Item> {
    // eCFD disequality: attr != 'c' (check before `=`).
    if let Some((attr, val)) = split_once_unquoted(s, '!') {
        let val = val
            .trim_start()
            .strip_prefix('=')
            .ok_or_else(|| perr(format!("expected `!=` in `{s}`")))?;
        return Ok(Item {
            attr: check_attr_name(attr.trim())?,
            pattern: ItemPattern::Ne(unquote(val)),
        });
    }
    if let Some((attr, val)) = split_once_unquoted(s, '=') {
        return Ok(Item {
            attr: check_attr_name(attr.trim())?,
            pattern: ItemPattern::Eq(unquote(val)),
        });
    }
    // eCFD disjunction: attr in ('a','b').
    let lower = s.to_ascii_lowercase();
    if let Some(pos) = lower.find(" in ") {
        let attr = s[..pos].trim();
        let list = s[pos + 4..].trim();
        let inner = list
            .strip_prefix('(')
            .and_then(|x| x.strip_suffix(')'))
            .ok_or_else(|| perr(format!("expected `in (...)` in `{s}`")))?;
        let values: Vec<String> = split_items(inner, ',').iter().map(|v| unquote(v)).collect();
        if values.is_empty() {
            return Err(perr(format!("empty `in (...)` list in `{s}`")));
        }
        return Ok(Item { attr: check_attr_name(attr)?, pattern: ItemPattern::In(values) });
    }
    Ok(Item { attr: check_attr_name(s.trim())?, pattern: ItemPattern::Wild })
}

fn split_once_unquoted(s: &str, sep: char) -> Option<(&str, &str)> {
    let mut in_quote = false;
    for (i, c) in s.char_indices() {
        match c {
            '\'' => in_quote = !in_quote,
            c if c == sep && !in_quote => return Some((&s[..i], &s[i + c.len_utf8()..])),
            _ => {}
        }
    }
    None
}

/// Parse the constant of an item according to the attribute type.
fn parse_const(schema: &Schema, attr: &str, raw: &str) -> Result<Value> {
    let id = schema.attr_id(attr)?;
    schema.attribute(id).ty.parse(raw).map_err(|_| {
        perr(format!("constant `{raw}` does not parse as {} for `{attr}`", schema.attribute(id).ty))
    })
}

/// Parse one CFD surface line into normal-form CFDs.
pub fn parse_cfd_line(line: &str, schema: &Schema) -> Result<Vec<Cfd>> {
    // relname([lhs] -> [rhs])
    let (rel, rest) =
        line.split_once('(').ok_or_else(|| perr("expected `relation([...] -> [...])`"))?;
    let rel = rel.trim();
    if rel != schema.name() {
        return Err(perr(format!(
            "constraint relation `{rel}` does not match schema `{}`",
            schema.name()
        )));
    }
    let rest = rest.trim_end().strip_suffix(')').ok_or_else(|| perr("missing closing `)`"))?;
    let (lhs_part, rhs_part) = split_arrow(rest)?;
    let lhs_items: Vec<Item> = split_items(extract_brackets(lhs_part)?, ',')
        .iter()
        .map(|s| parse_item(s))
        .collect::<Result<_>>()?;
    let rhs_items: Vec<Item> = split_items(extract_brackets(rhs_part)?, ',')
        .iter()
        .map(|s| parse_item(s))
        .collect::<Result<_>>()?;
    if lhs_items.is_empty() {
        return Err(perr("empty LHS"));
    }
    if rhs_items.is_empty() {
        return Err(perr("empty RHS"));
    }

    let to_pattern = |item: &Item| -> Result<PatternValue> {
        Ok(match &item.pattern {
            ItemPattern::Wild => PatternValue::Wildcard,
            ItemPattern::Eq(raw) => PatternValue::Const(parse_const(schema, &item.attr, raw)?),
            ItemPattern::Ne(raw) => PatternValue::NotConst(parse_const(schema, &item.attr, raw)?),
            ItemPattern::In(raws) => PatternValue::one_of(
                raws.iter()
                    .map(|raw| parse_const(schema, &item.attr, raw))
                    .collect::<Result<Vec<_>>>()?,
            ),
        })
    };
    let mut lhs_names = Vec::new();
    let mut lhs_patterns = Vec::new();
    for item in &lhs_items {
        lhs_names.push(item.attr.as_str());
        lhs_patterns.push(to_pattern(item)?);
    }

    let mut cfds = Vec::with_capacity(rhs_items.len());
    for item in &rhs_items {
        let row = PatternRow::new(lhs_patterns.clone(), to_pattern(item)?);
        cfds.push(Cfd::new(schema, &lhs_names, &item.attr, vec![row])?);
    }
    Ok(cfds)
}

fn split_arrow(s: &str) -> Result<(&str, &str)> {
    let mut in_quote = false;
    let bytes = s.as_bytes();
    for i in 0..bytes.len().saturating_sub(1) {
        match bytes[i] {
            b'\'' => in_quote = !in_quote,
            b'-' if !in_quote && bytes[i + 1] == b'>' => {
                return Ok((&s[..i], &s[i + 2..]));
            }
            _ => {}
        }
    }
    Err(perr("expected `->`"))
}

fn extract_brackets(s: &str) -> Result<&str> {
    let s = s.trim();
    s.strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| perr(format!("expected `[...]`, got `{s}`")))
}

/// Parse one CIND line.
pub fn parse_cind_line(line: &str, schemas: &[Schema]) -> Result<Cind> {
    let (from_part, to_part) = split_once_unquoted(line, '<')
        .and_then(|(a, b)| b.strip_prefix('=').map(|b| (a, b)))
        .ok_or_else(|| perr("expected `<=` between source and target"))?;
    let (from_rel, from_attrs, from_conds) = parse_cind_side(from_part)?;
    let (to_rel, to_attrs, to_conds) = parse_cind_side(to_part)?;
    let find = |name: &str| {
        schemas
            .iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    };
    let from_schema = find(&from_rel)?;
    let to_schema = find(&to_rel)?;
    if from_attrs.len() != to_attrs.len() {
        return Err(perr(format!(
            "correspondence lists have different lengths ({} vs {})",
            from_attrs.len(),
            to_attrs.len()
        )));
    }
    let conds = |schema: &Schema, items: &[Item]| -> Result<Vec<(String, Value)>> {
        items
            .iter()
            .map(|i| match &i.pattern {
                ItemPattern::Eq(raw) => Ok((i.attr.clone(), parse_const(schema, &i.attr, raw)?)),
                _ => Err(perr(format!("pattern condition `{}` needs `=value`", i.attr))),
            })
            .collect()
    };
    let fc = conds(from_schema, &from_conds)?;
    let tc = conds(to_schema, &to_conds)?;
    Cind::new(
        from_schema,
        &from_attrs.iter().map(String::as_str).collect::<Vec<_>>(),
        &fc.iter().map(|(n, v)| (n.as_str(), v.clone())).collect::<Vec<_>>(),
        to_schema,
        &to_attrs.iter().map(String::as_str).collect::<Vec<_>>(),
        &tc.iter().map(|(n, v)| (n.as_str(), v.clone())).collect::<Vec<_>>(),
    )
}

/// Parse `rel(attr, attr; cond='v', cond='v')`.
fn parse_cind_side(s: &str) -> Result<(String, Vec<String>, Vec<Item>)> {
    let s = s.trim();
    let (rel, rest) = s.split_once('(').ok_or_else(|| perr("expected `relation(...)`"))?;
    let inner = rest.trim_end().strip_suffix(')').ok_or_else(|| perr("missing closing `)`"))?;
    let sections = split_items(inner, ';');
    if sections.is_empty() || sections.len() > 2 {
        return Err(perr("expected `attrs[; conds]`"));
    }
    let attrs: Vec<String> = split_items(&sections[0], ',')
        .iter()
        .map(|s| {
            parse_item(s).map(|i| {
                if matches!(i.pattern, ItemPattern::Wild) {
                    Ok(i.attr)
                } else {
                    Err(perr(format!("correspondence attr `{}` cannot carry `=`", i.attr)))
                }
            })
        })
        .collect::<Result<Result<_>>>()??;
    let conds = if sections.len() == 2 {
        split_items(&sections[1], ',').iter().map(|s| parse_item(s)).collect::<Result<Vec<_>>>()?
    } else {
        Vec::new()
    };
    Ok((rel.trim().to_string(), attrs, conds))
}

/// Serialize a normal-form CFD back into surface syntax (one line per
/// tableau row). Constants are quoted with embedded quotes doubled, so
/// the output re-parses through [`parse_cfds`] to an equivalent CFD —
/// [`Cfd::display`] renders through this function, and `semandaq
/// discover --emit` relies on the round trip.
pub fn cfd_to_text(cfd: &Cfd, schema: &Schema) -> String {
    let mut out = String::new();
    for row in 0..cfd.tableau.len() {
        out.push_str(&cfd_row_to_text(cfd, schema, row));
        out.push('\n');
    }
    out
}

/// One tableau row of a CFD as a single surface-syntax constraint line
/// (no trailing newline) — what diagnostics embed when they point at a
/// specific violated row of a multi-row (merged) tableau.
pub fn cfd_row_to_text(cfd: &Cfd, schema: &Schema, row: usize) -> String {
    let row = &cfd.tableau[row];
    let render = |a: usize, p: &PatternValue| match p {
        PatternValue::Wildcard => schema.attr_name(a).to_string(),
        PatternValue::Const(c) => format!("{}={}", schema.attr_name(a), quote_const(c)),
        PatternValue::NotConst(c) => format!("{}!={}", schema.attr_name(a), quote_const(c)),
        PatternValue::OneOf(cs) => format!(
            "{} in ({})",
            schema.attr_name(a),
            cs.iter().map(quote_const).collect::<Vec<_>>().join(", ")
        ),
    };
    let mut lhs = Vec::new();
    for (p, &a) in row.lhs.iter().zip(&cfd.lhs) {
        lhs.push(render(a, p));
    }
    format!("{}([{}] -> [{}])", cfd.relation, lhs.join(", "), render(cfd.rhs, &row.rhs))
}

/// Serialize a CIND back into the surface syntax [`parse_cinds`]
/// accepts — how `semandaq discover` emits mined inclusion
/// dependencies.
pub fn cind_to_text(cind: &Cind, from: &Schema, to: &Schema) -> String {
    let side = |schema: &Schema,
                attrs: &[revival_relation::AttrId],
                conds: &[crate::cind::PatternCond]| {
        let names: Vec<&str> = attrs.iter().map(|&a| schema.attr_name(a)).collect();
        if conds.is_empty() {
            format!("{}({})", schema.name(), names.join(", "))
        } else {
            let cs: Vec<String> = conds
                .iter()
                .map(|c| format!("{}={}", schema.attr_name(c.attr), quote_const(&c.value)))
                .collect();
            format!("{}({}; {})", schema.name(), names.join(", "), cs.join(", "))
        }
    };
    format!(
        "{} <= {}\n",
        side(from, &cind.from_attrs, &cind.from_conds),
        side(to, &cind.to_attrs, &cind.to_conds)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_relation::Type;

    fn customer() -> Schema {
        Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("ac", Type::Str)
            .attr("phn", Type::Str)
            .attr("street", Type::Str)
            .attr("city", Type::Str)
            .attr("zip", Type::Str)
            .attr("age", Type::Int)
            .build()
    }

    #[test]
    fn paper_example_one() {
        let s = customer();
        let cfds = parse_cfds("customer([cc='44', zip] -> [street])", &s).unwrap();
        assert_eq!(cfds.len(), 1);
        let cfd = &cfds[0];
        assert_eq!(cfd.lhs, vec![0, 5]);
        assert_eq!(cfd.rhs, 3);
        assert_eq!(cfd.tableau[0].lhs[0], PatternValue::constant("44"));
        assert!(cfd.tableau[0].lhs[1].is_wildcard());
        assert!(cfd.tableau[0].rhs.is_wildcard());
    }

    #[test]
    fn paper_example_two_normalizes() {
        let s = customer();
        let cfds = parse_cfds("customer([cc='01', ac='908', phn] -> [street, city='mh', zip])", &s)
            .unwrap();
        assert_eq!(cfds.len(), 3);
        let city = cfds.iter().find(|c| c.rhs == s.attr_id("city").unwrap()).unwrap();
        assert_eq!(city.tableau[0].rhs, PatternValue::constant("mh"));
        let street = cfds.iter().find(|c| c.rhs == s.attr_id("street").unwrap()).unwrap();
        assert!(street.tableau[0].rhs.is_wildcard());
    }

    #[test]
    fn typed_constants() {
        let s = customer();
        let cfds = parse_cfds("customer([age=30, zip] -> [street])", &s).unwrap();
        assert_eq!(cfds[0].tableau[0].lhs[0], PatternValue::Const(Value::Int(30)));
        // Quoted form also parses by type.
        let cfds = parse_cfds("customer([age='30', zip] -> [street])", &s).unwrap();
        assert_eq!(cfds[0].tableau[0].lhs[0], PatternValue::Const(Value::Int(30)));
        // Bad int rejected.
        assert!(parse_cfds("customer([age='abc', zip] -> [street])", &s).is_err());
    }

    #[test]
    fn comments_and_blank_lines() {
        let s = customer();
        let text = "\n# suite header\ncustomer([cc='44', zip] -> [street]) # trailing\n\n";
        let cfds = parse_cfds(text, &s).unwrap();
        assert_eq!(cfds.len(), 1);
    }

    #[test]
    fn hash_inside_quotes_not_comment() {
        let s = customer();
        let cfds = parse_cfds("customer([cc='#4', zip] -> [street])", &s).unwrap();
        assert_eq!(cfds[0].tableau[0].lhs[0], PatternValue::constant("#4"));
    }

    #[test]
    fn errors() {
        let s = customer();
        assert!(parse_cfds("customer([cc] [street])", &s).is_err()); // no arrow
        assert!(parse_cfds("wrong([cc] -> [street])", &s).is_err()); // wrong relation
        assert!(parse_cfds("customer([nope] -> [street])", &s).is_err()); // unknown attr
        assert!(parse_cfds("customer([] -> [street])", &s).is_err()); // empty lhs
        assert!(parse_cfds("customer([cc] -> [])", &s).is_err()); // empty rhs
        assert!(parse_cfds("customer[cc] -> [street]", &s).is_err()); // missing parens
    }

    #[test]
    fn roundtrip() {
        let s = customer();
        let text = "customer([cc='44', zip] -> [street])\n";
        let cfds = parse_cfds(text, &s).unwrap();
        assert_eq!(cfd_to_text(&cfds[0], &s), text);
    }

    #[test]
    fn quoted_constants_escape_and_roundtrip() {
        let s = customer();
        // Constants full of syntax characters: quotes, separators,
        // brackets, arrows, comment markers — everything a mined value
        // can drag in from real data.
        // (An empty-string constant is not in the list: `Type::parse`
        // normalises "" to Null at load time, so mined constants are
        // `Null`, never `Str("")` — and Null round-trips as `''`.)
        for nasty in ["o'brien", "a''b", "'", "x,y", "a#b", "EH8]", "a->b", "in (x)", "a=b"] {
            let cfd = Cfd::new(
                &s,
                &["cc", "zip"],
                "street",
                vec![crate::pattern::PatternRow::new(
                    vec![PatternValue::constant(nasty), PatternValue::Wildcard],
                    PatternValue::constant(nasty),
                )],
            )
            .unwrap();
            let text = cfd_to_text(&cfd, &s);
            let back =
                parse_cfds(&text, &s).unwrap_or_else(|e| panic!("`{text}` must re-parse: {e}"));
            assert_eq!(back.len(), 1, "one line, one CFD: {text}");
            assert_eq!(back[0], cfd, "round trip must be exact for `{nasty}`");
        }
        // The eCFD forms escape the same way.
        let cfd = Cfd::new(
            &s,
            &["cc"],
            "street",
            vec![crate::pattern::PatternRow::new(
                vec![PatternValue::one_of(vec!["o'b".into(), "c,d".into()])],
                PatternValue::NotConst("it's".into()),
            )],
        )
        .unwrap();
        let back = parse_cfds(&cfd_to_text(&cfd, &s), &s).unwrap();
        assert_eq!(back[0], cfd);
        // A Null constant (how load-time parsing stores "") renders as
        // `''` and parses back to Null.
        let null_cfd = Cfd::new(
            &s,
            &["cc"],
            "street",
            vec![crate::pattern::PatternRow::new(
                vec![PatternValue::Const(Value::Null)],
                PatternValue::Wildcard,
            )],
        )
        .unwrap();
        let back = parse_cfds(&cfd_to_text(&null_cfd, &s), &s).unwrap();
        assert_eq!(back[0], null_cfd);
    }

    #[test]
    fn cind_roundtrips_through_text() {
        let cd = Schema::builder("cd")
            .attr("album", Type::Str)
            .attr("price", Type::Int)
            .attr("genre", Type::Str)
            .build();
        let book = Schema::builder("book")
            .attr("title", Type::Str)
            .attr("price", Type::Int)
            .attr("format", Type::Str)
            .build();
        let schemas = [cd.clone(), book.clone()];
        for text in [
            "cd(album, price; genre='a-book') <= book(title, price; format='audio')\n",
            "cd(album) <= book(title)\n",
            "cd(album; genre='rock ''n'' roll') <= book(title)\n",
        ] {
            let cinds = parse_cinds(text, &schemas).unwrap();
            assert_eq!(cind_to_text(&cinds[0], &cd, &book), text);
            let back = parse_cinds(&cind_to_text(&cinds[0], &cd, &book), &schemas).unwrap();
            assert_eq!(back[0], cinds[0]);
        }
    }

    #[test]
    fn cind_paper_example() {
        let cd = Schema::builder("cd")
            .attr("album", Type::Str)
            .attr("price", Type::Int)
            .attr("genre", Type::Str)
            .build();
        let book = Schema::builder("book")
            .attr("title", Type::Str)
            .attr("price", Type::Int)
            .attr("format", Type::Str)
            .build();
        let cinds = parse_cinds(
            "cd(album, price; genre='a-book') <= book(title, price; format='audio')",
            &[cd.clone(), book.clone()],
        )
        .unwrap();
        assert_eq!(cinds.len(), 1);
        let c = &cinds[0];
        assert_eq!(c.from_relation, "cd");
        assert_eq!(c.to_relation, "book");
        assert_eq!(c.from_attrs, vec![0, 1]);
        assert_eq!(c.to_attrs, vec![0, 1]);
        assert_eq!(c.from_conds.len(), 1);
        assert_eq!(c.to_conds.len(), 1);
    }

    #[test]
    fn cind_without_conditions_is_plain_ind() {
        let a = Schema::builder("a").attr("x", Type::Str).build();
        let b = Schema::builder("b").attr("y", Type::Str).build();
        let cinds = parse_cinds("a(x) <= b(y)", &[a, b]).unwrap();
        assert!(cinds[0].from_conds.is_empty());
        assert!(cinds[0].to_conds.is_empty());
    }

    #[test]
    fn cind_errors() {
        let a = Schema::builder("a").attr("x", Type::Str).build();
        let b = Schema::builder("b").attr("y", Type::Str).attr("z", Type::Str).build();
        let schemas = [a, b];
        assert!(parse_cinds("a(x) <= b(y, z)", &schemas).is_err()); // arity
        assert!(parse_cinds("a(x) <= c(y)", &schemas).is_err()); // unknown rel
        assert!(parse_cinds("a(x) b(y)", &schemas).is_err()); // no <=
        assert!(parse_cinds("a(x; y) <= b(y)", &schemas).is_err()); // cond without =
    }
}
