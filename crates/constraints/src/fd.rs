//! Classical functional dependencies, with closure/key reasoning.
//!
//! FDs appear in this crate both as the degenerate case of CFDs (an
//! all-wildcard tableau) and as standalone objects for the discovery
//! baseline (TANE) and Armstrong-style reasoning.

use revival_relation::{AttrId, Schema};
use std::collections::BTreeSet;
use std::fmt;

/// A functional dependency `X → Y` over one relation, by attribute id.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Fd {
    pub relation: String,
    pub lhs: Vec<AttrId>,
    pub rhs: Vec<AttrId>,
}

impl Fd {
    /// Build an FD from attribute names.
    pub fn new(schema: &Schema, lhs: &[&str], rhs: &[&str]) -> revival_relation::Result<Fd> {
        Ok(Fd {
            relation: schema.name().to_string(),
            lhs: schema.attr_ids(lhs)?,
            rhs: schema.attr_ids(rhs)?,
        })
    }

    /// Build directly from ids (used by discovery).
    pub fn from_ids(relation: impl Into<String>, lhs: Vec<AttrId>, rhs: Vec<AttrId>) -> Fd {
        Fd { relation: relation.into(), lhs, rhs }
    }

    /// Is this FD trivial (`rhs ⊆ lhs`)?
    pub fn is_trivial(&self) -> bool {
        self.rhs.iter().all(|a| self.lhs.contains(a))
    }

    /// Human-readable form using a schema for names.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Fd, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let names = |ids: &[AttrId]| {
                    ids.iter().map(|&i| self.1.attr_name(i)).collect::<Vec<_>>().join(", ")
                };
                write!(
                    f,
                    "{}([{}] -> [{}])",
                    self.0.relation,
                    names(&self.0.lhs),
                    names(&self.0.rhs)
                )
            }
        }
        D(self, schema)
    }
}

/// Compute the attribute closure `X⁺` under a set of FDs.
pub fn closure(attrs: &[AttrId], fds: &[Fd]) -> BTreeSet<AttrId> {
    let mut closed: BTreeSet<AttrId> = attrs.iter().copied().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for fd in fds {
            if fd.lhs.iter().all(|a| closed.contains(a)) {
                for &b in &fd.rhs {
                    if closed.insert(b) {
                        changed = true;
                    }
                }
            }
        }
    }
    closed
}

/// Does `fds ⊨ candidate` (classical Armstrong implication)?
pub fn implies(fds: &[Fd], candidate: &Fd) -> bool {
    let closed = closure(&candidate.lhs, fds);
    candidate.rhs.iter().all(|a| closed.contains(a))
}

/// Is `attrs` a superkey of a relation with `arity` attributes under `fds`?
pub fn is_superkey(attrs: &[AttrId], arity: usize, fds: &[Fd]) -> bool {
    closure(attrs, fds).len() == arity
}

/// All minimal candidate keys (exponential in the worst case; intended
/// for the small schemas in this workspace).
pub fn candidate_keys(arity: usize, fds: &[Fd]) -> Vec<Vec<AttrId>> {
    let all: Vec<AttrId> = (0..arity).collect();
    let mut keys: Vec<Vec<AttrId>> = Vec::new();
    // Breadth-first over subset sizes so the first hit per branch is minimal.
    for size in 1..=arity {
        for combo in combinations(&all, size) {
            if keys.iter().any(|k| k.iter().all(|a| combo.contains(a))) {
                continue; // superset of a known key
            }
            if is_superkey(&combo, arity, fds) {
                keys.push(combo);
            }
        }
    }
    keys
}

/// All `k`-subsets of `items` (in lexicographic order).
pub fn combinations<T: Clone>(items: &[T], k: usize) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let n = items.len();
    if k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| items[i].clone()).collect());
        // advance
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_relation::Type;

    fn schema() -> Schema {
        Schema::builder("r")
            .attr("a", Type::Str)
            .attr("b", Type::Str)
            .attr("c", Type::Str)
            .attr("d", Type::Str)
            .build()
    }

    #[test]
    fn closure_basic() {
        let s = schema();
        let fds = vec![Fd::new(&s, &["a"], &["b"]).unwrap(), Fd::new(&s, &["b"], &["c"]).unwrap()];
        let cl = closure(&[0], &fds);
        assert_eq!(cl, [0, 1, 2].into_iter().collect());
    }

    #[test]
    fn implication() {
        let s = schema();
        let fds = vec![Fd::new(&s, &["a"], &["b"]).unwrap(), Fd::new(&s, &["b"], &["c"]).unwrap()];
        assert!(implies(&fds, &Fd::new(&s, &["a"], &["c"]).unwrap()));
        assert!(!implies(&fds, &Fd::new(&s, &["c"], &["a"]).unwrap()));
        // Trivial FDs are always implied.
        assert!(implies(&[], &Fd::new(&s, &["a", "b"], &["a"]).unwrap()));
    }

    #[test]
    fn keys() {
        let s = schema();
        let fds = vec![
            Fd::new(&s, &["a"], &["b", "c", "d"]).unwrap(),
            Fd::new(&s, &["b", "c"], &["a"]).unwrap(),
        ];
        let keys = candidate_keys(4, &fds);
        assert!(keys.contains(&vec![0]));
        assert!(keys.contains(&vec![1, 2]));
        // No key should be a superset of another.
        for k1 in &keys {
            for k2 in &keys {
                if k1 != k2 {
                    assert!(!k1.iter().all(|a| k2.contains(a)));
                }
            }
        }
    }

    #[test]
    fn trivial() {
        let s = schema();
        assert!(Fd::new(&s, &["a", "b"], &["a"]).unwrap().is_trivial());
        assert!(!Fd::new(&s, &["a"], &["b"]).unwrap().is_trivial());
    }

    #[test]
    fn combinations_counts() {
        assert_eq!(combinations(&[1, 2, 3, 4], 2).len(), 6);
        assert_eq!(combinations(&[1, 2, 3], 3).len(), 1);
        assert_eq!(combinations(&[1, 2], 3).len(), 0);
        assert_eq!(combinations(&[1, 2, 3], 1).len(), 3);
    }

    #[test]
    fn display_fd() {
        let s = schema();
        let fd = Fd::new(&s, &["a", "b"], &["c"]).unwrap();
        assert_eq!(fd.display(&s).to_string(), "r([a, b] -> [c])");
    }
}
