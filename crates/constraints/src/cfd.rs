//! Conditional functional dependencies (CFDs).
//!
//! A CFD `φ = (R: X → A, Tp)` pairs an *embedded* FD `X → A` with a
//! *pattern tableau* `Tp` of rows over `X ∪ {A}` whose entries are
//! constants or the wildcard `_`. The paper's examples:
//!
//! * `customer([cc='44', zip] -> [street])` — for UK customers, `zip`
//!   determines `street` (a *variable* CFD: RHS pattern `_`);
//! * `customer([cc='01', ac='908', phn] -> [city='mh'])` — US customers
//!   with area code 908 must live in `mh` (a *constant* CFD: RHS
//!   pattern is a constant).
//!
//! This module uses the **normal form** of Fan et al. (TODS 2008): a
//! single RHS attribute per CFD. [`crate::parser`] normalises the
//! multi-attribute surface syntax into this form.
//!
//! ## Semantics
//!
//! An instance `I` satisfies `φ` iff for every pair of tuples `t1, t2`
//! (not necessarily distinct) and every row `tp ∈ Tp`: if `t1[X] = t2[X]`
//! and both match `tp[X]`, then `t1[A] = t2[A]` and both match `tp[A]`.
//! With `t1 = t2` this yields the single-tuple semantics of constant
//! rows.

use crate::fd::Fd;
use crate::pattern::{PatternRow, PatternValue};
use revival_relation::{AttrId, Error, Result, Schema, Table, Value};
use std::collections::HashMap;
use std::fmt;

/// A normal-form CFD: `(relation: lhs → rhs, tableau)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cfd {
    /// Relation name this CFD constrains.
    pub relation: String,
    /// LHS attribute ids.
    pub lhs: Vec<AttrId>,
    /// The single RHS attribute id (normal form).
    pub rhs: AttrId,
    /// Pattern tableau; each row is positionally aligned with `lhs` plus
    /// the RHS pattern.
    pub tableau: Vec<PatternRow>,
}

impl Cfd {
    /// Build a CFD from attribute names and a tableau. The tableau is
    /// validated ([`Cfd::validate`]) so malformed rows surface as a
    /// typed error here, not a panic deep inside a detection scan.
    pub fn new(schema: &Schema, lhs: &[&str], rhs: &str, tableau: Vec<PatternRow>) -> Result<Cfd> {
        let cfd = Cfd {
            relation: schema.name().to_string(),
            lhs: schema.attr_ids(lhs)?,
            rhs: schema.attr_id(rhs)?,
            tableau,
        };
        cfd.validate()?;
        Ok(cfd)
    }

    /// Check the tableau shape: every row's LHS arity must equal the
    /// CFD's LHS arity, and every `∈ {…}` disjunction must be
    /// non-empty. Detection engines and [`revival_repair`]'s passes run
    /// this up front so a malformed pattern (e.g. a hand-built CFD that
    /// bypassed [`Cfd::new`]) yields [`Error::MalformedPattern`] instead
    /// of aborting a sharded scan mid-flight.
    pub fn validate(&self) -> Result<()> {
        let malformed = |reason: String| Error::MalformedPattern {
            constraint: format!("{}([..] -> [..])", self.relation),
            reason,
        };
        for (i, row) in self.tableau.iter().enumerate() {
            if row.lhs.len() != self.lhs.len() {
                return Err(malformed(format!(
                    "tableau row {i} has arity {} but the LHS has {} attribute(s)",
                    row.lhs.len(),
                    self.lhs.len()
                )));
            }
            for (pos, p) in row.lhs.iter().chain(std::iter::once(&row.rhs)).enumerate() {
                if matches!(p, PatternValue::OneOf(vs) if vs.is_empty()) {
                    return Err(malformed(format!(
                        "tableau row {i}, position {pos}: empty disjunction matches nothing"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The classical FD obtained by dropping all patterns.
    pub fn embedded_fd(&self) -> Fd {
        Fd::from_ids(self.relation.clone(), self.lhs.clone(), vec![self.rhs])
    }

    /// A CFD expressing a plain FD (single all-wildcard row).
    pub fn from_fd(schema: &Schema, lhs: &[&str], rhs: &str) -> Result<Cfd> {
        let row = PatternRow::all_wildcards(lhs.len());
        Cfd::new(schema, lhs, rhs, vec![row])
    }

    /// Tableau rows whose RHS is a constant (checkable per tuple).
    pub fn constant_rows(&self) -> impl Iterator<Item = &PatternRow> {
        self.tableau.iter().filter(|r| r.is_constant_row())
    }

    /// Tableau rows whose RHS is `_` (need tuple pairs to violate).
    pub fn variable_rows(&self) -> impl Iterator<Item = &PatternRow> {
        self.tableau.iter().filter(|r| !r.is_constant_row())
    }

    /// Is this CFD a plain FD (every tableau row all-wildcard)?
    pub fn is_plain_fd(&self) -> bool {
        self.tableau.iter().all(PatternRow::is_embedded_fd_row)
    }

    /// Does a single tuple violate *this specific* tableau row? True
    /// iff the row is constant-style (RHS restricts values), its LHS
    /// patterns all match, and its RHS pattern fails.
    pub fn violates_constant_row(&self, row: &[Value], tp: &PatternRow) -> bool {
        !tp.rhs.is_wildcard()
            && tp.lhs.iter().zip(&self.lhs).all(|(p, &a)| p.matches(&row[a]))
            && !tp.rhs.matches(&row[self.rhs])
    }

    /// Does a single tuple violate some constant-style row (any row
    /// whose RHS pattern restricts values: `= c`, `≠ c`, or `∈ {…}`)?
    /// Returns the first offending tableau-row index.
    pub fn constant_violation(&self, row: &[Value]) -> Option<usize> {
        self.tableau.iter().position(|tp| self.violates_constant_row(row, tp))
    }

    /// Do two tuples that agree on the LHS violate some variable row?
    ///
    /// Precondition: callers normally ensure `t1[lhs] == t2[lhs]`; the
    /// check is re-verified here for safety.
    pub fn pair_violation(&self, t1: &[Value], t2: &[Value]) -> Option<usize> {
        let l1: Vec<&Value> = self.lhs.iter().map(|&a| &t1[a]).collect();
        let agree = self.lhs.iter().all(|&a| t1[a] == t2[a]);
        if !agree {
            return None;
        }
        if t1[self.rhs] == t2[self.rhs] {
            return None;
        }
        for (i, tp) in self.tableau.iter().enumerate() {
            if tp.rhs.is_wildcard() && tp.lhs.iter().zip(&l1).all(|(p, v)| p.matches(v)) {
                return Some(i);
            }
        }
        None
    }

    /// Full satisfaction check of a table (O(n) with hashing on LHS).
    ///
    /// Returns `true` iff no tuple or tuple pair violates this CFD.
    /// Detection with per-violation reporting lives in `revival-detect`;
    /// this is the oracle used in tests and by repair verification.
    pub fn satisfied_by(&self, table: &Table) -> bool {
        // Constant rows: single scan.
        for (_, row) in table.rows() {
            if self.constant_violation(&row).is_some() {
                return false;
            }
        }
        // Variable rows: group by LHS, then check RHS agreement among
        // tuples matching each variable pattern row.
        if self.variable_rows().next().is_none() {
            return true;
        }
        let mut per_row_groups: Vec<HashMap<Vec<Value>, Value>> =
            vec![HashMap::new(); self.tableau.len()];
        for (_, row) in table.rows() {
            let key: Vec<Value> = self.lhs.iter().map(|&a| row[a].clone()).collect();
            for (i, tp) in self.tableau.iter().enumerate() {
                if !tp.rhs.is_wildcard() {
                    continue;
                }
                if tp.lhs.iter().zip(&key).all(|(p, v)| p.matches(v)) {
                    match per_row_groups[i].get(&key) {
                        Some(prev) => {
                            if *prev != row[self.rhs] {
                                return false;
                            }
                        }
                        None => {
                            per_row_groups[i].insert(key.clone(), row[self.rhs].clone());
                        }
                    }
                }
            }
        }
        true
    }

    /// Merge another CFD's tableau into this one if both share the same
    /// embedded FD. Returns `false` (and leaves `self` unchanged) when
    /// the embedded FDs differ.
    pub fn merge(&mut self, other: &Cfd) -> bool {
        if self.relation != other.relation || self.lhs != other.lhs || self.rhs != other.rhs {
            return false;
        }
        for row in &other.tableau {
            if !self.tableau.contains(row) {
                self.tableau.push(row.clone());
            }
        }
        true
    }

    /// Drop tableau rows subsumed by other rows in the same CFD.
    pub fn prune_subsumed_rows(&mut self) {
        let rows = std::mem::take(&mut self.tableau);
        let mut kept: Vec<PatternRow> = Vec::with_capacity(rows.len());
        for (i, r) in rows.iter().enumerate() {
            let subsumed = rows
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.subsumes(r) && !(r.subsumes(other) && j > i));
            if !subsumed {
                kept.push(r.clone());
            }
        }
        self.tableau = kept;
    }

    /// Human-readable form using a schema for names — rendered in the
    /// *surface syntax* (one line per tableau row), so the output
    /// re-parses through [`crate::parser::parse_cfds`] to an equivalent
    /// CFD (rows of a multi-row tableau re-merge by embedded FD). This
    /// is load-bearing for `semandaq discover --emit`: a mined suite is
    /// emitted via this rendering and read back by `detect --cfds`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Cfd, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", crate::parser::cfd_to_text(self.0, self.1).trim_end())
            }
        }
        D(self, schema)
    }

    /// One tableau row in surface syntax — always a single line, so
    /// diagnostics that embed a CFD in a sentence (violation
    /// descriptions) stay one-line even for multi-row merged tableaux,
    /// and point at exactly the row that was violated.
    pub fn display_row<'a>(&'a self, schema: &'a Schema, row: usize) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Cfd, &'a Schema, usize);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", crate::parser::cfd_row_to_text(self.0, self.1, self.2))
            }
        }
        D(self, schema, row)
    }
}

/// Group a list of normal-form CFDs by embedded FD, merging tableaux.
/// This is the "merged tableau" preprocessing that makes batch detection
/// cost independent of how the input suite splits its pattern rows.
pub fn merge_by_embedded_fd(cfds: &[Cfd]) -> Vec<Cfd> {
    merge_by_embedded_fd_mapped(cfds).cfds
}

/// A merged suite that remembers where every tableau row came from, so
/// engine-level merged detection can map violation indices back to the
/// caller's original suite exactly.
pub struct MergedSuite {
    /// One CFD per embedded FD, tableaux unioned (duplicate rows kept
    /// once, like [`Cfd::merge`]).
    pub cfds: Vec<Cfd>,
    /// `provenance[m][j]` lists every `(original_cfd, original_row)`
    /// that contributed merged CFD `m`'s tableau row `j`. A row shared
    /// verbatim by several original CFDs (the deduplicated case) carries
    /// one entry per source; rows of one original CFD keep their
    /// original relative order within the merged tableau.
    pub provenance: Vec<Vec<Vec<(usize, usize)>>>,
}

/// [`merge_by_embedded_fd`] with provenance — the engine layer's merged
/// detection runs the merged suite, then uses the row map to report
/// against the original one.
pub fn merge_by_embedded_fd_mapped(cfds: &[Cfd]) -> MergedSuite {
    let mut out: Vec<Cfd> = Vec::new();
    let mut provenance: Vec<Vec<Vec<(usize, usize)>>> = Vec::new();
    for (ci, cfd) in cfds.iter().enumerate() {
        let m = match out
            .iter()
            .position(|c| c.relation == cfd.relation && c.lhs == cfd.lhs && c.rhs == cfd.rhs)
        {
            Some(m) => m,
            None => {
                out.push(Cfd { tableau: Vec::new(), ..cfd.clone() });
                provenance.push(Vec::new());
                out.len() - 1
            }
        };
        for (ri, row) in cfd.tableau.iter().enumerate() {
            match out[m].tableau.iter().position(|r| r == row) {
                Some(j) => provenance[m][j].push((ci, ri)),
                None => {
                    out[m].tableau.push(row.clone());
                    provenance[m].push(vec![(ci, ri)]);
                }
            }
        }
    }
    MergedSuite { cfds: out, provenance }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternValue;
    use revival_relation::Type;

    fn schema() -> Schema {
        Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("zip", Type::Str)
            .attr("street", Type::Str)
            .attr("city", Type::Str)
            .build()
    }

    fn uk_cfd(s: &Schema) -> Cfd {
        // customer([cc='44', zip] -> [street])
        Cfd::new(
            s,
            &["cc", "zip"],
            "street",
            vec![PatternRow::new(
                vec![PatternValue::constant("44"), PatternValue::Wildcard],
                PatternValue::Wildcard,
            )],
        )
        .unwrap()
    }

    fn city_cfd(s: &Schema) -> Cfd {
        // customer([cc='01', zip] -> [city='mh']) — constant CFD
        Cfd::new(
            s,
            &["cc", "zip"],
            "city",
            vec![PatternRow::new(
                vec![PatternValue::constant("01"), PatternValue::constant("07974")],
                PatternValue::constant("mh"),
            )],
        )
        .unwrap()
    }

    fn table(rows: &[(&str, &str, &str, &str)]) -> Table {
        let mut t = Table::new(schema());
        for (cc, zip, street, city) in rows {
            t.push(vec![(*cc).into(), (*zip).into(), (*street).into(), (*city).into()]).unwrap();
        }
        t
    }

    #[test]
    fn variable_cfd_satisfaction() {
        let s = schema();
        let cfd = uk_cfd(&s);
        let good = table(&[
            ("44", "EH8", "Crichton", "edi"),
            ("44", "EH8", "Crichton", "edi"),
            ("01", "EH8", "Different", "nyc"), // cc != 44 → pattern does not apply
        ]);
        assert!(cfd.satisfied_by(&good));
        let bad = table(&[("44", "EH8", "Crichton", "edi"), ("44", "EH8", "Mayfield", "edi")]);
        assert!(!cfd.satisfied_by(&bad));
    }

    #[test]
    fn constant_cfd_satisfaction() {
        let s = schema();
        let cfd = city_cfd(&s);
        let good = table(&[("01", "07974", "MtnAve", "mh"), ("01", "10001", "5thAve", "nyc")]);
        assert!(cfd.satisfied_by(&good));
        let bad = table(&[("01", "07974", "MtnAve", "nyc")]);
        assert!(!cfd.satisfied_by(&bad));
        assert_eq!(cfd.constant_violation(&bad.rows().next().unwrap().1), Some(0));
    }

    #[test]
    fn plain_fd_via_cfd() {
        let s = schema();
        let cfd = Cfd::from_fd(&s, &["zip"], "street").unwrap();
        assert!(cfd.is_plain_fd());
        let bad = table(&[
            ("44", "EH8", "Crichton", "edi"),
            ("01", "EH8", "Mayfield", "edi"), // same zip, diff street → FD broken
        ]);
        assert!(!cfd.satisfied_by(&bad));
    }

    #[test]
    fn cfd_weaker_than_fd() {
        // Classic tutorial point: the CFD restricted to cc='44' tolerates
        // conflicts among cc='01' tuples that the plain FD rejects.
        let s = schema();
        let t = table(&[("01", "EH8", "Crichton", "x"), ("01", "EH8", "Mayfield", "x")]);
        assert!(uk_cfd(&s).satisfied_by(&t));
        assert!(!Cfd::from_fd(&s, &["cc", "zip"], "street").unwrap().satisfied_by(&t));
    }

    #[test]
    fn pair_violation_detects() {
        let s = schema();
        let cfd = uk_cfd(&s);
        let t1 = vec![
            Value::from("44"),
            Value::from("EH8"),
            Value::from("Crichton"),
            Value::from("edi"),
        ];
        let t2 = vec![
            Value::from("44"),
            Value::from("EH8"),
            Value::from("Mayfield"),
            Value::from("edi"),
        ];
        assert_eq!(cfd.pair_violation(&t1, &t2), Some(0));
        // Agreeing RHS → no violation.
        assert_eq!(cfd.pair_violation(&t1, &t1), None);
        // Different LHS → no violation.
        let t3 =
            vec![Value::from("44"), Value::from("G1"), Value::from("Other"), Value::from("gla")];
        assert_eq!(cfd.pair_violation(&t1, &t3), None);
    }

    #[test]
    fn merge_and_prune() {
        let s = schema();
        let mut a = uk_cfd(&s);
        let b = Cfd::new(&s, &["cc", "zip"], "street", vec![PatternRow::all_wildcards(2)]).unwrap();
        assert!(a.merge(&b));
        assert_eq!(a.tableau.len(), 2);
        // The all-wildcard row subsumes the cc='44' row.
        a.prune_subsumed_rows();
        assert_eq!(a.tableau.len(), 1);
        assert!(a.tableau[0].is_embedded_fd_row());
        // Different embedded FD → merge refuses.
        let c = city_cfd(&s);
        assert!(!a.merge(&c));
    }

    #[test]
    fn merge_by_embedded_fd_groups() {
        let s = schema();
        let list = vec![uk_cfd(&s), uk_cfd(&s), city_cfd(&s)];
        let merged = merge_by_embedded_fd(&list);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].tableau.len(), 1); // duplicate row deduped
    }

    #[test]
    fn mapped_merge_tracks_all_row_sources() {
        let s = schema();
        // Two identical CFDs plus a distinct one: the shared row must
        // remember both sources, so merged detection can report both.
        let list = vec![uk_cfd(&s), uk_cfd(&s), city_cfd(&s)];
        let merged = merge_by_embedded_fd_mapped(&list);
        assert_eq!(merged.cfds.len(), 2);
        assert_eq!(merged.cfds[0].tableau.len(), 1);
        assert_eq!(merged.provenance[0][0], vec![(0, 0), (1, 0)]);
        assert_eq!(merged.provenance[1][0], vec![(2, 0)]);
        // Distinct rows of one embedded FD keep their original order.
        let mut a = uk_cfd(&s);
        let b = Cfd::new(&s, &["cc", "zip"], "street", vec![PatternRow::all_wildcards(2)]).unwrap();
        let _ = &mut a;
        let merged = merge_by_embedded_fd_mapped(&[a, b]);
        assert_eq!(merged.cfds.len(), 1);
        assert_eq!(merged.cfds[0].tableau.len(), 2);
        assert_eq!(merged.provenance[0][1], vec![(1, 0)]);
    }

    #[test]
    fn violates_constant_row_is_per_row() {
        let s = schema();
        let cfd = city_cfd(&s);
        let bad = table(&[("01", "07974", "MtnAve", "nyc")]);
        let row = bad.rows().next().unwrap().1;
        assert!(cfd.violates_constant_row(&row, &cfd.tableau[0]));
        let good = table(&[("01", "07974", "MtnAve", "mh")]);
        assert!(!cfd.violates_constant_row(&good.rows().next().unwrap().1, &cfd.tableau[0]));
        // Wildcard-RHS rows never count as constant violations.
        let var = uk_cfd(&s);
        assert!(!var.violates_constant_row(&row, &var.tableau[0]));
    }

    #[test]
    fn display_cfd_reparses() {
        let s = schema();
        let text = uk_cfd(&s).display(&s).to_string();
        assert_eq!(text, "customer([cc='44', zip] -> [street])");
        // display ∘ parse = id — single-row case parses back exactly.
        let back = crate::parser::parse_cfds(&text, &s).unwrap();
        assert_eq!(back, vec![uk_cfd(&s)]);
        // A multi-row tableau renders one line per row; parsing yields
        // one CFD per line which re-merge to the original.
        let mut multi = uk_cfd(&s);
        assert!(multi.merge(
            &Cfd::new(&s, &["cc", "zip"], "street", vec![PatternRow::all_wildcards(2)]).unwrap()
        ));
        let text = multi.display(&s).to_string();
        assert_eq!(text.lines().count(), 2);
        let merged = merge_by_embedded_fd(&crate::parser::parse_cfds(&text, &s).unwrap());
        assert_eq!(merged, vec![multi]);
    }

    #[test]
    fn malformed_tableaux_are_typed_errors() {
        let s = schema();
        // Row arity ≠ LHS arity → Cfd::new refuses instead of panicking.
        let bad_arity = Cfd::new(
            &s,
            &["cc", "zip"],
            "street",
            vec![PatternRow::new(vec![PatternValue::constant("44")], PatternValue::Wildcard)],
        );
        assert!(matches!(bad_arity, Err(Error::MalformedPattern { .. })), "{bad_arity:?}");
        // A hand-built CFD that bypassed the constructor fails validate().
        let mut sneaky = uk_cfd(&s);
        sneaky.tableau.push(PatternRow::new(vec![], PatternValue::Wildcard));
        assert!(matches!(sneaky.validate(), Err(Error::MalformedPattern { .. })));
        let mut empty_one_of = uk_cfd(&s);
        empty_one_of.tableau[0].rhs = PatternValue::OneOf(vec![]);
        assert!(matches!(empty_one_of.validate(), Err(Error::MalformedPattern { .. })));
        assert!(uk_cfd(&s).validate().is_ok());
    }

    #[test]
    fn empty_table_satisfies_everything() {
        let s = schema();
        let t = Table::new(s.clone());
        assert!(uk_cfd(&s).satisfied_by(&t));
        assert!(city_cfd(&s).satisfied_by(&t));
    }
}
