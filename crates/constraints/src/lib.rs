//! # revival-constraints
//!
//! The constraint formalisms at the heart of *"A Revival of Integrity
//! Constraints for Data Cleaning"* (Fan, Geerts, Jia — VLDB 2008):
//!
//! * classical **functional dependencies** ([`Fd`]) and **inclusion
//!   dependencies** ([`Ind`]);
//! * **conditional functional dependencies** ([`Cfd`]) — FDs extended
//!   with a pattern tableau of semantically related constants (§3 of the
//!   paper, Fan et al. TODS 2008);
//! * **conditional inclusion dependencies** ([`Cind`]) — INDs holding
//!   only on tuples matching patterns (Bravo, Fan, Ma — VLDB 2007);
//! * the paper's textual syntax, e.g.
//!   `customer([cc='44', zip] -> [street])`, parsed by [`parser`];
//! * static analyses from the TODS paper in [`analysis`]:
//!   satisfiability of a CFD set, implication (via the chase), and
//!   minimal-cover computation.
//!
//! ## Example: the paper's running CFDs
//!
//! ```
//! use revival_relation::{Schema, Type};
//! use revival_constraints::parser::parse_cfds;
//!
//! let schema = Schema::builder("customer")
//!     .attr("cc", Type::Str).attr("ac", Type::Str).attr("phn", Type::Str)
//!     .attr("street", Type::Str).attr("city", Type::Str).attr("zip", Type::Str)
//!     .build();
//! let cfds = parse_cfds(
//!     "customer([cc='44', zip] -> [street])\n\
//!      customer([cc='01', ac='908', phn] -> [street, city='mh', zip])",
//!     &schema,
//! ).unwrap();
//! // The second line normalises into three normal-form CFDs (one per RHS attr).
//! assert_eq!(cfds.len(), 4);
//! ```

pub mod analysis;
pub mod cfd;
pub mod cind;
pub mod fd;
pub mod ind;
pub mod parser;
pub mod pattern;

pub use cfd::Cfd;
pub use cind::Cind;
pub use fd::Fd;
pub use ind::Ind;
pub use pattern::{PatternRow, PatternValue, SymPred};
