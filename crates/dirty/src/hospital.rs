//! The HOSP-style scenario — the second canonical dataset of the CFD
//! literature (US hospital-quality data; used in the experiments of
//! \[8\] and most follow-up papers).
//!
//! Schema (trimmed to the attributes the published suites constrain):
//! `hospital(provider, hname, city, state, zip, county, measure_code,
//! measure_name)`. The natural dependencies:
//!
//! * `provider → hname, city, state, zip` — provider number identifies
//!   the hospital;
//! * `zip → state` — a zip lies in one state;
//! * `measure_code → measure_name` — codes have canonical names;
//! * constant rows pinning well-known `(state, city)` pairs.

use crate::zipf::Zipf;
use rand::prelude::*;
use rand::rngs::StdRng;
use revival_constraints::parser::parse_cfds;
use revival_constraints::Cfd;
use revival_relation::{Schema, Table, Type, Value};

/// Attribute positions, for readable indexing.
pub mod attrs {
    pub const PROVIDER: usize = 0;
    pub const HNAME: usize = 1;
    pub const CITY: usize = 2;
    pub const STATE: usize = 3;
    pub const ZIP: usize = 4;
    pub const COUNTY: usize = 5;
    pub const MEASURE_CODE: usize = 6;
    pub const MEASURE_NAME: usize = 7;
}

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct HospitalConfig {
    /// Number of rows (one row = one measure report of one provider).
    pub rows: usize,
    /// Number of distinct providers.
    pub providers: usize,
    /// Number of distinct measures.
    pub measures: usize,
    /// Zipf exponent for provider popularity.
    pub skew: f64,
    pub seed: u64,
}

impl Default for HospitalConfig {
    fn default() -> Self {
        HospitalConfig { rows: 1000, providers: 100, measures: 30, skew: 0.7, seed: 42 }
    }
}

/// Generated instance.
pub struct HospitalData {
    pub table: Table,
    pub schema: Schema,
}

/// The hospital schema.
pub fn schema() -> Schema {
    Schema::builder("hospital")
        .attr("provider", Type::Str)
        .attr("hname", Type::Str)
        .attr("city", Type::Str)
        .attr("state", Type::Str)
        .attr("zip", Type::Str)
        .attr("county", Type::Str)
        .attr("measure_code", Type::Str)
        .attr("measure_name", Type::Str)
        .build()
}

/// The standard HOSP-style CFD suite.
pub fn standard_cfds(schema: &Schema) -> Vec<Cfd> {
    parse_cfds(
        "hospital([provider] -> [hname, city, state, zip])\n\
         hospital([zip] -> [state])\n\
         hospital([measure_code] -> [measure_name])\n\
         hospital([city='boston'] -> [state='ma'])\n\
         hospital([city='birmingham'] -> [state='al'])",
        schema,
    )
    .expect("hospital suite parses")
}

const CITIES: &[(&str, &str)] = &[
    ("boston", "ma"),
    ("birmingham", "al"),
    ("dothan", "al"),
    ("opp", "al"),
    ("springfield", "ma"),
    ("worcester", "ma"),
    ("hartford", "ct"),
    ("stamford", "ct"),
    ("albany", "ny"),
    ("buffalo", "ny"),
];

const MEASURE_PREFIXES: &[&str] = &["ami", "hf", "pn", "scip", "ed", "op"];

/// Generate a clean instance (satisfies [`standard_cfds`] by
/// construction).
pub fn generate(cfg: &HospitalConfig) -> HospitalData {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Provider master records.
    struct Provider {
        id: String,
        name: String,
        city: &'static str,
        state: &'static str,
        zip: String,
        county: String,
    }
    let mut providers = Vec::with_capacity(cfg.providers);
    for p in 0..cfg.providers {
        let (city, state) = CITIES[rng.gen_range(0..CITIES.len())];
        providers.push(Provider {
            id: format!("P{p:05}"),
            name: format!("{} general hospital {p}", city),
            city,
            state,
            // One zip per provider, allocated per state so zip → state
            // holds by construction.
            zip: format!("{}{:03}", state_prefix(state), p),
            county: format!("{} county", city),
        });
    }
    // Measure master records.
    let measures: Vec<(String, String)> = (0..cfg.measures)
        .map(|m| {
            let code = format!("{}-{m:03}", MEASURE_PREFIXES[m % MEASURE_PREFIXES.len()]);
            (code.clone(), format!("measure {code} long name"))
        })
        .collect();

    let provider_dist = Zipf::new(cfg.providers, cfg.skew);
    let mut table = Table::with_capacity(schema.clone(), cfg.rows);
    for _ in 0..cfg.rows {
        let p = &providers[provider_dist.sample(&mut rng)];
        let (code, name) = &measures[rng.gen_range(0..measures.len())];
        table.push_unchecked(vec![
            Value::str(&p.id),
            Value::str(&p.name),
            p.city.into(),
            p.state.into(),
            Value::str(&p.zip),
            Value::str(&p.county),
            Value::str(code),
            Value::str(name),
        ]);
    }
    HospitalData { table, schema }
}

fn state_prefix(state: &str) -> u32 {
    match state {
        "ma" => 2,
        "ct" => 6,
        "ny" => 1,
        _ => 3, // al
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_data_satisfies_suite() {
        let data = generate(&HospitalConfig { rows: 800, ..Default::default() });
        for cfd in standard_cfds(&data.schema) {
            assert!(cfd.satisfied_by(&data.table), "violated: {}", cfd.display(&data.schema));
        }
    }

    #[test]
    fn row_and_domain_counts() {
        let cfg = HospitalConfig { rows: 500, providers: 40, measures: 10, ..Default::default() };
        let data = generate(&cfg);
        assert_eq!(data.table.len(), 500);
        let mut provs: Vec<Value> =
            data.table.rows().map(|(_, r)| r[attrs::PROVIDER].clone()).collect();
        provs.sort();
        provs.dedup();
        assert!(provs.len() <= 40);
        assert!(provs.len() > 10, "skewed but not degenerate");
    }

    #[test]
    fn noise_then_repair_roundtrip() {
        use crate::noise::{inject, NoiseConfig};
        let data = generate(&HospitalConfig { rows: 600, ..Default::default() });
        let suite = standard_cfds(&data.schema);
        let ds = inject(
            &data.table,
            &NoiseConfig::new(0.04, vec![attrs::STATE, attrs::MEASURE_NAME, attrs::HNAME], 9),
        );
        let n = revival_detect::native::count_violating_tuples(&ds.dirty, &suite);
        assert!(n > 0, "noise must trip the hospital suite");
    }

    #[test]
    fn deterministic() {
        let cfg = HospitalConfig { seed: 11, ..Default::default() };
        assert_eq!(generate(&cfg).table.diff_cells(&generate(&cfg).table), 0);
    }
}
