//! Card/billing generator for the object-identification experiments
//! (§4 of the paper, experiment E8).
//!
//! Schemas follow the paper exactly:
//!
//! * `card(cno, ssn, fname, lname, addr, phn, email, ctype)`
//! * `billing(cno, fname, lname, addr, phn, email, item, price)`
//!
//! Each person gets one card tuple with canonical attribute values and
//! 1–3 billing tuples whose holder fields are *representation variants*:
//! address abbreviations (`Avenue` ↔ `Ave`), first-name diminutives
//! (`robert` ↔ `bob`), case changes and typos. Ground truth is the set
//! of `(card, billing)` pairs referring to the same person — exactly
//! what match quality is scored against.

use crate::noise::typo;
use rand::prelude::*;
use rand::rngs::StdRng;
use revival_relation::{Schema, Table, TupleId, Type, Value};
use std::collections::BTreeSet;

/// Attribute positions shared by both relations for the holder fields.
pub mod attrs {
    pub const CARD_CNO: usize = 0;
    pub const CARD_FN: usize = 2;
    pub const CARD_LN: usize = 3;
    pub const CARD_ADDR: usize = 4;
    pub const CARD_PHN: usize = 5;
    pub const CARD_EMAIL: usize = 6;
    pub const BILL_CNO: usize = 0;
    pub const BILL_FN: usize = 1;
    pub const BILL_LN: usize = 2;
    pub const BILL_ADDR: usize = 3;
    pub const BILL_PHN: usize = 4;
    pub const BILL_EMAIL: usize = 5;
}

/// Configuration.
#[derive(Clone, Debug)]
pub struct CardBillingConfig {
    /// Number of distinct persons (card tuples).
    pub persons: usize,
    /// Max billing tuples per person (min 1).
    pub max_billing_per_person: usize,
    /// Probability that a holder field in a billing tuple is a
    /// *representation variant* of the card value (abbreviation,
    /// diminutive, case change).
    pub variation_rate: f64,
    /// Probability of an outright typo in a holder field.
    pub typo_rate: f64,
    pub seed: u64,
}

impl Default for CardBillingConfig {
    fn default() -> Self {
        CardBillingConfig {
            persons: 500,
            max_billing_per_person: 3,
            variation_rate: 0.3,
            typo_rate: 0.05,
            seed: 42,
        }
    }
}

/// Generated card/billing instance with ground truth.
pub struct CardBillingData {
    pub card: Table,
    pub billing: Table,
    pub card_schema: Schema,
    pub billing_schema: Schema,
    /// Ground-truth matches: `(card tuple, billing tuple)`.
    pub true_pairs: BTreeSet<(TupleId, TupleId)>,
}

/// `card` schema per the paper.
pub fn card_schema() -> Schema {
    Schema::builder("card")
        .attr("cno", Type::Str)
        .attr("ssn", Type::Str)
        .attr("fname", Type::Str)
        .attr("lname", Type::Str)
        .attr("addr", Type::Str)
        .attr("phn", Type::Str)
        .attr("email", Type::Str)
        .attr("ctype", Type::Str)
        .build()
}

/// `billing` schema per the paper.
pub fn billing_schema() -> Schema {
    Schema::builder("billing")
        .attr("cno", Type::Str)
        .attr("fname", Type::Str)
        .attr("lname", Type::Str)
        .attr("addr", Type::Str)
        .attr("phn", Type::Str)
        .attr("email", Type::Str)
        .attr("item", Type::Str)
        .attr("price", Type::Int)
        .build()
}

const FIRST_NAMES: &[(&str, &str)] = &[
    ("robert", "bob"),
    ("william", "bill"),
    ("elizabeth", "liz"),
    ("katherine", "kate"),
    ("michael", "mike"),
    ("jennifer", "jen"),
    ("christopher", "chris"),
    ("patricia", "pat"),
    ("james", "jim"),
    ("margaret", "peggy"),
    ("richard", "dick"),
    ("susan", "sue"),
];

const LAST_NAMES: &[&str] = &[
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller", "davis", "wilson",
    "anderson", "taylor", "moore", "jackson", "martin", "lee", "thompson", "white", "harris",
];

const STREETS: &[(&str, &str)] = &[
    ("Mountain Avenue", "Mountain Ave"),
    ("Church Street", "Church St"),
    ("Victoria Road", "Victoria Rd"),
    ("Park Lane", "Park Ln"),
    ("High Street", "High St"),
    ("Station Road", "Station Rd"),
    ("Green Boulevard", "Green Blvd"),
    ("Mill Drive", "Mill Dr"),
];

const ITEMS: &[&str] = &["books", "groceries", "fuel", "travel", "dining", "electronics"];

/// Generate per `cfg`.
pub fn generate(cfg: &CardBillingConfig) -> CardBillingData {
    let card_schema = card_schema();
    let billing_schema = billing_schema();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut card = Table::with_capacity(card_schema.clone(), cfg.persons);
    let mut billing = Table::with_capacity(billing_schema.clone(), cfg.persons * 2);
    let mut true_pairs = BTreeSet::new();

    for p in 0..cfg.persons {
        let (fn_full, fn_short) = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let ln = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
        let (street_full, street_abbr) = STREETS[rng.gen_range(0..STREETS.len())];
        let house = rng.gen_range(1..200);
        let addr_full = format!("{house} {street_full}");
        let addr_abbr = format!("{house} {street_abbr}");
        let phn = format!("{:03}-{:04}", rng.gen_range(200..999), rng.gen_range(0..10_000));
        let email = format!("{fn_full}.{ln}{p}@example.com");
        let cno = format!("C{p:07}");
        let ssn = format!("{:09}", 100_000_000u64 + p as u64);

        let card_id = card.push_unchecked(vec![
            cno.clone().into(),
            ssn.into(),
            fn_full.into(),
            ln.into(),
            addr_full.clone().into(),
            phn.clone().into(),
            email.clone().into(),
            (if p % 3 == 0 { "gold" } else { "standard" }).into(),
        ]);

        let n_bills = rng.gen_range(1..=cfg.max_billing_per_person.max(1));
        for _ in 0..n_bills {
            // Holder fields start canonical, then get varied/typo'd.
            let mut bfn = Value::from(fn_full);
            let mut bln = Value::from(ln);
            let mut baddr = Value::from(addr_full.as_str());
            let bphn = Value::from(phn.as_str());
            let mut bemail = Value::from(email.as_str());
            if rng.gen_bool(cfg.variation_rate) {
                bfn = Value::from(fn_short); // diminutive
            }
            if rng.gen_bool(cfg.variation_rate) {
                baddr = Value::from(addr_abbr.as_str()); // abbreviation
            }
            if rng.gen_bool(cfg.typo_rate) {
                bln = typo(&bln, &mut rng);
            }
            if rng.gen_bool(cfg.typo_rate) {
                bemail = typo(&bemail, &mut rng);
            }
            let bill_id = billing.push_unchecked(vec![
                cno.clone().into(),
                bfn,
                bln,
                baddr,
                bphn,
                bemail,
                Value::from(*ITEMS.choose(&mut rng).unwrap()),
                Value::Int(rng.gen_range(5..500)),
            ]);
            true_pairs.insert((card_id, bill_id));
        }
    }
    CardBillingData { card, billing, card_schema, billing_schema, true_pairs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_ground_truth() {
        let data = generate(&CardBillingConfig { persons: 100, ..Default::default() });
        assert_eq!(data.card.len(), 100);
        assert!(data.billing.len() >= 100);
        assert_eq!(data.true_pairs.len(), data.billing.len());
        // Every true pair shares the card number (the generator's link).
        for &(c, b) in &data.true_pairs {
            assert_eq!(
                data.card.get(c).unwrap()[attrs::CARD_CNO],
                data.billing.get(b).unwrap()[attrs::BILL_CNO]
            );
        }
    }

    #[test]
    fn variations_present_at_high_rate() {
        let data = generate(&CardBillingConfig {
            persons: 200,
            variation_rate: 0.9,
            typo_rate: 0.0,
            ..Default::default()
        });
        let mut varied = 0;
        for &(c, b) in &data.true_pairs {
            let card_fn = &data.card.get(c).unwrap()[attrs::CARD_FN];
            let bill_fn = &data.billing.get(b).unwrap()[attrs::BILL_FN];
            if card_fn != bill_fn {
                varied += 1;
            }
        }
        assert!(varied > data.true_pairs.len() / 2, "diminutives should dominate at 90%");
    }

    #[test]
    fn zero_rates_mean_exact_copies() {
        let data = generate(&CardBillingConfig {
            persons: 50,
            variation_rate: 0.0,
            typo_rate: 0.0,
            ..Default::default()
        });
        for &(c, b) in &data.true_pairs {
            let card_row = data.card.get(c).unwrap();
            let bill_row = data.billing.get(b).unwrap();
            assert_eq!(card_row[attrs::CARD_FN], bill_row[attrs::BILL_FN]);
            assert_eq!(card_row[attrs::CARD_ADDR], bill_row[attrs::BILL_ADDR]);
            assert_eq!(card_row[attrs::CARD_EMAIL], bill_row[attrs::BILL_EMAIL]);
        }
    }

    #[test]
    fn deterministic() {
        let cfg = CardBillingConfig { persons: 30, seed: 5, ..Default::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.true_pairs, b.true_pairs);
        assert_eq!(a.billing.diff_cells(&b.billing), 0);
    }
}
