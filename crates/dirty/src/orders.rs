//! Book/CD order generator for the CIND experiments (E7).
//!
//! Matches the paper's §3 example: `book(title, price, format)` and
//! `cd(album, price, genre)`; audio-book CDs must have a matching
//! `book` row with `format='audio'`. The generator emits a configurable
//! fraction of audio-book CDs *without* a witness (the violations).

use rand::prelude::*;
use rand::rngs::StdRng;
use revival_constraints::parser::parse_cinds;
use revival_constraints::Cind;
use revival_relation::{Schema, Table, Type, Value};

/// Configuration for the orders generator.
#[derive(Clone, Debug)]
pub struct OrdersConfig {
    /// Number of CD tuples.
    pub cds: usize,
    /// Number of non-witness book tuples (catalog padding).
    pub extra_books: usize,
    /// Fraction of CDs that are audio books (pattern-applicable).
    pub audio_fraction: f64,
    /// Fraction of audio-book CDs lacking a witness (the error rate).
    pub violation_rate: f64,
    pub seed: u64,
}

impl Default for OrdersConfig {
    fn default() -> Self {
        OrdersConfig {
            cds: 1000,
            extra_books: 500,
            audio_fraction: 0.3,
            violation_rate: 0.05,
            seed: 42,
        }
    }
}

/// Generated instance + ground truth.
pub struct OrdersData {
    pub cd: Table,
    pub book: Table,
    pub cd_schema: Schema,
    pub book_schema: Schema,
    /// Number of audio-book CDs generated without a witness.
    pub planted_violations: usize,
}

/// `cd(album, price, genre)`.
pub fn cd_schema() -> Schema {
    Schema::builder("cd")
        .attr("album", Type::Str)
        .attr("price", Type::Int)
        .attr("genre", Type::Str)
        .build()
}

/// `book(title, price, format)`.
pub fn book_schema() -> Schema {
    Schema::builder("book")
        .attr("title", Type::Str)
        .attr("price", Type::Int)
        .attr("format", Type::Str)
        .build()
}

/// The paper's CIND.
pub fn standard_cind(cd: &Schema, book: &Schema) -> Cind {
    parse_cinds(
        "cd(album, price; genre='a-book') <= book(title, price; format='audio')",
        &[cd.clone(), book.clone()],
    )
    .expect("standard cind parses")
    .remove(0)
}

fn title(i: usize) -> String {
    format!("title-{i:06}")
}

/// Generate per `cfg`.
pub fn generate(cfg: &OrdersConfig) -> OrdersData {
    let cd_schema = cd_schema();
    let book_schema = book_schema();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut cd = Table::with_capacity(cd_schema.clone(), cfg.cds);
    let mut book = Table::with_capacity(book_schema.clone(), cfg.extra_books + cfg.cds);
    const GENRES: &[&str] = &["pop", "rock", "jazz", "classical"];
    const FORMATS: &[&str] = &["print", "hardcover", "ebook"];
    let mut planted = 0usize;

    for i in 0..cfg.cds {
        let price = Value::Int(rng.gen_range(5..60));
        if rng.gen_bool(cfg.audio_fraction) {
            let t = title(i);
            let violating = rng.gen_bool(cfg.violation_rate);
            cd.push_unchecked(vec![t.clone().into(), price.clone(), "a-book".into()]);
            if violating {
                planted += 1;
                // Near-miss witness: same title, wrong format — exactly
                // the error the CIND is designed to catch.
                book.push_unchecked(vec![
                    t.into(),
                    price,
                    Value::from(*FORMATS.choose(&mut rng).unwrap()),
                ]);
            } else {
                book.push_unchecked(vec![t.into(), price, "audio".into()]);
            }
        } else {
            cd.push_unchecked(vec![
                title(i).into(),
                price,
                Value::from(*GENRES.choose(&mut rng).unwrap()),
            ]);
        }
    }
    for i in 0..cfg.extra_books {
        book.push_unchecked(vec![
            format!("extra-{i:06}").into(),
            Value::Int(rng.gen_range(5..60)),
            Value::from(*FORMATS.choose(&mut rng).unwrap()),
        ]);
    }
    OrdersData { cd, book, cd_schema, book_schema, planted_violations: planted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_detect::CindDetector;

    #[test]
    fn planted_violations_are_found_exactly() {
        let data = generate(&OrdersConfig { cds: 800, violation_rate: 0.1, ..Default::default() });
        let cind = standard_cind(&data.cd_schema, &data.book_schema);
        let report = CindDetector::detect(&cind, &data.cd, &data.book, 0);
        assert_eq!(report.len(), data.planted_violations);
        assert!(data.planted_violations > 0);
    }

    #[test]
    fn zero_rate_means_satisfied() {
        let data = generate(&OrdersConfig { violation_rate: 0.0, ..Default::default() });
        let cind = standard_cind(&data.cd_schema, &data.book_schema);
        assert!(cind.satisfied_by(&data.cd, &data.book));
    }

    #[test]
    fn deterministic() {
        let cfg = OrdersConfig { seed: 3, ..Default::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.planted_violations, b.planted_violations);
        assert_eq!(a.cd.diff_cells(&b.cd), 0);
    }
}
