//! Controlled noise injection with ground truth.
//!
//! The repair experiments of \[6\] inject errors at a controlled rate into
//! clean data, then score a repair against the original. This module
//! reproduces that protocol: [`inject`] dirties a fraction of cells
//! (typos or domain swaps) and returns a [`DirtyDataset`] carrying the
//! clean original, the dirty copy, and the exact set of modified cells.

use rand::prelude::*;
use rand::rngs::StdRng;
use revival_relation::{Table, TupleId, Value};
use std::collections::{BTreeSet, HashMap};

/// How a cell gets corrupted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseKind {
    /// Replace with another value drawn from the same column (an
    /// "active-domain swap": plausible but wrong).
    DomainSwap,
    /// Apply a small string edit (character substitution/insertion) —
    /// a typo.
    Typo,
}

/// Noise configuration.
#[derive(Clone, Debug)]
pub struct NoiseConfig {
    /// Fraction of *cells among the target attributes* to corrupt
    /// (0.0–1.0).
    pub rate: f64,
    /// Attribute positions eligible for corruption.
    pub attrs: Vec<usize>,
    /// Probability that a corruption is a [`NoiseKind::DomainSwap`]
    /// (vs. a typo).
    pub swap_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl NoiseConfig {
    /// Corrupt `rate` of the cells in `attrs` with default mix.
    pub fn new(rate: f64, attrs: Vec<usize>, seed: u64) -> Self {
        NoiseConfig { rate, attrs, swap_probability: 0.7, seed }
    }
}

/// A dirty instance with its clean origin and ground-truth edits.
pub struct DirtyDataset {
    /// The corrupted table.
    pub dirty: Table,
    /// The clean original.
    pub clean: Table,
    /// Cells that were modified: `(tuple, attr)`, deduplicated.
    pub modified: BTreeSet<(TupleId, usize)>,
}

impl DirtyDataset {
    /// Number of corrupted cells.
    pub fn error_count(&self) -> usize {
        self.modified.len()
    }

    /// Score a repaired table against the clean original, looking only
    /// at the attributes in `attrs` (the repairable ones).
    ///
    /// * **precision** — of the cells the repair *changed* (vs. dirty),
    ///   how many now equal the clean value;
    /// * **recall** — of the cells that were *corrupted*, how many were
    ///   restored to the clean value.
    ///
    /// This is the scoring used in Cong et al. (VLDB 2007), experiment
    /// E4.
    pub fn score_repair(&self, repaired: &Table, attrs: &[usize]) -> RepairScore {
        let mut changed = 0usize;
        let mut changed_correct = 0usize;
        let mut restored = 0usize;
        for (id, dirty_row) in self.dirty.rows() {
            let Ok(rep_row) = repaired.get(id) else { continue };
            let Ok(clean_row) = self.clean.get(id) else { continue };
            for &a in attrs {
                let was_changed = rep_row[a] != dirty_row[a];
                if was_changed {
                    changed += 1;
                    if rep_row[a] == clean_row[a] {
                        changed_correct += 1;
                    }
                }
                if self.modified.contains(&(id, a)) && rep_row[a] == clean_row[a] {
                    restored += 1;
                }
            }
        }
        let corrupted: usize = self.modified.iter().filter(|(_, a)| attrs.contains(a)).count();
        RepairScore {
            precision: if changed == 0 { 1.0 } else { changed_correct as f64 / changed as f64 },
            recall: if corrupted == 0 { 1.0 } else { restored as f64 / corrupted as f64 },
            changed_cells: changed,
            corrupted_cells: corrupted,
        }
    }
}

/// Precision/recall of a repair against ground truth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepairScore {
    pub precision: f64,
    pub recall: f64,
    pub changed_cells: usize,
    pub corrupted_cells: usize,
}

impl RepairScore {
    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Apply a typo to a string value (deterministic given the rng state).
pub fn typo(v: &Value, rng: &mut StdRng) -> Value {
    match v.as_str() {
        Some(s) if !s.is_empty() => {
            let chars: Vec<char> = s.chars().collect();
            let pos = rng.gen_range(0..chars.len());
            let replacement = char::from(b'a' + rng.gen_range(0..26u8));
            let mut out: String = chars[..pos].iter().collect();
            match rng.gen_range(0..3) {
                0 => {
                    // substitute
                    out.push(replacement);
                    out.extend(&chars[pos + 1..]);
                }
                1 => {
                    // insert
                    out.push(replacement);
                    out.extend(&chars[pos..]);
                }
                _ => {
                    // delete (keep at least one char)
                    if chars.len() > 1 {
                        out.extend(&chars[pos + 1..]);
                    } else {
                        out.push(replacement);
                    }
                }
            }
            Value::str(&out)
        }
        _ => match v {
            Value::Int(i) => Value::Int(i + 1),
            Value::Float(f) => Value::Float(f + 1.0),
            other => other.clone(),
        },
    }
}

/// Inject noise into `table` per `cfg`. The returned dirty table keeps
/// the same tuple ids as the input.
pub fn inject(table: &Table, cfg: &NoiseConfig) -> DirtyDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let clean = table.clone();
    let mut dirty = table.clone();

    // Column pools for domain swaps.
    let mut pools: HashMap<usize, Vec<Value>> = HashMap::new();
    for &a in &cfg.attrs {
        let mut pool: Vec<Value> = table.rows().map(|(_, r)| r[a].clone()).collect();
        pool.sort();
        pool.dedup();
        pools.insert(a, pool);
    }

    let ids: Vec<TupleId> = table.tuple_ids().collect();
    let total_cells = ids.len() * cfg.attrs.len();
    let n_errors = ((total_cells as f64) * cfg.rate).round() as usize;

    let mut modified = BTreeSet::new();
    let mut guard = 0usize;
    while modified.len() < n_errors && guard < n_errors * 20 + 100 {
        guard += 1;
        let id = ids[rng.gen_range(0..ids.len())];
        let a = cfg.attrs[rng.gen_range(0..cfg.attrs.len())];
        if modified.contains(&(id, a)) {
            continue;
        }
        let current = dirty.get(id).expect("live tuple")[a].clone();
        let new_value = if rng.gen_bool(cfg.swap_probability) {
            let pool = &pools[&a];
            // Draw a different value; fall back to typo for tiny pools.
            let candidates: Vec<&Value> = pool.iter().filter(|v| **v != current).collect();
            match candidates.choose(&mut rng) {
                Some(v) => (*v).clone(),
                None => typo(&current, &mut rng),
            }
        } else {
            typo(&current, &mut rng)
        };
        if new_value == current {
            continue;
        }
        dirty.set_cell(id, a, new_value).expect("cell write");
        modified.insert((id, a));
    }
    DirtyDataset { dirty, clean, modified }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::customer::{attrs, generate, standard_cfds, CustomerConfig};

    fn dataset(rate: f64) -> DirtyDataset {
        let data = generate(&CustomerConfig { rows: 400, ..Default::default() });
        inject(
            &data.table,
            &NoiseConfig::new(rate, vec![attrs::STREET, attrs::CITY, attrs::ZIP], 7),
        )
    }

    #[test]
    fn error_count_tracks_rate() {
        let ds = dataset(0.05);
        let expected = (400.0 * 3.0 * 0.05) as usize;
        assert!(
            (ds.error_count() as i64 - expected as i64).unsigned_abs() as usize <= expected / 5 + 2,
            "got {} errors, expected ≈{expected}",
            ds.error_count()
        );
    }

    #[test]
    fn modified_cells_differ_from_clean() {
        let ds = dataset(0.03);
        for &(id, a) in &ds.modified {
            assert_ne!(ds.dirty.get(id).unwrap()[a], ds.clean.get(id).unwrap()[a]);
        }
        // And unmodified cells agree.
        assert_eq!(ds.dirty.diff_cells(&ds.clean), ds.error_count());
    }

    #[test]
    fn noise_creates_detectable_violations() {
        let data = generate(&CustomerConfig { rows: 600, ..Default::default() });
        let cfds = standard_cfds(&data.schema);
        let ds = inject(&data.table, &NoiseConfig::new(0.05, vec![attrs::STREET, attrs::CITY], 11));
        let n = revival_detect::native::count_violating_tuples(&ds.dirty, &cfds);
        assert!(n > 0, "5% noise should trip the suite");
    }

    #[test]
    fn perfect_repair_scores_perfectly() {
        let ds = dataset(0.05);
        let score = ds.score_repair(&ds.clean, &[attrs::STREET, attrs::CITY, attrs::ZIP]);
        assert_eq!(score.precision, 1.0);
        assert_eq!(score.recall, 1.0);
        assert_eq!(score.f1(), 1.0);
    }

    #[test]
    fn null_repair_scores_zero_recall() {
        let ds = dataset(0.05);
        let score = ds.score_repair(&ds.dirty, &[attrs::STREET, attrs::CITY, attrs::ZIP]);
        assert_eq!(score.recall, 0.0);
        assert_eq!(score.changed_cells, 0);
        // Precision of an empty change set is defined as 1.
        assert_eq!(score.precision, 1.0);
    }

    #[test]
    fn typo_changes_strings() {
        let mut rng = StdRng::seed_from_u64(1);
        for s in ["hello", "x", "longer street name"] {
            let v = Value::from(s);
            let t = typo(&v, &mut rng);
            assert_ne!(t, v, "typo must alter `{s}`");
        }
        assert_eq!(typo(&Value::Int(3), &mut rng), Value::Int(4));
    }

    #[test]
    fn deterministic_by_seed() {
        let a = dataset(0.04);
        let b = dataset(0.04);
        assert_eq!(a.modified, b.modified);
        assert_eq!(a.dirty.diff_cells(&b.dirty), 0);
    }
}
