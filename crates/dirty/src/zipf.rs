//! A small Zipf(θ) sampler over `{0, …, n-1}`.
//!
//! Real customer data has heavily skewed group sizes (a few zips hold
//! many customers); the detection/repair experiments in \[6\]/\[8\] inherit
//! that skew. We sample ranks from a precomputed CDF — O(n) setup,
//! O(log n) per draw.

use rand::Rng;

/// Zipf-distributed sampler: rank `k` has probability ∝ `1/(k+1)^theta`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `theta ≥ 0`
    /// (`theta = 0` is uniform).
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (n ≥ 1 by construction); included for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c} too far from uniform");
        }
    }

    #[test]
    fn skewed_when_theta_positive() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[9]);
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
