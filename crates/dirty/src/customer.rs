//! The paper's running `customer` relation and its standard CFD suite.
//!
//! Schema: `customer(cc, ac, phn, name, street, city, zip)` — country
//! code, area code, phone, name, street, city, zip (§3 of the paper and
//! the experiments of \[6\]/\[8\] use exactly this shape).
//!
//! Clean generation draws per-country master maps once —
//! `zip → street`, `(cc, ac) → city` — and then samples tuples through
//! them, so the produced instance *satisfies* [`standard_cfds`] by
//! construction.

use crate::zipf::Zipf;
use rand::prelude::*;
use rand::rngs::StdRng;
use revival_constraints::parser::parse_cfds;
use revival_constraints::Cfd;
use revival_relation::{Schema, Table, Type, Value};
use std::collections::HashMap;

/// Attribute positions in the customer schema, for readable indexing.
pub mod attrs {
    pub const CC: usize = 0;
    pub const AC: usize = 1;
    pub const PHN: usize = 2;
    pub const NAME: usize = 3;
    pub const STREET: usize = 4;
    pub const CITY: usize = 5;
    pub const ZIP: usize = 6;
}

/// Configuration for the customer generator.
#[derive(Clone, Debug)]
pub struct CustomerConfig {
    /// Number of tuples.
    pub rows: usize,
    /// Number of distinct zip codes per country.
    pub zips_per_country: usize,
    /// Number of distinct area codes per country.
    pub acs_per_country: usize,
    /// Zipf exponent for zip popularity (0 = uniform).
    pub zip_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CustomerConfig {
    fn default() -> Self {
        CustomerConfig {
            rows: 1000,
            zips_per_country: 100,
            acs_per_country: 20,
            zip_skew: 0.8,
            seed: 42,
        }
    }
}

/// A generated customer instance plus the master maps that make it clean.
pub struct CustomerData {
    pub table: Table,
    pub schema: Schema,
    /// `(cc, zip) → street` master map.
    pub street_of: HashMap<(String, String), String>,
    /// `(cc, ac) → city` master map.
    pub city_of: HashMap<(String, String), String>,
}

/// The customer schema. `cc` carries its finite domain `{01, 44}` so the
/// static analyses can exploit it.
pub fn schema() -> Schema {
    Schema::builder("customer")
        .attr_in("cc", Type::Str, vec!["01".into(), "44".into()])
        .attr("ac", Type::Str)
        .attr("phn", Type::Str)
        .attr("name", Type::Str)
        .attr("street", Type::Str)
        .attr("city", Type::Str)
        .attr("zip", Type::Str)
        .build()
}

/// The standard CFD suite over `customer` used throughout the
/// experiments — the paper's §3 examples plus their natural companions:
///
/// 1. `([cc='44', zip] -> [street])` — UK: zip determines street;
/// 2. `([cc='01', zip] -> [street])` — US variant;
/// 3. `([cc, ac] -> [city])` — country+area code determine city;
/// 4. `([cc='01', ac='908'] -> [city='mh'])` — constant rule;
/// 5. `([cc='44', ac='131'] -> [city='edi'])` — constant rule.
pub fn standard_cfds(schema: &Schema) -> Vec<Cfd> {
    parse_cfds(
        "customer([cc='44', zip] -> [street])\n\
         customer([cc='01', zip] -> [street])\n\
         customer([cc, ac] -> [city])\n\
         customer([cc='01', ac='908'] -> [city='mh'])\n\
         customer([cc='44', ac='131'] -> [city='edi'])",
        schema,
    )
    .expect("standard suite parses")
}

/// A larger suite used for tableau-size scaling (E2): `extra` additional
/// constant rows `([cc='01', zip=Z] -> [city=C])` drawn from the master
/// maps — all satisfied by clean data.
pub fn scaled_suite(data: &CustomerData, extra: usize) -> Vec<Cfd> {
    let mut text = String::from(
        "customer([cc='44', zip] -> [street])\n\
         customer([cc='01', zip] -> [street])\n\
         customer([cc, ac] -> [city])\n",
    );
    let mut pairs: Vec<(&(String, String), &String)> = data.city_of.iter().collect();
    pairs.sort();
    for ((cc, ac), city) in pairs.into_iter().take(extra) {
        text.push_str(&format!("customer([cc='{cc}', ac='{ac}'] -> [city='{city}'])\n"));
    }
    parse_cfds(&text, &data.schema).expect("scaled suite parses")
}

/// City names drawn per (cc, ac); the two special pairs from the paper
/// get their canonical cities.
fn city_for(cc: &str, ac: &str, rng: &mut StdRng) -> String {
    match (cc, ac) {
        ("01", "908") => "mh".to_string(),
        ("44", "131") => "edi".to_string(),
        _ => {
            const CITIES: &[&str] = &[
                "nyc", "chi", "sfo", "bos", "sea", "lon", "man", "gla", "bri", "lee", "yor", "aber",
            ];
            (*CITIES.choose(rng).unwrap()).to_string()
        }
    }
}

fn street_name(rng: &mut StdRng) -> String {
    const BASES: &[&str] = &[
        "Crichton", "Mayfield", "Mountain", "High", "Church", "Station", "Victoria", "Green",
        "Park", "Mill", "School", "Bridge", "North", "South", "West", "East", "Kings", "Queens",
    ];
    const KINDS: &[&str] = &["St", "Rd", "Ave", "Ln", "Way", "Pl"];
    format!("{} {}", BASES.choose(rng).unwrap(), KINDS.choose(rng).unwrap())
}

fn person_name(rng: &mut StdRng) -> String {
    const FIRST: &[&str] = &[
        "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi", "ivan", "judy",
        "mallory", "niaj", "olivia", "peggy", "rupert", "sybil", "trent", "victor", "wendy",
    ];
    const LAST: &[&str] = &[
        "smith", "jones", "taylor", "brown", "wilson", "evans", "thomas", "johnson", "roberts",
        "walker", "wright", "robinson", "thompson", "white", "hughes", "edwards", "green", "lewis",
        "wood", "harris",
    ];
    format!("{} {}", FIRST.choose(rng).unwrap(), LAST.choose(rng).unwrap())
}

/// Generate a clean customer instance per `cfg`.
pub fn generate(cfg: &CustomerConfig) -> CustomerData {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let countries = ["01", "44"];

    // Master maps drawn once → clean data satisfies the suite.
    let mut street_of: HashMap<(String, String), String> = HashMap::new();
    let mut zips: HashMap<&str, Vec<String>> = HashMap::new();
    for &cc in &countries {
        let mut zs = Vec::with_capacity(cfg.zips_per_country);
        for i in 0..cfg.zips_per_country {
            let zip = if cc == "44" { format!("EH{i:04}") } else { format!("{:05}", 7000 + i) };
            street_of.insert((cc.to_string(), zip.clone()), street_name(&mut rng));
            zs.push(zip);
        }
        zips.insert(cc, zs);
    }
    let mut city_of: HashMap<(String, String), String> = HashMap::new();
    let mut acs: HashMap<&str, Vec<String>> = HashMap::new();
    for &cc in &countries {
        let mut list = Vec::with_capacity(cfg.acs_per_country);
        for i in 0..cfg.acs_per_country {
            // Make the paper's special area codes always present.
            let ac = match (cc, i) {
                ("01", 0) => "908".to_string(),
                ("44", 0) => "131".to_string(),
                _ => format!("{}", 200 + i),
            };
            let city = city_for(cc, &ac, &mut rng);
            city_of.insert((cc.to_string(), ac.clone()), city);
            list.push(ac);
        }
        acs.insert(cc, list);
    }

    let zip_dist = Zipf::new(cfg.zips_per_country, cfg.zip_skew);
    let mut table = Table::with_capacity(schema.clone(), cfg.rows);
    for n in 0..cfg.rows {
        let cc = countries[rng.gen_range(0..countries.len())];
        let zip = zips[cc][zip_dist.sample(&mut rng)].clone();
        let ac = acs[cc].choose(&mut rng).unwrap().clone();
        let street = street_of[&(cc.to_string(), zip.clone())].clone();
        let city = city_of[&(cc.to_string(), ac.clone())].clone();
        let phn = format!("{:07}", 1_000_000 + (n as u64 * 7919) % 8_999_999);
        let row: Vec<Value> = vec![
            cc.into(),
            ac.into(),
            phn.into(),
            person_name(&mut rng).into(),
            street.into(),
            city.into(),
            zip.into(),
        ];
        table.push_unchecked(row);
    }
    CustomerData { table, schema, street_of, city_of }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_data_satisfies_standard_suite() {
        let data = generate(&CustomerConfig { rows: 500, ..Default::default() });
        let cfds = standard_cfds(&data.schema);
        for cfd in &cfds {
            assert!(
                cfd.satisfied_by(&data.table),
                "clean data must satisfy {}",
                cfd.display(&data.schema)
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CustomerConfig { rows: 50, seed: 9, ..Default::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.table.diff_cells(&b.table), 0);
        let c = generate(&CustomerConfig { seed: 10, ..cfg });
        assert!(a.table.diff_cells(&c.table) > 0);
    }

    #[test]
    fn row_count_and_schema() {
        let data = generate(&CustomerConfig { rows: 123, ..Default::default() });
        assert_eq!(data.table.len(), 123);
        assert_eq!(data.schema.arity(), 7);
        assert_eq!(data.schema.attr_name(attrs::ZIP), "zip");
    }

    #[test]
    fn special_pairs_present_and_canonical() {
        let data = generate(&CustomerConfig::default());
        assert_eq!(data.city_of[&("01".into(), "908".into())], "mh");
        assert_eq!(data.city_of[&("44".into(), "131".into())], "edi");
    }

    #[test]
    fn scaled_suite_satisfied_by_clean_data() {
        let data = generate(&CustomerConfig { rows: 300, ..Default::default() });
        let suite = scaled_suite(&data, 16);
        assert!(suite.len() >= 16);
        for cfd in &suite {
            assert!(cfd.satisfied_by(&data.table));
        }
    }

    #[test]
    fn zip_skew_produces_skewed_groups() {
        let data = generate(&CustomerConfig {
            rows: 2000,
            zips_per_country: 50,
            zip_skew: 1.2,
            ..Default::default()
        });
        let mut counts: HashMap<Value, usize> = HashMap::new();
        for (_, r) in data.table.rows() {
            *counts.entry(r[attrs::ZIP].clone()).or_insert(0) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let avg = 2000 / counts.len();
        assert!(max > 3 * avg, "expected skew: max group {max}, avg {avg}");
    }
}
