//! # revival-dirty
//!
//! Synthetic workload generation with ground truth.
//!
//! The experiments behind the tutorial (\[6\], \[8\], \[4\], \[10\]) run on
//! customer databases, book/CD order tables and card/billing feeds that
//! were never published. This crate substitutes seeded generators that
//! preserve the properties those experiments control for:
//!
//! * **pattern conformance** — clean data *satisfies* the standard CFD
//!   suite by construction (`zip → street` maps, `(cc, ac) → city`
//!   maps are drawn once and reused), so every violation found later is
//!   an injected one;
//! * **controlled error rate** — [`noise`] flips a chosen fraction of
//!   cells, recording ground truth for precision/recall scoring;
//! * **value skew** — group sizes follow a Zipf-like distribution
//!   ([`zipf`]), matching the skewed group cardinalities real customer
//!   data exhibits;
//! * **determinism** — everything is driven by a caller-provided seed.
//!
//! Scenarios: [`customer`] (CFD detection/repair), [`hospital`]
//! (HOSP-style CFDs, the literature's second benchmark), [`orders`]
//! (book/CD CINDs), [`cardbilling`] (record matching with RCKs).

pub mod cardbilling;
pub mod customer;
pub mod hospital;
pub mod noise;
pub mod orders;
pub mod zipf;

pub use customer::{CustomerConfig, CustomerData};
pub use noise::{DirtyDataset, NoiseConfig};
