//! The repair cost model of Cong et al. (VLDB 2007).
//!
//! `cost(t, A, v → w) = weight(t, A) · dist(v, w)` where `dist` is a
//! distance normalised to `[0, 1]`: Damerau-Levenshtein over the longer
//! string for text, relative difference for numbers, 0/1 otherwise.
//! Weights model confidence in the source data — cells known to be
//! reliable get high weight and are expensive to change, steering the
//! repair toward editing suspect cells.

use revival_relation::{Table, TupleId, Value};
use std::collections::HashMap;

/// Normalised Damerau-Levenshtein distance between two strings
/// (transpositions count 1), in `[0, 1]`.
pub fn string_distance(a: &str, b: &str) -> f64 {
    if a == b {
        return 0.0;
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return 1.0;
    }
    // Damerau-Levenshtein (optimal string alignment variant).
    let mut prev2: Vec<usize> = vec![0; m + 1];
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur: Vec<usize> = vec![0; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let sub = if a[i - 1] == b[j - 1] { 0 } else { 1 };
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + sub);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                cur[j] = cur[j].min(prev2[j - 2] + 1);
            }
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m] as f64 / n.max(m) as f64
}

/// Normalised distance between two values, in `[0, 1]`.
pub fn value_distance(a: &Value, b: &Value) -> f64 {
    if a == b {
        return 0.0;
    }
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => string_distance(x, y),
        (Value::Int(_), Value::Int(_))
        | (Value::Float(_), Value::Float(_))
        | (Value::Int(_), Value::Float(_))
        | (Value::Float(_), Value::Int(_)) => {
            let (x, y) = (a.as_float().unwrap(), b.as_float().unwrap());
            let denom = x.abs().max(y.abs()).max(1.0);
            ((x - y).abs() / denom).min(1.0)
        }
        _ => 1.0,
    }
}

/// Per-cell weights with a uniform default.
#[derive(Clone, Debug)]
pub struct CostModel {
    default_weight: f64,
    attr_weights: Vec<f64>,
    cell_weights: HashMap<(TupleId, usize), f64>,
}

impl CostModel {
    /// Uniform weights (1.0) over a relation of the given arity.
    pub fn uniform(arity: usize) -> Self {
        CostModel {
            default_weight: 1.0,
            attr_weights: vec![1.0; arity],
            cell_weights: HashMap::new(),
        }
    }

    /// Set the weight of a whole attribute.
    pub fn set_attr_weight(&mut self, attr: usize, w: f64) {
        self.attr_weights[attr] = w;
    }

    /// Set the weight of one cell (overrides the attribute weight).
    pub fn set_cell_weight(&mut self, tuple: TupleId, attr: usize, w: f64) {
        self.cell_weights.insert((tuple, attr), w);
    }

    /// The weight of a cell.
    pub fn weight(&self, tuple: TupleId, attr: usize) -> f64 {
        self.cell_weights
            .get(&(tuple, attr))
            .copied()
            .unwrap_or_else(|| self.attr_weights.get(attr).copied().unwrap_or(self.default_weight))
    }

    /// Cost of changing one cell from `from` to `to`.
    pub fn change_cost(&self, tuple: TupleId, attr: usize, from: &Value, to: &Value) -> f64 {
        self.weight(tuple, attr) * value_distance(from, to)
    }

    /// Total weighted cell distance between two tables (the objective
    /// the repair heuristic minimises).
    pub fn repair_cost(&self, original: &Table, repaired: &Table) -> f64 {
        let mut cost = 0.0;
        for (id, row) in original.rows() {
            if let Ok(rep) = repaired.get(id) {
                for (a, (v, w)) in row.iter().zip(&rep).enumerate() {
                    if v != w {
                        cost += self.change_cost(id, a, v, w);
                    }
                }
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_distance_basics() {
        assert_eq!(string_distance("abc", "abc"), 0.0);
        assert_eq!(string_distance("", "abc"), 1.0);
        assert!((string_distance("abc", "abd") - 1.0 / 3.0).abs() < 1e-9);
        // Transposition costs one edit.
        assert!((string_distance("abcd", "abdc") - 0.25).abs() < 1e-9);
        assert_eq!(string_distance("a", "b"), 1.0);
    }

    #[test]
    fn distance_symmetry_and_range() {
        for (a, b) in [("kitten", "sitting"), ("flaw", "lawn"), ("x", ""), ("abc", "ca")] {
            let d1 = string_distance(a, b);
            let d2 = string_distance(b, a);
            assert!((d1 - d2).abs() < 1e-12, "symmetry for {a},{b}");
            assert!((0.0..=1.0).contains(&d1));
        }
    }

    #[test]
    fn value_distance_numeric() {
        assert_eq!(value_distance(&Value::Int(10), &Value::Int(10)), 0.0);
        assert!((value_distance(&Value::Int(10), &Value::Int(9)) - 0.1).abs() < 1e-9);
        assert_eq!(value_distance(&Value::Int(1), &Value::from("1")), 1.0);
        assert_eq!(value_distance(&Value::Null, &Value::from("x")), 1.0);
    }

    #[test]
    fn weights() {
        let mut m = CostModel::uniform(3);
        m.set_attr_weight(1, 2.0);
        m.set_cell_weight(TupleId(5), 1, 0.5);
        assert_eq!(m.weight(TupleId(0), 0), 1.0);
        assert_eq!(m.weight(TupleId(0), 1), 2.0);
        assert_eq!(m.weight(TupleId(5), 1), 0.5);
    }

    #[test]
    fn repair_cost_counts_changed_cells() {
        use revival_relation::{Schema, Type};
        let s = Schema::builder("r").attr("a", Type::Str).build();
        let mut t1 = Table::new(s.clone());
        let id = t1.push(vec!["abcd".into()]).unwrap();
        let mut t2 = t1.clone();
        t2.set_cell(id, 0, "abce".into()).unwrap();
        let m = CostModel::uniform(1);
        assert!((m.repair_cost(&t1, &t2) - 0.25).abs() < 1e-9);
        assert_eq!(m.repair_cost(&t1, &t1), 0.0);
    }
}
