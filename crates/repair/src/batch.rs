//! `BatchRepair` — whole-table cost-based repairing.
//!
//! Each pass: detect all violations, translate them into equivalence-
//! class merges (variable rows) and pins (constant rows), resolve every
//! class to its cheapest value, apply, and re-detect — repairs can
//! themselves surface new violations, so the loop runs to a fixpoint.
//! If cost-guided resolution stalls (rare: cyclic suites or adversarial
//! pin conflicts), a forcing phase assigns group-consistent fresh values
//! that cannot match any constant pattern, guaranteeing the output
//! satisfies the suite. Forced edits are counted in
//! [`RepairStats::forced_resolutions`] — they trade accuracy for
//! consistency exactly like the "null-marker" fallback of Cong et al.
//!
//! ## Sharding
//!
//! Both hot halves of a pass shard across [`RepairOptions::jobs`]
//! threads, byte-identically to the sequential pass:
//!
//! * **detection** dispatches through the shared [`Detector`] engine
//!   layer — [`NativeEngine`] at one shard, [`ParallelEngine`]
//!   otherwise, whose merged reports are byte-for-byte equal;
//! * **equivalence-class resolution** shards the per-class cost scans
//!   ([`EquivClasses::resolve_targets`]): classes split into contiguous
//!   chunks, workers resolve each class independently, and the targets
//!   concatenate in chunk order before the (sequential, deterministic)
//!   apply step.
//!
//! So the repaired table and [`RepairStats`] are identical at any shard
//! count — asserted by `tests/repair_parity.rs`.

use crate::cost::CostModel;
use crate::eqclass::{Cell, EquivClasses};
use revival_constraints::cfd::merge_by_embedded_fd;
use revival_constraints::pattern::PatternValue;
use revival_constraints::Cfd;
use revival_detect::{DetectJob, Detector, NativeEngine, ParallelEngine, Violation};
use revival_relation::{Result, Sym, Table, Type, Value};
use std::collections::HashMap;

/// Tuning knobs for [`BatchRepair`].
#[derive(Clone, Debug)]
pub struct RepairOptions {
    /// Maximum detect→resolve→apply passes before forcing.
    pub max_passes: usize,
    /// Maximum forcing rounds (each introduces fresh values).
    pub max_force_rounds: usize,
    /// Shards for detection and equivalence-class resolution: 1 =
    /// sequential, 0 = one shard per available core. Output is
    /// byte-identical at any value.
    pub jobs: usize,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions { max_passes: 12, max_force_rounds: 24, jobs: 1 }
    }
}

/// What a repair did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RepairStats {
    /// Cost-guided passes executed.
    pub passes: usize,
    /// Cells whose value changed (vs. the input table).
    pub cells_changed: usize,
    /// Edits applied by the forcing phase.
    pub forced_resolutions: usize,
    /// Total weighted repair cost (vs. the input table).
    pub cost: f64,
    /// Violations remaining (0 unless `max_force_rounds` was exhausted).
    pub residual_violations: usize,
}

/// Cost-based batch repair over one table.
pub struct BatchRepair {
    cfds: Vec<Cfd>,
    cost: CostModel,
    options: RepairOptions,
}

impl BatchRepair {
    /// Build a repairer for a suite (merged by embedded FD internally).
    pub fn new(cfds: &[Cfd], cost: CostModel) -> Self {
        BatchRepair { cfds: merge_by_embedded_fd(cfds), cost, options: RepairOptions::default() }
    }

    /// Override the default options.
    pub fn with_options(mut self, options: RepairOptions) -> Self {
        self.options = options;
        self
    }

    /// Override just the shard count (0 = one per available core).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.options.jobs = jobs;
        self
    }

    /// The merged suite the repairer enforces.
    pub fn cfds(&self) -> &[Cfd] {
        &self.cfds
    }

    /// The resolved shard count (`jobs = 0` → available cores).
    fn jobs(&self) -> usize {
        match self.options.jobs {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }

    /// Detect violations of the merged suite on `table` through the
    /// engine layer — [`NativeEngine`] at one shard, [`ParallelEngine`]
    /// otherwise (their reports are byte-identical, so the pass
    /// translation below sees the same violations in the same order).
    fn detect(&self, table: &Table) -> Result<revival_detect::ViolationReport> {
        let job = DetectJob::on_table(table, &self.cfds);
        if self.jobs() <= 1 {
            NativeEngine.run(&job)
        } else {
            ParallelEngine::new(self.jobs()).run(&job)
        }
    }

    /// Repair `table`, returning the repaired copy and statistics.
    ///
    /// Errors if the suite is malformed (typed
    /// [`revival_relation::Error::MalformedPattern`]) or constrains a
    /// relation other than `table` — conditions the old panicking path
    /// would have aborted on mid-pass.
    pub fn repair(&self, table: &Table) -> Result<(Table, RepairStats)> {
        self.repair_inner(table, None)
    }

    /// [`BatchRepair::repair`] with a [`revival_obs::JobProfile`]
    /// alongside: same repaired table, same stats (profiling is
    /// side-effect-only), plus detect/resolve/force phase timings and
    /// per-constraint detect wall + cells-changed attribution. Names
    /// refer to the *merged* suite the repairer enforces (see
    /// [`BatchRepair::cfds`]).
    pub fn repair_profiled(
        &self,
        table: &Table,
    ) -> Result<(Table, RepairStats, revival_obs::JobProfile)> {
        let detail = if self.jobs() <= 1 { "native" } else { "parallel" };
        let mut profile = revival_obs::JobProfile::new("repair", detail, self.jobs() as u64);
        let start = std::time::Instant::now();
        let (fixed, stats) = self.repair_inner(table, Some(&mut profile))?;
        let us = start.elapsed().as_micros() as u64;
        profile.meta_add("passes", stats.passes as u64);
        profile.meta_add("cells_changed", stats.cells_changed as u64);
        profile.meta_add("forced_resolutions", stats.forced_resolutions as u64);
        profile.meta_add("residual_violations", stats.residual_violations as u64);
        profile.meta_add("merged_cfds", self.cfds.len() as u64);
        profile.finish(us);
        Ok((fixed, stats, profile))
    }

    fn repair_inner(
        &self,
        table: &Table,
        mut profile: Option<&mut revival_obs::JobProfile>,
    ) -> Result<(Table, RepairStats)> {
        let run_span = revival_obs::Span::traced(
            "repair.run",
            revival_obs::global().histogram("repair_run_us"),
        );
        let mut current = table.clone();
        let mut stats = RepairStats::default();
        let mut fresh_counter: u64 = 0;
        // Profile row names (merged-suite order), shared with the detect
        // engines' own profiles so the per-pass merges key correctly.
        let names: Vec<String> = if profile.is_some() {
            let job = DetectJob::on_table(table, &self.cfds);
            (0..self.cfds.len()).map(|i| revival_detect::cfd_profile_name(&job, i)).collect()
        } else {
            Vec::new()
        };

        // Wall time per stage, flushed to the registry once at the end
        // (side-effect-only: the repair itself is byte-identical with
        // instrumentation on or off).
        let (mut detect_us, mut resolve_us, mut force_us) = (0u64, 0u64, 0u64);

        for _ in 0..self.options.max_passes {
            let stage = std::time::Instant::now();
            let report = self.detect_step(&current, profile.as_deref_mut());
            detect_us += stage.elapsed().as_micros() as u64;
            let report = report?;
            if report.is_empty() {
                break;
            }
            stats.passes += 1;
            let stage = std::time::Instant::now();
            let changed = self.resolve_pass(
                &mut current,
                &report.violations,
                profile.as_deref_mut().map(|p| (p, names.as_slice())),
            );
            resolve_us += stage.elapsed().as_micros() as u64;
            if !changed {
                break; // cost-guided resolution stalled → force below
            }
        }

        // Forcing phase: guarantee satisfaction.
        for round in 0..self.options.max_force_rounds {
            let stage = std::time::Instant::now();
            let report = self.detect_step(&current, profile.as_deref_mut());
            detect_us += stage.elapsed().as_micros() as u64;
            let report = report?;
            if report.is_empty() {
                break;
            }
            let stage = std::time::Instant::now();
            stats.forced_resolutions += self.force_pass(
                &mut current,
                &report.violations,
                round,
                &mut fresh_counter,
                profile.as_deref_mut().map(|p| (p, names.as_slice())),
            );
            force_us += stage.elapsed().as_micros() as u64;
        }

        let stage = std::time::Instant::now();
        let residual = self.detect_step(&current, profile.as_deref_mut());
        detect_us += stage.elapsed().as_micros() as u64;
        stats.residual_violations = residual?.len();
        stats.cells_changed = current.diff_cells(table);
        stats.cost = self.cost.repair_cost(table, &current);
        if revival_obs::enabled() {
            let reg = revival_obs::global();
            reg.counter("repair_runs_total").inc();
            reg.counter("repair_cells_changed_total").add(stats.cells_changed as u64);
            reg.counter("repair_forced_total").add(stats.forced_resolutions as u64);
            reg.histogram("repair_phase_us{phase=\"detect\"}").record(detect_us);
            reg.histogram("repair_phase_us{phase=\"resolve\"}").record(resolve_us);
            reg.histogram("repair_phase_us{phase=\"force\"}").record(force_us);
        }
        if let Some(p) = profile {
            p.phase_add("detect", detect_us);
            p.phase_add("resolve", resolve_us);
            p.phase_add("force", force_us);
        }
        drop(run_span);
        Ok((current, stats))
    }

    /// One detection round of a repair: the plain engine path, or the
    /// profiled one with the detect engines' per-constraint profile
    /// (wall, groups, rows) merged into the repair profile — meta is
    /// dropped so per-pass merges don't multiply suite-size counts.
    fn detect_step(
        &self,
        table: &Table,
        profile: Option<&mut revival_obs::JobProfile>,
    ) -> Result<revival_detect::ViolationReport> {
        let Some(p) = profile else {
            return self.detect(table);
        };
        let job = DetectJob::on_table(table, &self.cfds);
        let (report, mut dp) = if self.jobs() <= 1 {
            NativeEngine.run_profiled(&job)?
        } else {
            ParallelEngine::new(self.jobs()).run_profiled(&job)?
        };
        dp.meta.clear();
        p.merge(&dp);
        Ok(report)
    }

    /// One cost-guided pass. Returns whether any cell changed. With
    /// `attribution`, each successful cell edit is charged to the first
    /// constraint (in report order) that claimed the cell — report
    /// order is engine-independent, so the attribution is deterministic.
    fn resolve_pass(
        &self,
        table: &mut Table,
        violations: &[Violation],
        mut attribution: Option<(&mut revival_obs::JobProfile, &[String])>,
    ) -> bool {
        let mut eq = EquivClasses::new();
        // `(cell, fresh)` lhs-break requests when pins conflict.
        let mut breaks: Vec<Cell> = Vec::new();
        // First constraint (report order) claiming each cell an edit may
        // touch — only tracked when profiling.
        let profiling = attribution.is_some();
        let mut owner: HashMap<Cell, usize> = HashMap::new();

        for v in violations {
            match v {
                Violation::CfdConstant { cfd, row, tuple } => {
                    let ci = *cfd;
                    let cfd = &self.cfds[*cfd];
                    let tp = &cfd.tableau[*row];
                    // eCFD RHS patterns (≠/∈) have no single forced value;
                    // they resolve in the forcing phase.
                    let PatternValue::Const(c) = &tp.rhs else { continue };
                    let rhs_cell: Cell = (*tuple, cfd.rhs);
                    let Ok(data) = table.get(*tuple) else { continue };
                    // Cost of fixing the RHS vs. cheapest LHS break.
                    let rhs_cost = self.cost.change_cost(*tuple, cfd.rhs, &data[cfd.rhs], c);
                    let lhs_break: Option<(f64, Cell)> = tp
                        .lhs
                        .iter()
                        .zip(&cfd.lhs)
                        .filter(|(p, _)| !p.is_wildcard())
                        .map(|(_, &a)| {
                            // Breaking costs ≈ weight (distance to a fresh
                            // value is ~1).
                            (self.cost.weight(*tuple, a), (*tuple, a))
                        })
                        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                    if profiling {
                        owner.entry(rhs_cell).or_insert(ci);
                        if let Some((_, cell)) = lhs_break {
                            owner.entry(cell).or_insert(ci);
                        }
                    }
                    match lhs_break {
                        Some((w, cell)) if w < rhs_cost => breaks.push(cell),
                        _ => {
                            if !eq.pin(rhs_cell, c.clone()) {
                                // Conflicting constant requirements:
                                // break the pattern instead.
                                if let Some((_, cell)) = lhs_break {
                                    breaks.push(cell);
                                }
                            }
                        }
                    }
                }
                Violation::CfdVariable { cfd, tuples, .. } => {
                    let ci = *cfd;
                    let cfd = &self.cfds[*cfd];
                    let mut it = tuples.iter();
                    let Some(&first) = it.next() else { continue };
                    if profiling {
                        for &t in tuples {
                            owner.entry((t, cfd.rhs)).or_insert(ci);
                            if let Some(&a) = cfd.lhs.first() {
                                owner.entry((t, a)).or_insert(ci);
                            }
                        }
                    }
                    for &t in it {
                        if !eq.union((first, cfd.rhs), (t, cfd.rhs)) {
                            // Pin conflict between classes — break the
                            // group membership of `t` via an LHS cell.
                            if let Some(&a) = cfd.lhs.first() {
                                breaks.push((t, a));
                            }
                        }
                    }
                }
                Violation::CindMissingWitness { .. } => {
                    // CIND repair (tuple insertion on the target side) is
                    // out of scope for cell-based repair.
                }
            }
        }

        let mut changed = false;
        let charge =
            |cell: Cell, attribution: &mut Option<(&mut revival_obs::JobProfile, &[String])>| {
                if let Some((profile, names)) = attribution.as_mut() {
                    if let Some(name) = owner.get(&cell).and_then(|&ci| names.get(ci)) {
                        profile.entry(name, "cfd").cells_changed += 1;
                    }
                }
            };
        // Resolve every class's target value in parallel (read-only over
        // the table), then apply sequentially in deterministic group
        // order — identical output at any shard count.
        let groups = eq.groups();
        let targets = EquivClasses::resolve_targets(&groups, table, &self.cost, self.jobs());
        for ((cells, _), target) in groups.into_iter().zip(targets) {
            for (t, a) in cells {
                if let Ok(row) = table.get(t) {
                    if row[a] != target && table.set_cell(t, a, target.clone()).is_ok() {
                        changed = true;
                        charge((t, a), &mut attribution);
                    }
                }
            }
        }
        for (t, a) in breaks {
            let fresh = fresh_value(table, t, a);
            if table.set_cell(t, a, fresh).is_ok() {
                changed = true;
                charge((t, a), &mut attribution);
            }
        }
        changed
    }

    /// One forcing round. Early rounds coerce groups to a consistent
    /// existing value; later rounds introduce fresh values that cannot
    /// re-trigger constant patterns. Returns edits applied.
    fn force_pass(
        &self,
        table: &mut Table,
        violations: &[Violation],
        round: usize,
        fresh_counter: &mut u64,
        mut attribution: Option<(&mut revival_obs::JobProfile, &[String])>,
    ) -> usize {
        let mut edits = 0usize;
        let charge =
            |ci: usize,
             n: u64,
             attribution: &mut Option<(&mut revival_obs::JobProfile, &[String])>| {
                if n > 0 {
                    if let Some((profile, names)) = attribution.as_mut() {
                        if let Some(name) = names.get(ci) {
                            profile.entry(name, "cfd").cells_changed += n;
                        }
                    }
                }
            };
        for v in violations {
            match v {
                Violation::CfdConstant { cfd, row, tuple } => {
                    let ci = *cfd;
                    let cfd = &self.cfds[*cfd];
                    let tp = &cfd.tableau[*row];
                    // A value satisfying the RHS pattern, when one is
                    // directly constructible.
                    let satisfying = match &tp.rhs {
                        PatternValue::Const(c) => Some(c.clone()),
                        PatternValue::OneOf(cs) => cs.first().cloned(),
                        PatternValue::NotConst(c) => {
                            // Prefer a plausible value from the column's
                            // active domain; fresh markers only as a
                            // last resort.
                            match column_plurality_excluding(table, cfd.rhs, c) {
                                Some(v) => Some(v),
                                None => {
                                    *fresh_counter += 1;
                                    Some(unique_fresh(table, *tuple, cfd.rhs, *fresh_counter))
                                }
                            }
                        }
                        PatternValue::Wildcard => None,
                    };
                    if round < 2 {
                        if let Some(c) = satisfying {
                            if table.set_cell(*tuple, cfd.rhs, c).is_ok() {
                                edits += 1;
                                charge(ci, 1, &mut attribution);
                            }
                        }
                    } else {
                        // Persistent conflict: break the pattern on the
                        // first constant LHS position.
                        if let Some((_, &a)) =
                            tp.lhs.iter().zip(&cfd.lhs).find(|(p, _)| !p.is_wildcard())
                        {
                            *fresh_counter += 1;
                            let fresh = unique_fresh(table, *tuple, a, *fresh_counter);
                            if table.set_cell(*tuple, a, fresh).is_ok() {
                                edits += 1;
                                charge(ci, 1, &mut attribution);
                            }
                        }
                    }
                }
                Violation::CfdVariable { cfd, tuples, .. } => {
                    let ci = *cfd;
                    let cfd = &self.cfds[*cfd];
                    // Make the whole group agree on one RHS value: the
                    // plurality value early, a shared fresh value later.
                    let target = if round < 2 {
                        plurality_rhs(table, tuples, cfd.rhs)
                    } else {
                        *fresh_counter += 1;
                        unique_fresh(
                            table,
                            *tuples.first().expect("non-empty group"),
                            cfd.rhs,
                            *fresh_counter,
                        )
                    };
                    let mut group_edits = 0u64;
                    for &t in tuples {
                        if let Ok(row) = table.get(t) {
                            if row[cfd.rhs] != target
                                && table.set_cell(t, cfd.rhs, target.clone()).is_ok()
                            {
                                edits += 1;
                                group_edits += 1;
                            }
                        }
                    }
                    charge(ci, group_edits, &mut attribution);
                }
                Violation::CindMissingWitness { .. } => {}
            }
        }
        edits
    }
}

/// The most common value of a column excluding `not`, if any — a pure
/// column scan: occurrences count per symbol, values materialise only
/// for the tie-break comparison and the winner.
fn column_plurality_excluding(table: &Table, attr: usize, not: &Value) -> Option<Value> {
    let col = table.col(attr);
    let not_sym = table.pool().lookup(not);
    let mut counts: HashMap<Sym, usize> = HashMap::new();
    for slot in table.live_slots() {
        if Some(col[slot]) != not_sym {
            *counts.entry(col[slot]).or_insert(0) += 1;
        }
    }
    let pool = table.pool();
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| pool.value(b.0).cmp(pool.value(a.0))))
        .map(|(s, _)| pool.value(s).clone())
}

/// The most common RHS value among a group (ties break to the smallest).
fn plurality_rhs(table: &Table, tuples: &[revival_relation::TupleId], rhs: usize) -> Value {
    let mut counts: HashMap<Value, usize> = HashMap::new();
    for &t in tuples {
        if let Ok(row) = table.get(t) {
            *counts.entry(row[rhs].clone()).or_insert(0) += 1;
        }
    }
    let mut entries: Vec<(Value, usize)> = counts.into_iter().collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    entries.into_iter().next().map(|(v, _)| v).unwrap_or(Value::Null)
}

/// A fresh value of the cell's type, unlikely to collide.
fn fresh_value(table: &Table, t: revival_relation::TupleId, a: usize) -> Value {
    unique_fresh(table, t, a, t.0)
}

fn unique_fresh(table: &Table, t: revival_relation::TupleId, a: usize, salt: u64) -> Value {
    match table.schema().attribute(a).ty {
        Type::Str => Value::str(format!("__fresh_{}_{}_{salt}", t.0, a)),
        Type::Int => Value::Int(-(1_000_000_007i64 + salt as i64 * 31 + t.0 as i64)),
        Type::Float => Value::Float(-(1e12 + salt as f64 * 31.0 + t.0 as f64)),
        Type::Bool => Value::Bool(salt.is_multiple_of(2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_constraints::parser::parse_cfds;
    use revival_detect::native::satisfies;
    use revival_relation::{Schema, Type};

    fn schema() -> Schema {
        Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("ac", Type::Str)
            .attr("street", Type::Str)
            .attr("city", Type::Str)
            .attr("zip", Type::Str)
            .build()
    }

    fn table(rows: &[[&str; 5]]) -> Table {
        let mut t = Table::new(schema());
        for r in rows {
            t.push(r.iter().map(|s| Value::from(*s)).collect()).unwrap();
        }
        t
    }

    #[test]
    fn repairs_variable_violation_to_plurality() {
        let s = schema();
        let cfds = parse_cfds("customer([cc='44', zip] -> [street])", &s).unwrap();
        let t = table(&[
            ["44", "131", "Crichton", "edi", "EH8"],
            ["44", "131", "Crichton", "edi", "EH8"],
            ["44", "131", "Mayfield", "edi", "EH8"], // minority → should flip
        ]);
        let repairer = BatchRepair::new(&cfds, CostModel::uniform(5));
        let (fixed, stats) = repairer.repair(&t).unwrap();
        assert!(satisfies(&fixed, &cfds));
        assert_eq!(stats.residual_violations, 0);
        assert_eq!(stats.cells_changed, 1);
        for (_, row) in fixed.rows() {
            assert_eq!(row[2], Value::from("Crichton"));
        }
    }

    #[test]
    fn repairs_constant_violation_to_required_value() {
        let s = schema();
        let cfds = parse_cfds("customer([cc='01', ac='908'] -> [city='mh'])", &s).unwrap();
        let t = table(&[["01", "908", "Mtn", "nyc", "07974"]]);
        let repairer = BatchRepair::new(&cfds, CostModel::uniform(5));
        let (fixed, stats) = repairer.repair(&t).unwrap();
        assert!(satisfies(&fixed, &cfds));
        assert_eq!(fixed.rows().next().unwrap().1[3], Value::from("mh"));
        assert_eq!(stats.forced_resolutions, 0);
    }

    #[test]
    fn weight_steers_resolution() {
        let s = schema();
        let cfds = parse_cfds("customer([cc='44', zip] -> [street])", &s).unwrap();
        let t = table(&[
            ["44", "131", "Crichton", "edi", "EH8"],
            ["44", "131", "Mayfield", "edi", "EH8"],
        ]);
        // Make tuple 1's street expensive to change → class resolves to
        // Mayfield even though it's 1-vs-1.
        let mut cost = CostModel::uniform(5);
        cost.set_cell_weight(revival_relation::TupleId(1), 2, 100.0);
        let repairer = BatchRepair::new(&cfds, cost);
        let (fixed, _) = repairer.repair(&t).unwrap();
        assert!(satisfies(&fixed, &cfds));
        for (_, row) in fixed.rows() {
            assert_eq!(row[2], Value::from("Mayfield"));
        }
    }

    #[test]
    fn conflicting_constant_rules_still_terminate_consistent() {
        let s = schema();
        // Both rows fire on the same tuples but demand different cities:
        // unsatisfiable unless the pattern is broken.
        let cfds = parse_cfds(
            "customer([cc='01', ac='908'] -> [city='mh'])\n\
             customer([cc='01', zip='07974'] -> [city='nyc'])",
            &s,
        )
        .unwrap();
        let t = table(&[["01", "908", "Mtn", "xxx", "07974"]]);
        let repairer = BatchRepair::new(&cfds, CostModel::uniform(5));
        let (fixed, stats) = repairer.repair(&t).unwrap();
        assert!(satisfies(&fixed, &cfds), "output must satisfy the suite");
        assert_eq!(stats.residual_violations, 0);
        assert!(stats.forced_resolutions > 0 || stats.cells_changed >= 2);
    }

    #[test]
    fn cascading_repairs_converge() {
        let s = schema();
        // city is RHS of one CFD and LHS of another.
        let cfds = parse_cfds(
            "customer([cc, ac] -> [city])\n\
             customer([city='edi'] -> [cc='44'])",
            &s,
        )
        .unwrap();
        let t = table(&[
            ["44", "131", "A", "edi", "EH8"],
            ["44", "131", "B", "gla", "EH8"], // conflicts on city for (44,131)
            ["01", "131", "C", "edi", "07974"], // cc must become 44 if city stays edi
        ]);
        let repairer = BatchRepair::new(&cfds, CostModel::uniform(5));
        let (fixed, stats) = repairer.repair(&t).unwrap();
        assert!(satisfies(&fixed, &cfds));
        assert_eq!(stats.residual_violations, 0);
    }

    #[test]
    fn sharded_repair_is_byte_identical() {
        let s = schema();
        let cfds = parse_cfds(
            "customer([cc='44', zip] -> [street])\n\
             customer([cc='01', ac='908'] -> [city='mh'])\n\
             customer([zip] -> [city])",
            &s,
        )
        .unwrap();
        // Deterministic pseudo-random dirt so shards cross chunk bounds.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut next = move |m: usize| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % m as u64) as usize
        };
        let mut t = Table::new(s);
        for _ in 0..200 {
            t.push(vec![
                ["44", "01", "86"][next(3)].into(),
                "908".into(),
                Value::str(format!("S{}", next(6))),
                Value::str(format!("C{}", next(4))),
                Value::str(format!("Z{}", next(12))),
            ])
            .unwrap();
        }
        let sequential = BatchRepair::new(&cfds, CostModel::uniform(5)).repair(&t).unwrap();
        for jobs in [2, 3, 4, 8] {
            let sharded =
                BatchRepair::new(&cfds, CostModel::uniform(5)).with_jobs(jobs).repair(&t).unwrap();
            assert_eq!(sharded.1, sequential.1, "stats diverge at jobs={jobs}");
            assert_eq!(sharded.0.diff_cells(&sequential.0), 0, "table diverges at jobs={jobs}");
        }
    }

    #[test]
    fn profiled_repair_is_byte_identical_and_attributes_cells() {
        let s = schema();
        let cfds = parse_cfds(
            "customer([cc='44', zip] -> [street])\n\
             customer([cc='01', ac='908'] -> [city='mh'])",
            &s,
        )
        .unwrap();
        let t = table(&[
            ["44", "131", "Crichton", "edi", "EH8"],
            ["44", "131", "Crichton", "edi", "EH8"],
            ["44", "131", "Mayfield", "edi", "EH8"],
            ["01", "908", "Mtn", "nyc", "07974"],
        ]);
        for jobs in [1, 4] {
            let repairer = BatchRepair::new(&cfds, CostModel::uniform(5)).with_jobs(jobs);
            let (plain, plain_stats) = repairer.repair(&t).unwrap();
            let (profiled, stats, profile) = repairer.repair_profiled(&t).unwrap();
            assert_eq!(stats, plain_stats, "jobs={jobs}: profiled stats differ");
            assert_eq!(profiled.diff_cells(&plain), 0, "jobs={jobs}: profiled table differs");
            // Both constraints repaired a cell; attribution must see all
            // of them, under merged-suite names.
            let attributed: u64 = profile.constraints.iter().map(|c| c.cells_changed).sum();
            assert_eq!(attributed, stats.cells_changed as u64, "jobs={jobs}");
            assert_eq!(profile.constraints.len(), repairer.cfds().len(), "jobs={jobs}");
            // The three repair phases are reported and bounded by wall.
            for phase in ["detect", "resolve", "force"] {
                assert!(
                    profile.phases.iter().any(|(p, _)| *p == phase),
                    "jobs={jobs}: missing phase {phase}"
                );
            }
            let phase_sum: u64 = profile.phases.iter().map(|(_, us)| us).sum();
            assert!(phase_sum <= profile.wall_us, "jobs={jobs}: phases exceed wall");
        }
    }

    #[test]
    fn malformed_suite_is_a_typed_error_not_a_panic() {
        use revival_constraints::pattern::{PatternRow, PatternValue};
        let s = schema();
        let mut cfds = parse_cfds("customer([cc='44', zip] -> [street])", &s).unwrap();
        cfds[0].tableau.push(PatternRow::new(vec![PatternValue::Wildcard], PatternValue::Wildcard));
        let t = table(&[["44", "131", "Crichton", "edi", "EH8"]]);
        for jobs in [1, 4] {
            let got = BatchRepair::new(&cfds, CostModel::uniform(5)).with_jobs(jobs).repair(&t);
            assert!(
                matches!(got, Err(revival_relation::Error::MalformedPattern { .. })),
                "jobs={jobs}: {got:?}"
            );
        }
    }

    #[test]
    fn clean_table_untouched() {
        let s = schema();
        let cfds = parse_cfds("customer([cc='44', zip] -> [street])", &s).unwrap();
        let t = table(&[["44", "131", "Crichton", "edi", "EH8"]]);
        let repairer = BatchRepair::new(&cfds, CostModel::uniform(5));
        let (fixed, stats) = repairer.repair(&t).unwrap();
        assert_eq!(stats.cells_changed, 0);
        assert_eq!(stats.cost, 0.0);
        assert_eq!(fixed.diff_cells(&t), 0);
    }
}
