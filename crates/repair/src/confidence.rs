//! Deriving cell confidence weights from detection evidence.
//!
//! Cong et al.'s cost model assumes per-cell *confidence* weights
//! ("placed by the user or automatically"). This module provides the
//! automatic path: cells implicated by violations are *suspects* and
//! get their weight discounted, so the repair prefers editing them over
//! trusted cells. Heuristics:
//!
//! * a constant-row violation marks the tuple's RHS cell (it directly
//!   contradicts a ground-truth-style rule);
//! * a variable-row violation marks the RHS cells of the *minority*
//!   values in the conflicting group (plurality is the best single
//!   guess at the truth, cf. the class-resolution step).

use crate::cost::CostModel;
use revival_constraints::Cfd;
use revival_detect::{NativeDetector, Violation};
use revival_relation::{Table, Value};
use std::collections::HashMap;

/// Options for [`suspicion_weights`].
#[derive(Clone, Copy, Debug)]
pub struct ConfidenceOptions {
    /// Weight of unimplicated (trusted) cells.
    pub base_weight: f64,
    /// Weight of suspect cells (must be < `base_weight` to matter).
    pub suspect_weight: f64,
}

impl Default for ConfidenceOptions {
    fn default() -> Self {
        ConfidenceOptions { base_weight: 1.0, suspect_weight: 0.25 }
    }
}

/// Build a [`CostModel`] whose suspect cells — derived from one
/// detection pass — are cheap to change.
pub fn suspicion_weights(table: &Table, cfds: &[Cfd], options: ConfidenceOptions) -> CostModel {
    let mut model = CostModel::uniform(table.schema().arity());
    for a in 0..table.schema().arity() {
        model.set_attr_weight(a, options.base_weight);
    }
    let report = NativeDetector::new(table).detect_all(cfds);
    for v in &report.violations {
        match v {
            Violation::CfdConstant { cfd, tuple, .. } => {
                let rhs = cfds[*cfd].rhs;
                model.set_cell_weight(*tuple, rhs, options.suspect_weight);
            }
            Violation::CfdVariable { cfd, tuples, .. } => {
                let rhs = cfds[*cfd].rhs;
                // Find the plurality RHS value; discount the others.
                let mut counts: HashMap<&Value, usize> = HashMap::new();
                let rows: Vec<(_, Vec<Value>)> =
                    tuples.iter().filter_map(|&t| table.get(t).ok().map(|r| (t, r))).collect();
                for (_, r) in &rows {
                    *counts.entry(&r[rhs]).or_insert(0) += 1;
                }
                let Some((majority, _)) = counts
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                    .map(|(v, c)| ((*v).clone(), *c))
                else {
                    continue;
                };
                for (t, r) in rows {
                    if r[rhs] != majority {
                        model.set_cell_weight(t, rhs, options.suspect_weight);
                    }
                }
            }
            Violation::CindMissingWitness { .. } => {}
        }
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BatchRepair;
    use revival_constraints::parser::parse_cfds;
    use revival_relation::{Schema, TupleId, Type};

    fn schema() -> Schema {
        Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("zip", Type::Str)
            .attr("street", Type::Str)
            .attr("city", Type::Str)
            .build()
    }

    fn table(rows: &[[&str; 4]]) -> Table {
        let mut t = Table::new(schema());
        for r in rows {
            t.push(r.iter().map(|x| (*x).into()).collect()).unwrap();
        }
        t
    }

    #[test]
    fn minority_cells_discounted() {
        let s = schema();
        let cfds = parse_cfds("customer([cc='44', zip] -> [street])", &s).unwrap();
        let t = table(&[
            ["44", "EH8", "Crichton", "edi"],
            ["44", "EH8", "Crichton", "edi"],
            ["44", "EH8", "Mayfield", "edi"], // minority
        ]);
        let model = suspicion_weights(&t, &cfds, ConfidenceOptions::default());
        assert_eq!(model.weight(TupleId(0), 2), 1.0);
        assert_eq!(model.weight(TupleId(1), 2), 1.0);
        assert_eq!(model.weight(TupleId(2), 2), 0.25);
    }

    #[test]
    fn constant_violation_rhs_discounted() {
        let s = schema();
        let cfds = parse_cfds("customer([zip='07974'] -> [city='mh'])", &s).unwrap();
        let t = table(&[["01", "07974", "Mtn", "nyc"], ["01", "07974", "Mtn", "mh"]]);
        let model = suspicion_weights(&t, &cfds, ConfidenceOptions::default());
        assert_eq!(model.weight(TupleId(0), 3), 0.25);
        assert_eq!(model.weight(TupleId(1), 3), 1.0);
    }

    #[test]
    fn clean_table_all_trusted() {
        let s = schema();
        let cfds = parse_cfds("customer([cc='44', zip] -> [street])", &s).unwrap();
        let t = table(&[["44", "EH8", "Crichton", "edi"]]);
        let model = suspicion_weights(&t, &cfds, ConfidenceOptions::default());
        for a in 0..4 {
            assert_eq!(model.weight(TupleId(0), a), 1.0);
        }
    }

    #[test]
    fn confidence_weights_preserve_majority_under_tie() {
        // 1-vs-1 group: uniform weights could flip either way; with
        // suspicion weights the minority (by tie-break) becomes cheap
        // and the repair is deterministic.
        let s = schema();
        let cfds = parse_cfds("customer([cc='44', zip] -> [street])", &s).unwrap();
        let t = table(&[["44", "EH8", "Crichton", "edi"], ["44", "EH8", "Mayfield", "edi"]]);
        let model = suspicion_weights(&t, &cfds, ConfidenceOptions::default());
        let repairer = BatchRepair::new(&cfds, model);
        let (fixed, stats) = repairer.repair(&t).unwrap();
        assert_eq!(stats.residual_violations, 0);
        assert_eq!(stats.cells_changed, 1, "exactly one side flips");
        let streets: Vec<_> = fixed.rows().map(|(_, r)| r[2].clone()).collect();
        assert_eq!(streets[0], streets[1]);
    }

    #[test]
    fn end_to_end_quality_not_worse_than_uniform() {
        use revival_dirty::customer::{attrs, generate, standard_cfds, CustomerConfig};
        use revival_dirty::noise::{inject, NoiseConfig};
        let data = generate(&CustomerConfig { rows: 1500, seed: 77, ..Default::default() });
        let cfds = standard_cfds(&data.schema);
        let ds = inject(&data.table, &NoiseConfig::new(0.05, vec![attrs::STREET, attrs::CITY], 78));
        let attrs_scored = [attrs::STREET, attrs::CITY];
        let uniform = BatchRepair::new(&cfds, CostModel::uniform(data.schema.arity()));
        let (fix_u, _) = uniform.repair(&ds.dirty).unwrap();
        let score_u = ds.score_repair(&fix_u, &attrs_scored);
        let weighted = BatchRepair::new(
            &cfds,
            suspicion_weights(&ds.dirty, &cfds, ConfidenceOptions::default()),
        );
        let (fix_w, stats_w) = weighted.repair(&ds.dirty).unwrap();
        assert_eq!(stats_w.residual_violations, 0);
        let score_w = ds.score_repair(&fix_w, &attrs_scored);
        assert!(
            score_w.f1() >= score_u.f1() - 0.02,
            "confidence weights must not hurt: {:.3} vs {:.3}",
            score_w.f1(),
            score_u.f1()
        );
    }
}
