//! Union-find over cells, with per-class value resolution.
//!
//! Variable-CFD violations assert "these RHS cells must hold the same
//! value". Rather than picking pairwise winners, Cong et al. merge such
//! cells into equivalence classes and later assign each class one
//! *target value* minimising the weighted cost of changing all member
//! cells — preserving the plurality value in the common case.

use crate::cost::{value_distance, CostModel};
use revival_relation::groupby::hash_words;
use revival_relation::{GroupBy, Table, TupleId, Value};

/// A cell identified by `(tuple, attribute)`.
pub type Cell = (TupleId, usize);

/// The kernel's word hash over a cell's two coordinates — cell slots
/// probe without per-probe allocation, same shape as detection's key
/// projections.
#[inline]
fn cell_hash(c: Cell) -> u64 {
    hash_words([c.0 .0, c.1 as u64])
}

#[inline]
fn root_hash(r: usize) -> u64 {
    hash_words([r as u64])
}

/// Union-find over cells with path compression and union by size.
#[derive(Default)]
pub struct EquivClasses {
    ids: GroupBy<Cell, usize>,
    parent: Vec<usize>,
    size: Vec<usize>,
    /// A class may be pinned to a constant (by a constant-CFD
    /// resolution); pins win over plurality resolution.
    pinned: Vec<Option<Value>>,
}

impl EquivClasses {
    /// Empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, c: Cell) -> usize {
        let h = cell_hash(c);
        if let Some(&i) = self.ids.get(h, |k| *k == c) {
            return i;
        }
        let i = self.parent.len();
        self.ids.insert_unique(h, c, i);
        self.parent.push(i);
        self.size.push(1);
        self.pinned.push(None);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    /// Merge the classes of two cells. Returns `false` if both classes
    /// were pinned to *different* constants (a genuine conflict the
    /// caller must resolve another way).
    pub fn union(&mut self, a: Cell, b: Cell) -> bool {
        let (ia, ib) = (self.intern(a), self.intern(b));
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            return true;
        }
        match (&self.pinned[ra], &self.pinned[rb]) {
            (Some(x), Some(y)) if x != y => return false,
            _ => {}
        }
        let (big, small) = if self.size[ra] >= self.size[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        if self.pinned[big].is_none() {
            self.pinned[big] = self.pinned[small].take();
        }
        true
    }

    /// Pin a cell's class to a constant. Returns `false` on conflict
    /// with an existing different pin.
    pub fn pin(&mut self, c: Cell, v: Value) -> bool {
        let i = self.intern(c);
        let r = self.find(i);
        match &self.pinned[r] {
            Some(existing) if *existing != v => false,
            _ => {
                self.pinned[r] = Some(v);
                true
            }
        }
    }

    /// The pinned value of a cell's class, if any.
    pub fn pinned_value(&mut self, c: Cell) -> Option<Value> {
        let i = self.intern(c);
        let r = self.find(i);
        self.pinned[r].clone()
    }

    /// Are two cells in the same class?
    pub fn same(&mut self, a: Cell, b: Cell) -> bool {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.find(ia) == self.find(ib)
    }

    /// Group all interned cells by class root.
    pub fn groups(&mut self) -> Vec<(Vec<Cell>, Option<Value>)> {
        let cells: Vec<(Cell, usize)> = self.ids.iter().map(|(c, &i)| (*c, i)).collect();
        let mut by_root: GroupBy<usize, Vec<Cell>> = GroupBy::new();
        for (c, i) in cells {
            let r = self.find(i);
            let h = root_hash(r);
            by_root.entry_mut(h, |k| *k == r, || (r, Vec::new())).push(c);
        }
        let mut out: Vec<(Vec<Cell>, Option<Value>)> = by_root
            .into_entries()
            .map(|(_, r, mut cells)| {
                cells.sort();
                (cells, self.pinned[r].clone())
            })
            .collect();
        out.sort();
        out
    }

    /// Resolve the target value of a class: the pinned constant if any,
    /// otherwise the member value minimising total weighted change cost
    /// (weighted plurality under the distance metric).
    pub fn resolve_value(
        cells: &[Cell],
        pinned: &Option<Value>,
        table: &Table,
        cost: &CostModel,
    ) -> Value {
        if let Some(v) = pinned {
            return v.clone();
        }
        // Candidates = distinct current values of member cells.
        let mut candidates: Vec<Value> = Vec::new();
        let mut current: Vec<(Cell, Value)> = Vec::new();
        for &c in cells {
            // Single-cell fetch straight from the column — no row
            // materialisation per member cell.
            if let Ok(v) = table.value_at(c.0, c.1) {
                if !candidates.contains(v) {
                    candidates.push(v.clone());
                }
                current.push((c, v.clone()));
            }
        }
        candidates.sort();
        let mut best: Option<(f64, Value)> = None;
        for cand in candidates {
            let total: f64 = current
                .iter()
                .map(|((t, a), v)| cost.weight(*t, *a) * value_distance(v, &cand))
                .sum();
            match &best {
                Some((b, _)) if *b <= total => {}
                _ => best = Some((total, cand)),
            }
        }
        best.map(|(_, v)| v).unwrap_or(Value::Null)
    }

    /// Resolve the target value of every class in `groups`, sharding the
    /// per-class cost scans across `jobs` scoped threads.
    ///
    /// Each class resolves independently ([`EquivClasses::resolve_value`]
    /// only reads the table and cost model), so the group list is split
    /// into contiguous chunks, one worker per chunk, and the per-chunk
    /// results concatenate in chunk order — the returned vector is
    /// positionally aligned with `groups` and *identical* to what a
    /// sequential loop computes, at any shard count. This is the repair
    /// counterpart of the detection sharding in
    /// `revival_detect::parallel`.
    pub fn resolve_targets(
        groups: &[(Vec<Cell>, Option<Value>)],
        table: &Table,
        cost: &CostModel,
        jobs: usize,
    ) -> Vec<Value> {
        let resolve_chunk = |chunk: &[(Vec<Cell>, Option<Value>)]| -> Vec<Value> {
            chunk
                .iter()
                .map(|(cells, pinned)| Self::resolve_value(cells, pinned, table, cost))
                .collect()
        };
        if jobs <= 1 || groups.len() <= 1 {
            return resolve_chunk(groups);
        }
        let chunk_size = groups.len().div_ceil(jobs).max(1);
        std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || resolve_chunk(chunk)))
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("resolve worker panicked")).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_relation::{Schema, Type};

    fn cell(t: u64, a: usize) -> Cell {
        (TupleId(t), a)
    }

    #[test]
    fn union_find_basic() {
        let mut eq = EquivClasses::new();
        assert!(!eq.same(cell(0, 0), cell(1, 0)));
        eq.union(cell(0, 0), cell(1, 0));
        assert!(eq.same(cell(0, 0), cell(1, 0)));
        eq.union(cell(1, 0), cell(2, 0));
        assert!(eq.same(cell(0, 0), cell(2, 0)));
        assert!(!eq.same(cell(0, 0), cell(0, 1)));
    }

    #[test]
    fn pin_conflicts_detected() {
        let mut eq = EquivClasses::new();
        assert!(eq.pin(cell(0, 0), "x".into()));
        assert!(eq.pin(cell(0, 0), "x".into()));
        assert!(!eq.pin(cell(0, 0), "y".into()));
        // Union with a differently-pinned class fails.
        assert!(eq.pin(cell(1, 0), "y".into()));
        assert!(!eq.union(cell(0, 0), cell(1, 0)));
        // Union propagates pins.
        eq.union(cell(2, 0), cell(3, 0));
        assert!(eq.pin(cell(2, 0), "z".into()));
        assert_eq!(eq.pinned_value(cell(3, 0)), Some("z".into()));
    }

    #[test]
    fn groups_partition_cells() {
        let mut eq = EquivClasses::new();
        eq.union(cell(0, 0), cell(1, 0));
        eq.pin(cell(2, 1), "c".into());
        let groups = eq.groups();
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(|(c, _)| c.len()).collect();
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&1));
    }

    #[test]
    fn resolve_prefers_plurality() {
        let s = Schema::builder("r").attr("a", Type::Str).build();
        let mut t = Table::new(s);
        let i0 = t.push(vec!["main st".into()]).unwrap();
        let i1 = t.push(vec!["main st".into()]).unwrap();
        let i2 = t.push(vec!["maim st".into()]).unwrap();
        let cost = CostModel::uniform(1);
        let cells = vec![(i0, 0), (i1, 0), (i2, 0)];
        let v = EquivClasses::resolve_value(&cells, &None, &t, &cost);
        assert_eq!(v, Value::from("main st"));
    }

    #[test]
    fn resolve_respects_pin_and_weights() {
        let s = Schema::builder("r").attr("a", Type::Str).build();
        let mut t = Table::new(s);
        let i0 = t.push(vec!["aaa".into()]).unwrap();
        let i1 = t.push(vec!["bbb".into()]).unwrap();
        let cells = vec![(i0, 0), (i1, 0)];
        let mut cost = CostModel::uniform(1);
        // Pin wins outright.
        let v = EquivClasses::resolve_value(&cells, &Some("ccc".into()), &t, &cost);
        assert_eq!(v, Value::from("ccc"));
        // Heavier cell drags the class to its value.
        cost.set_cell_weight(i1, 0, 10.0);
        let v = EquivClasses::resolve_value(&cells, &None, &t, &cost);
        assert_eq!(v, Value::from("bbb"));
    }

    #[test]
    fn sharded_resolution_matches_sequential() {
        let s = Schema::builder("r").attr("a", Type::Str).build();
        let mut t = Table::new(s);
        let mut ids = Vec::new();
        for i in 0..60 {
            ids.push(t.push(vec![Value::str(format!("v{}", i % 7))]).unwrap());
        }
        // 20 classes of 3 cells each, one pinned.
        let groups: Vec<(Vec<Cell>, Option<Value>)> = ids
            .chunks(3)
            .enumerate()
            .map(|(g, c)| {
                let pinned = if g == 4 { Some(Value::from("pinned")) } else { None };
                (c.iter().map(|&id| (id, 0)).collect(), pinned)
            })
            .collect();
        let cost = CostModel::uniform(1);
        let sequential = EquivClasses::resolve_targets(&groups, &t, &cost, 1);
        for jobs in [2, 3, 4, 7, 32] {
            assert_eq!(
                EquivClasses::resolve_targets(&groups, &t, &cost, jobs),
                sequential,
                "jobs={jobs}"
            );
        }
        assert_eq!(sequential[4], Value::from("pinned"));
    }
}
