//! `IncRepair` — repairing a delta against a clean, trusted base.
//!
//! The setting of Cong et al. §5 (and the tutorial's open problem §6d):
//! the base instance already satisfies the suite; a batch of new tuples
//! arrives; repair *only the new tuples* so the combined instance is
//! consistent. The base is authoritative — conflicts between a delta
//! tuple and a base group resolve toward the base value. Cost is
//! `O(|Δ|)` expected (hash probes per delta tuple), versus re-running
//! [`crate::BatchRepair`] over base+delta — the crossover measured in
//! experiment E6.

use crate::batch::{BatchRepair, RepairOptions};
use crate::cost::CostModel;
use revival_constraints::cfd::merge_by_embedded_fd;
use revival_constraints::pattern::PatternValue;
use revival_constraints::Cfd;
use revival_relation::{Result, Table, TupleId, Value};
use std::collections::HashMap;

/// Statistics from an incremental repair.
#[derive(Clone, Debug, Default)]
pub struct IncStats {
    /// Delta tuples edited.
    pub tuples_edited: usize,
    /// Individual cell edits.
    pub cells_changed: usize,
    /// Total weighted cost of the edits.
    pub cost: f64,
}

/// Incremental repairer holding per-CFD group state of the base.
pub struct IncRepair {
    cfds: Vec<Cfd>,
    cost: CostModel,
    /// Per CFD: LHS key → canonical RHS value (from base, extended by
    /// accepted delta tuples).
    groups: Vec<HashMap<Vec<Value>, Value>>,
}

impl IncRepair {
    /// Build from a suite and the clean base table.
    ///
    /// The constructor indexes the base once (`O(|base| · |Σ|)`); each
    /// subsequent [`IncRepair::repair_tuple`] is `O(|Σ|)` expected.
    pub fn new(cfds: &[Cfd], base: &Table, cost: CostModel) -> Self {
        Self::new_excluding(cfds, base, cost, &std::collections::HashSet::new())
    }

    /// Like [`IncRepair::new`], but skip `exclude` tuples when indexing
    /// the base. A streaming session repairs its pending delta *in
    /// place* inside the same table the base lives in — excluding the
    /// pending ids keeps the base authoritative (a dirty pending tuple
    /// never becomes its group's canonical value) without cloning the
    /// table.
    pub fn new_excluding(
        cfds: &[Cfd],
        base: &Table,
        cost: CostModel,
        exclude: &std::collections::HashSet<TupleId>,
    ) -> Self {
        let cfds = merge_by_embedded_fd(cfds);
        let mut groups: Vec<HashMap<Vec<Value>, Value>> = Vec::with_capacity(cfds.len());
        for cfd in &cfds {
            let mut map = HashMap::new();
            if cfd.variable_rows().next().is_some() {
                for (id, row) in base.rows() {
                    if exclude.contains(&id) {
                        continue;
                    }
                    let key: Vec<Value> = cfd.lhs.iter().map(|&a| row[a].clone()).collect();
                    map.entry(key).or_insert_with(|| row[cfd.rhs].clone());
                }
            }
            groups.push(map);
        }
        IncRepair { cfds, cost, groups }
    }

    /// The merged suite.
    pub fn cfds(&self) -> &[Cfd] {
        &self.cfds
    }

    /// Repair one incoming tuple in place so that base ∪ accepted ∪
    /// {tuple} stays consistent, then absorb it into the group state.
    ///
    /// Returns the number of cells edited.
    pub fn repair_tuple(&mut self, id: TupleId, row: &mut [Value], stats: &mut IncStats) {
        let mut edited = false;
        // Iterate to a local fixpoint: fixing one CFD can affect another.
        for _ in 0..self.cfds.len() + 2 {
            let mut changed = false;
            for (cfd, groups) in self.cfds.iter().zip(&self.groups) {
                // Constant rows first.
                if let Some(tp_idx) = cfd.constant_violation(row) {
                    let tp = &cfd.tableau[tp_idx];
                    if let PatternValue::Const(c) = &tp.rhs {
                        let old = row[cfd.rhs].clone();
                        stats.cost += self.cost.change_cost(id, cfd.rhs, &old, c);
                        row[cfd.rhs] = c.clone();
                        stats.cells_changed += 1;
                        changed = true;
                        edited = true;
                    }
                }
                // Variable rows: conform to the group's canonical value.
                if cfd.variable_rows().next().is_none() {
                    continue;
                }
                let key: Vec<Value> = cfd.lhs.iter().map(|&a| row[a].clone()).collect();
                let applies = cfd.variable_rows().any(|tp| tp.lhs_matches(&key));
                if !applies {
                    continue;
                }
                if let Some(canon) = groups.get(&key) {
                    if row[cfd.rhs] != *canon {
                        let old = row[cfd.rhs].clone();
                        stats.cost += self.cost.change_cost(id, cfd.rhs, &old, canon);
                        row[cfd.rhs] = canon.clone();
                        stats.cells_changed += 1;
                        changed = true;
                        edited = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Absorb into group state so later deltas see this tuple.
        for (cfd, groups) in self.cfds.iter().zip(&mut self.groups) {
            if cfd.variable_rows().next().is_none() {
                continue;
            }
            let key: Vec<Value> = cfd.lhs.iter().map(|&a| row[a].clone()).collect();
            groups.entry(key).or_insert_with(|| row[cfd.rhs].clone());
        }
        if edited {
            stats.tuples_edited += 1;
        }
    }

    /// Repair a whole delta batch against the base, appending the
    /// repaired tuples to `base` and returning stats.
    pub fn repair_delta(
        cfds: &[Cfd],
        base: &mut Table,
        delta: Vec<Vec<Value>>,
        cost: CostModel,
    ) -> IncStats {
        let mut inc = IncRepair::new(cfds, base, cost);
        let mut stats = IncStats::default();
        for (i, mut row) in delta.into_iter().enumerate() {
            inc.repair_tuple(TupleId(base.len() as u64 + i as u64), &mut row, &mut stats);
            base.push_unchecked(row);
        }
        stats
    }

    /// Repair a delta, falling back to [`BatchRepair`] when the delta is
    /// at least as large as the base — the E6 crossover, where indexing
    /// the base per-delta-tuple stops paying for itself. The fallback
    /// runs a whole-table pass over base ∪ delta with `options`
    /// (inheriting its shard count), so a large delta gets the sharded
    /// repair engine instead of the tuple-at-a-time path.
    ///
    /// Unlike the pure incremental path, the batch fallback may also
    /// edit *base* cells (the base loses its authoritative status once
    /// the delta outweighs it); its edits are reported in the same
    /// [`IncStats`] shape.
    pub fn repair_delta_auto(
        cfds: &[Cfd],
        base: &mut Table,
        delta: Vec<Vec<Value>>,
        cost: CostModel,
        options: &RepairOptions,
    ) -> Result<IncStats> {
        // Reject malformed suites on *both* paths — the incremental path
        // has no detection step to catch them, and a bad tableau row
        // would otherwise zip-truncate and match too broadly.
        cfds.iter().try_for_each(Cfd::validate)?;
        if delta.len() < base.len().max(1) {
            return Ok(Self::repair_delta(cfds, base, delta, cost));
        }
        // Batch fallback on a scratch copy: `base` is only replaced once
        // the repair has succeeded, so an error leaves it untouched.
        let mut combined = base.clone();
        for row in delta {
            combined.push_unchecked(row);
        }
        let repairer = BatchRepair::new(cfds, cost).with_options(options.clone());
        let (fixed, batch) = repairer.repair(&combined)?;
        let mut stats =
            IncStats { tuples_edited: 0, cells_changed: batch.cells_changed, cost: batch.cost };
        for (id, row) in combined.rows() {
            if fixed.get(id).is_ok_and(|rep| rep != row) {
                stats.tuples_edited += 1;
            }
        }
        *base = fixed;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_constraints::parser::parse_cfds;
    use revival_detect::native::satisfies;
    use revival_relation::{Schema, Type};

    fn schema() -> Schema {
        Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("ac", Type::Str)
            .attr("street", Type::Str)
            .attr("city", Type::Str)
            .attr("zip", Type::Str)
            .build()
    }

    fn suite(s: &Schema) -> Vec<Cfd> {
        parse_cfds(
            "customer([cc='44', zip] -> [street])\n\
             customer([cc='01', ac='908'] -> [city='mh'])",
            s,
        )
        .unwrap()
    }

    fn base() -> Table {
        let mut t = Table::new(schema());
        t.push(vec!["44".into(), "131".into(), "Crichton".into(), "edi".into(), "EH8".into()])
            .unwrap();
        t.push(vec!["01".into(), "908".into(), "Mtn".into(), "mh".into(), "07974".into()]).unwrap();
        t
    }

    #[test]
    fn delta_conforms_to_base_group() {
        let s = schema();
        let cfds = suite(&s);
        let mut table = base();
        let delta = vec![vec![
            Value::from("44"),
            Value::from("131"),
            Value::from("Mayfield"), // conflicts with base street for EH8
            Value::from("edi"),
            Value::from("EH8"),
        ]];
        let stats = IncRepair::repair_delta(&cfds, &mut table, delta, CostModel::uniform(5));
        assert!(satisfies(&table, &cfds));
        assert_eq!(stats.tuples_edited, 1);
        // The delta tuple took the base's street.
        let last = table.rows().last().unwrap().1;
        assert_eq!(last[2], Value::from("Crichton"));
    }

    #[test]
    fn constant_rule_enforced_on_delta() {
        let s = schema();
        let cfds = suite(&s);
        let mut table = base();
        let delta = vec![vec![
            Value::from("01"),
            Value::from("908"),
            Value::from("Elm"),
            Value::from("nyc"), // must become mh
            Value::from("07975"),
        ]];
        IncRepair::repair_delta(&cfds, &mut table, delta, CostModel::uniform(5));
        assert!(satisfies(&table, &cfds));
        let last = table.rows().last().unwrap().1;
        assert_eq!(last[3], Value::from("mh"));
    }

    #[test]
    fn delta_vs_delta_conflicts_resolved() {
        let s = schema();
        let cfds = suite(&s);
        let mut table = base();
        // Two delta tuples in a *new* group conflicting with each other:
        // the first becomes canonical, the second conforms.
        let delta = vec![
            vec![
                Value::from("44"),
                Value::from("131"),
                Value::from("High St"),
                Value::from("edi"),
                Value::from("G1"),
            ],
            vec![
                Value::from("44"),
                Value::from("131"),
                Value::from("Low St"),
                Value::from("edi"),
                Value::from("G1"),
            ],
        ];
        IncRepair::repair_delta(&cfds, &mut table, delta, CostModel::uniform(5));
        assert!(satisfies(&table, &cfds));
        let rows: Vec<_> = table.rows().map(|(_, r)| r).collect();
        assert_eq!(rows[2][2], rows[3][2]);
        assert_eq!(rows[2][2], Value::from("High St"));
    }

    #[test]
    fn excluded_tuples_never_become_canonical() {
        let s = schema();
        let cfds = suite(&s);
        let mut table = base();
        // A dirty tuple already sits *inside* the table (the streaming
        // pending-delta case): excluded from indexing, it must conform
        // to the base's street rather than anchor its own.
        let dirty = table
            .push(vec!["44".into(), "131".into(), "Mayfield".into(), "edi".into(), "EH8".into()])
            .unwrap();
        let exclude = std::collections::HashSet::from([dirty]);
        let mut inc = IncRepair::new_excluding(&cfds, &table, CostModel::uniform(5), &exclude);
        let mut row = table.get(dirty).unwrap();
        let mut stats = IncStats::default();
        inc.repair_tuple(dirty, &mut row, &mut stats);
        assert_eq!(row[2], Value::from("Crichton"));
        assert_eq!(stats.cells_changed, 1);
        // An excluded tuple in a group no base row covers anchors the
        // group itself and stays unchanged.
        let mut t2 = base();
        let d2 = t2
            .push(vec!["44".into(), "131".into(), "Dirty".into(), "edi".into(), "G77".into()])
            .unwrap();
        let exclude = std::collections::HashSet::from([d2]);
        let mut inc = IncRepair::new_excluding(&cfds, &t2, CostModel::uniform(5), &exclude);
        let mut row = t2.get(d2).unwrap();
        inc.repair_tuple(d2, &mut row, &mut IncStats::default());
        assert_eq!(row[2], Value::from("Dirty"));
    }

    #[test]
    fn clean_delta_untouched() {
        let s = schema();
        let cfds = suite(&s);
        let mut table = base();
        let delta = vec![vec![
            Value::from("44"),
            Value::from("131"),
            Value::from("Crichton"),
            Value::from("edi"),
            Value::from("EH8"),
        ]];
        let stats = IncRepair::repair_delta(&cfds, &mut table, delta, CostModel::uniform(5));
        assert_eq!(stats.cells_changed, 0);
        assert_eq!(stats.cost, 0.0);
    }

    #[test]
    fn auto_delegates_to_batch_when_delta_dominates() {
        let s = schema();
        let cfds = suite(&s);
        // Tiny base, large conflicting delta → batch fallback.
        let mut table = base();
        let delta: Vec<Vec<Value>> = (0..4)
            .map(|i| {
                vec![
                    Value::from("44"),
                    Value::from("131"),
                    Value::str(format!("Street{i}")), // all conflict on zip G9
                    Value::from("edi"),
                    Value::from("G9"),
                ]
            })
            .collect();
        let opts = RepairOptions { jobs: 2, ..Default::default() };
        let stats =
            IncRepair::repair_delta_auto(&cfds, &mut table, delta, CostModel::uniform(5), &opts)
                .unwrap();
        assert!(satisfies(&table, &cfds));
        assert_eq!(table.len(), 6);
        assert!(stats.tuples_edited >= 3, "conflicting group must be coerced: {stats:?}");
        // Small delta stays on the incremental path (base untouched).
        let mut table2 = base();
        let small = vec![vec![
            Value::from("44"),
            Value::from("131"),
            Value::from("Mayfield"),
            Value::from("edi"),
            Value::from("EH8"),
        ]];
        let st =
            IncRepair::repair_delta_auto(&cfds, &mut table2, small, CostModel::uniform(5), &opts)
                .unwrap();
        assert!(satisfies(&table2, &cfds));
        assert_eq!(st.tuples_edited, 1);
        assert_eq!(table2.rows().last().unwrap().1[2], Value::from("Crichton"));
    }

    #[test]
    fn auto_rejects_malformed_suites_and_leaves_base_intact() {
        use revival_constraints::pattern::{PatternRow, PatternValue};
        let s = schema();
        let mut cfds = suite(&s);
        cfds[0].tableau.push(PatternRow::new(vec![PatternValue::Wildcard], PatternValue::Wildcard));
        let opts = RepairOptions::default();
        let dirty_row = vec![
            Value::from("44"),
            Value::from("131"),
            Value::from("Mayfield"),
            Value::from("edi"),
            Value::from("EH8"),
        ];
        // Both the small-delta (incremental) and large-delta (batch
        // fallback) paths return the typed error without touching base.
        for delta_size in [1usize, 5] {
            let mut table = base();
            let before = table.clone();
            let delta = vec![dirty_row.clone(); delta_size];
            let got = IncRepair::repair_delta_auto(
                &cfds,
                &mut table,
                delta,
                CostModel::uniform(5),
                &opts,
            );
            assert!(
                matches!(got, Err(revival_relation::Error::MalformedPattern { .. })),
                "delta_size={delta_size}: {got:?}"
            );
            assert_eq!(table.len(), before.len(), "base grew on error (delta_size={delta_size})");
            assert_eq!(table.diff_cells(&before), 0);
        }
    }

    #[test]
    fn cascading_constant_then_variable() {
        let s = schema();
        // Fixing city to 'mh' (constant) changes the (city)→street group
        // the tuple belongs to — the local fixpoint loop must handle it.
        let cfds = parse_cfds(
            "customer([cc='01', ac='908'] -> [city='mh'])\n\
             customer([city] -> [street])",
            &s,
        )
        .unwrap();
        let mut table = Table::new(s);
        table
            .push(vec!["44".into(), "1".into(), "CanonSt".into(), "mh".into(), "Z".into()])
            .unwrap();
        let delta = vec![vec![
            Value::from("01"),
            Value::from("908"),
            Value::from("OtherSt"),
            Value::from("nyc"),
            Value::from("Z2"),
        ]];
        IncRepair::repair_delta(&cfds, &mut table, delta, CostModel::uniform(5));
        assert!(satisfies(&table, &cfds));
        let last = table.rows().last().unwrap().1;
        assert_eq!(last[3], Value::from("mh"));
        assert_eq!(last[2], Value::from("CanonSt"));
    }
}
