//! # revival-repair
//!
//! Constraint repair — finding a database that satisfies a CFD suite and
//! *minimally differs* from the dirty original. This is the repairing
//! half of the Semandaq prototype (§5 of the paper): *"given a set of
//! cfds and a dirty database, it finds a candidate repair that minimally
//! differs from the original data and satisfies the cfds"*, implementing
//! the cost-based heuristic of Cong et al. (VLDB 2007).
//!
//! Finding a minimum repair is NP-complete already for plain FDs, so the
//! algorithm is a cost-guided heuristic built on three ideas:
//!
//! 1. **cell-level edits** — repairs change attribute values, never
//!    insert/delete whole tuples;
//! 2. **equivalence classes** — cells forced equal by variable CFDs are
//!    merged (union-find) and resolved *together* to the value that
//!    minimises total weighted change cost;
//! 3. **cost model** — changing value `v` to `w` costs
//!    `weight(cell) · dist(v, w)` with a normalised edit distance, so
//!    plausible small fixes are preferred.
//!
//! [`BatchRepair`] repairs a whole table; [`IncRepair`] repairs only a
//! delta against an already-clean base (experiment E6), delegating to
//! the batch engine when the delta outweighs the base
//! ([`IncRepair::repair_delta_auto`]). Both guarantee the output
//! satisfies the suite (they fall back to pattern-breaking fresh values
//! if cost-guided resolution stalls; see
//! [`batch::RepairStats::forced_resolutions`]).
//!
//! Repair passes shard across threads ([`batch::RepairOptions::jobs`]):
//! detection dispatches through `revival_detect`'s parallel [`Detector`]
//! engine and equivalence-class resolution splits its per-class cost
//! scans across `std::thread::scope` workers, with a deterministic
//! chunk-order merge — the repaired table and [`RepairStats`] are
//! byte-identical to the sequential pass at any shard count
//! (`tests/repair_parity.rs`).
//!
//! [`Detector`]: revival_detect::Detector

pub mod batch;
pub mod confidence;
pub mod cost;
pub mod eqclass;
pub mod incremental;

pub use batch::{BatchRepair, RepairOptions, RepairStats};
pub use confidence::{suspicion_weights, ConfidenceOptions};
pub use cost::CostModel;
pub use incremental::{IncRepair, IncStats};
