//! The record matcher: blocking + RCK evaluation + quality scoring.
//!
//! Matching all `|card| × |billing|` pairs is quadratic, so candidate
//! pairs come from **blocking**: tuples sharing a block key (exact
//! phone, or Soundex of the last name) are compared, others are not.
//! Each candidate pair is accepted iff *some* RCK's components all hold
//! under the attribute comparators. Quality is scored against ground
//! truth as precision/recall over pairs (experiment E8).

use crate::rck::RelativeCandidateKey;
use crate::rules::Cmp;
use crate::similarity::{address_similar, jaro_winkler, name_similar, normalize_address, soundex};
use revival_relation::{Table, TupleId, Value};
use std::collections::{BTreeSet, HashMap};

/// How one attribute pair is compared.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Comparator {
    /// Plain value equality.
    Exact,
    /// Person-name comparator: case-insensitive equality → `=`;
    /// nickname or high Jaro-Winkler → `≈`.
    PersonName,
    /// Address comparator: abbreviation-normalised equality → `=`;
    /// high JW on normalised forms → `≈`.
    Address,
    /// Digits-only equality for phone numbers.
    Phone,
    /// Jaro-Winkler: equality → `=`, similarity ≥ threshold → `≈`.
    JaroWinkler(f64),
}

impl Comparator {
    /// Evidence produced by comparing two values: the strongest
    /// [`Cmp`] that holds, or `None`.
    pub fn compare(&self, a: &Value, b: &Value) -> Option<Cmp> {
        let (sa, sb) = match (a.as_str(), b.as_str()) {
            (Some(x), Some(y)) => (x, y),
            _ => return if a == b && !a.is_null() { Some(Cmp::Equal) } else { None },
        };
        match self {
            Comparator::Exact => (sa == sb).then_some(Cmp::Equal),
            Comparator::PersonName => {
                if sa.eq_ignore_ascii_case(sb) {
                    Some(Cmp::Equal)
                } else if name_similar(sa, sb) {
                    Some(Cmp::Similar)
                } else {
                    None
                }
            }
            Comparator::Address => {
                if normalize_address(sa) == normalize_address(sb) {
                    Some(Cmp::Equal)
                } else if address_similar(sa, sb) {
                    Some(Cmp::Similar)
                } else {
                    None
                }
            }
            Comparator::Phone => {
                let digits =
                    |s: &str| -> String { s.chars().filter(char::is_ascii_digit).collect() };
                (digits(sa) == digits(sb)).then_some(Cmp::Equal)
            }
            Comparator::JaroWinkler(th) => {
                if sa == sb {
                    Some(Cmp::Equal)
                } else if jaro_winkler(sa, sb) >= *th {
                    Some(Cmp::Similar)
                } else {
                    None
                }
            }
        }
    }
}

/// One attribute pair the matcher can compare.
#[derive(Clone, Debug)]
pub struct AttributePair {
    /// Name used by rules/RCKs (e.g. `"addr"`).
    pub name: String,
    /// Attribute position in the left (card) relation.
    pub left: usize,
    /// Attribute position in the right (billing) relation.
    pub right: usize,
    pub comparator: Comparator,
}

impl AttributePair {
    /// Build one binding.
    pub fn new(name: &str, left: usize, right: usize, comparator: Comparator) -> Self {
        AttributePair { name: name.into(), left, right, comparator }
    }
}

/// Blocking strategy: which attribute pairs produce block keys, and how.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockKey {
    /// Block on the exact value.
    Exact,
    /// Block on the Soundex code (names).
    Soundex,
    /// Block on digits only (phones).
    Digits,
}

/// Match quality against ground truth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatchQuality {
    pub precision: f64,
    pub recall: f64,
    pub found: usize,
    pub true_matches: usize,
}

impl MatchQuality {
    /// Harmonic mean.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }

    /// Score a found pair set against truth.
    pub fn score(
        found: &BTreeSet<(TupleId, TupleId)>,
        truth: &BTreeSet<(TupleId, TupleId)>,
    ) -> MatchQuality {
        let correct = found.intersection(truth).count();
        MatchQuality {
            precision: if found.is_empty() { 1.0 } else { correct as f64 / found.len() as f64 },
            recall: if truth.is_empty() { 1.0 } else { correct as f64 / truth.len() as f64 },
            found: found.len(),
            true_matches: truth.len(),
        }
    }
}

/// RCK-based record matcher across two relations.
pub struct RecordMatcher {
    pairs: Vec<AttributePair>,
    rcks: Vec<RelativeCandidateKey>,
    blocking: Vec<(String, BlockKey)>,
}

impl RecordMatcher {
    /// Build a matcher; `blocking` lists `(pair name, key kind)`.
    pub fn new(
        pairs: Vec<AttributePair>,
        rcks: Vec<RelativeCandidateKey>,
        blocking: Vec<(&str, BlockKey)>,
    ) -> Self {
        RecordMatcher {
            pairs,
            rcks,
            blocking: blocking.into_iter().map(|(n, k)| (n.to_string(), k)).collect(),
        }
    }

    fn pair(&self, name: &str) -> Option<&AttributePair> {
        self.pairs.iter().find(|p| p.name == name)
    }

    fn block_key(kind: BlockKey, v: &Value) -> Option<String> {
        let s = v.as_str()?;
        Some(match kind {
            BlockKey::Exact => s.to_string(),
            BlockKey::Soundex => soundex(s),
            BlockKey::Digits => s.chars().filter(char::is_ascii_digit).collect(),
        })
    }

    /// Candidate pairs from the union of all blocking keys.
    pub fn candidates(&self, left: &Table, right: &Table) -> BTreeSet<(TupleId, TupleId)> {
        let mut out = BTreeSet::new();
        for (name, kind) in &self.blocking {
            let Some(pair) = self.pair(name) else { continue };
            let mut buckets: HashMap<String, Vec<TupleId>> = HashMap::new();
            for (id, row) in right.rows() {
                if let Some(k) = Self::block_key(*kind, &row[pair.right]) {
                    buckets.entry(k).or_default().push(id);
                }
            }
            for (lid, row) in left.rows() {
                if let Some(k) = Self::block_key(*kind, &row[pair.left]) {
                    if let Some(rids) = buckets.get(&k) {
                        for &rid in rids {
                            out.insert((lid, rid));
                        }
                    }
                }
            }
        }
        out
    }

    /// Does a concrete tuple pair satisfy some RCK?
    pub fn pair_matches(&self, left_row: &[Value], right_row: &[Value]) -> bool {
        self.rcks.iter().any(|rck| {
            rck.components.iter().all(|(name, required)| {
                self.pair(name)
                    .and_then(|p| p.comparator.compare(&left_row[p.left], &right_row[p.right]))
                    .map(|have| have.satisfies(*required))
                    .unwrap_or(false)
            })
        })
    }

    /// Run the matcher: blocking, then RCK evaluation per candidate.
    pub fn run(&self, left: &Table, right: &Table) -> BTreeSet<(TupleId, TupleId)> {
        let mut matches = BTreeSet::new();
        for (lid, rid) in self.candidates(left, right) {
            let (Ok(lrow), Ok(rrow)) = (left.get(lid), right.get(rid)) else { continue };
            if self.pair_matches(&lrow, &rrow) {
                matches.insert((lid, rid));
            }
        }
        matches
    }

    /// Exhaustive (no-blocking) variant — the ablation baseline showing
    /// what blocking saves (quadratic!).
    pub fn run_exhaustive(&self, left: &Table, right: &Table) -> BTreeSet<(TupleId, TupleId)> {
        let mut matches = BTreeSet::new();
        // Materialise the right side once; the quadratic pass compares
        // against the same rows every iteration.
        let right_rows: Vec<(TupleId, Vec<Value>)> = right.rows().collect();
        for (lid, lrow) in left.rows() {
            for (rid, rrow) in &right_rows {
                if self.pair_matches(&lrow, rrow) {
                    matches.insert((lid, *rid));
                }
            }
        }
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rck::RelativeCandidateKey;
    use revival_relation::{Schema, Type};

    fn tables() -> (Table, Table) {
        let card = Schema::builder("card")
            .attr("fname", Type::Str)
            .attr("lname", Type::Str)
            .attr("addr", Type::Str)
            .attr("phn", Type::Str)
            .attr("email", Type::Str)
            .build();
        let billing = card.attributes().to_vec();
        let billing = Schema::new("billing", billing);
        let mut c = Table::new(card);
        c.push(vec![
            "robert".into(),
            "smith".into(),
            "10 Mountain Avenue".into(),
            "555-1234".into(),
            "rob@x.com".into(),
        ])
        .unwrap();
        c.push(vec![
            "alice".into(),
            "jones".into(),
            "5 Church Street".into(),
            "555-9999".into(),
            "alice@x.com".into(),
        ])
        .unwrap();
        let mut b = Table::new(billing);
        // bob smith: diminutive + abbreviated address; phone matches.
        b.push(vec![
            "bob".into(),
            "smith".into(),
            "10 Mountain Ave".into(),
            "5551234".into(),
            "different@y.com".into(),
        ])
        .unwrap();
        // unrelated person.
        b.push(vec![
            "carol".into(),
            "wong".into(),
            "9 High St".into(),
            "555-0000".into(),
            "carol@z.com".into(),
        ])
        .unwrap();
        (c, b)
    }

    fn pairs() -> Vec<AttributePair> {
        vec![
            AttributePair::new("fname", 0, 0, Comparator::PersonName),
            AttributePair::new("lname", 1, 1, Comparator::JaroWinkler(0.9)),
            AttributePair::new("addr", 2, 2, Comparator::Address),
            AttributePair::new("phn", 3, 3, Comparator::Phone),
            AttributePair::new("email", 4, 4, Comparator::Exact),
        ]
    }

    fn rck2() -> RelativeCandidateKey {
        RelativeCandidateKey::new(&[
            ("lname", Cmp::Equal),
            ("phn", Cmp::Equal),
            ("fname", Cmp::Similar),
        ])
    }

    #[test]
    fn comparators_produce_graded_evidence() {
        let name = Comparator::PersonName;
        assert_eq!(name.compare(&"Robert".into(), &"robert".into()), Some(Cmp::Equal));
        assert_eq!(name.compare(&"robert".into(), &"bob".into()), Some(Cmp::Similar));
        assert_eq!(name.compare(&"robert".into(), &"alice".into()), None);
        let addr = Comparator::Address;
        assert_eq!(
            addr.compare(&"10 Mountain Avenue".into(), &"10 mountain ave".into()),
            Some(Cmp::Equal)
        );
        let phone = Comparator::Phone;
        assert_eq!(phone.compare(&"555-1234".into(), &"5551234".into()), Some(Cmp::Equal));
    }

    #[test]
    fn rck_matcher_finds_varied_pair() {
        let (card, billing) = tables();
        let m = RecordMatcher::new(
            pairs(),
            vec![rck2()],
            vec![("phn", BlockKey::Digits), ("lname", BlockKey::Soundex)],
        );
        let found = m.run(&card, &billing);
        assert!(found.contains(&(TupleId(0), TupleId(0))), "bob smith must match");
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn exact_baseline_misses_varied_pair() {
        let (card, billing) = tables();
        // Baseline: all-equal RCK over fname/lname/addr with exact ops.
        let exact_pairs = vec![
            AttributePair::new("fname", 0, 0, Comparator::Exact),
            AttributePair::new("lname", 1, 1, Comparator::Exact),
            AttributePair::new("addr", 2, 2, Comparator::Exact),
        ];
        let key = RelativeCandidateKey::new(&[
            ("fname", Cmp::Equal),
            ("lname", Cmp::Equal),
            ("addr", Cmp::Equal),
        ]);
        let m = RecordMatcher::new(exact_pairs, vec![key], vec![("lname", BlockKey::Exact)]);
        let found = m.run(&card, &billing);
        assert!(found.is_empty(), "exact matcher cannot see through variations");
    }

    #[test]
    fn blocking_agrees_with_exhaustive_here() {
        let (card, billing) = tables();
        let m = RecordMatcher::new(
            pairs(),
            vec![rck2()],
            vec![("phn", BlockKey::Digits), ("lname", BlockKey::Soundex)],
        );
        assert_eq!(m.run(&card, &billing), m.run_exhaustive(&card, &billing));
    }

    #[test]
    fn quality_scoring() {
        let truth: BTreeSet<_> = [(TupleId(0), TupleId(0)), (TupleId(1), TupleId(5))].into();
        let found: BTreeSet<_> = [(TupleId(0), TupleId(0)), (TupleId(9), TupleId(9))].into();
        let q = MatchQuality::score(&found, &truth);
        assert_eq!(q.precision, 0.5);
        assert_eq!(q.recall, 0.5);
        assert!((q.f1() - 0.5).abs() < 1e-12);
        // Empty found = perfect precision, zero recall.
        let q = MatchQuality::score(&BTreeSet::new(), &truth);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 0.0);
    }
}
