//! Matching rules and the deduction relation behind RCK derivation.
//!
//! A matching rule (§4) has the form *"if these attribute pairs compare
//! (by `=` or `≈`), then those attribute pairs refer to the same
//! value"*. Rules speak about attribute *pairs* `(card attr, billing
//! attr)`; we name pairs by the card-side attribute name since the
//! paper's pairs are homonymous (`[addr], [addr]`).

use std::collections::BTreeSet;
use std::fmt;

/// How a premise compares an attribute pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cmp {
    /// `≈` — similarity (threshold fixed by the attribute's comparator).
    Similar,
    /// `=` — equality. Stronger than [`Cmp::Similar`]: values that are
    /// equal are in particular similar.
    Equal,
}

impl Cmp {
    /// Does evidence of strength `self` satisfy a premise requiring
    /// `required`? (`Equal` evidence satisfies a `Similar` premise.)
    pub fn satisfies(&self, required: Cmp) -> bool {
        *self >= required
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cmp::Equal => write!(f, "="),
            Cmp::Similar => write!(f, "~"),
        }
    }
}

/// A premise: attribute pair `name` compares at least as strongly as
/// `cmp`.
pub type Premise = (String, Cmp);

/// A matching rule: if all premises hold, the `conclusions` attribute
/// pairs *semantically match* (they refer to the same real-world value,
/// which counts as `=`-strength evidence in further deductions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchingRule {
    pub premises: Vec<Premise>,
    pub conclusions: Vec<String>,
}

impl MatchingRule {
    /// Build a rule from `(attr, cmp)` premises and concluded attrs.
    pub fn new(premises: &[(&str, Cmp)], conclusions: &[&str]) -> Self {
        MatchingRule {
            premises: premises.iter().map(|(a, c)| (a.to_string(), *c)).collect(),
            conclusions: conclusions.iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl fmt::Display for MatchingRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps: Vec<String> = self.premises.iter().map(|(a, c)| format!("{a}{c}{a}")).collect();
        write!(f, "{} => {}", ps.join(" AND "), self.conclusions.join(", "))
    }
}

/// The paper's three card/billing rules.
pub fn paper_rules() -> Vec<MatchingRule> {
    vec![
        // (a) phn match → addr refers to the same address.
        MatchingRule::new(&[("phn", Cmp::Equal)], &["addr"]),
        // (b) email match → fn, ln match.
        MatchingRule::new(&[("email", Cmp::Equal)], &["fname", "lname"]),
        // (c) ln, addr identical ∧ fn similar → the whole of Y matches.
        MatchingRule::new(
            &[("lname", Cmp::Equal), ("addr", Cmp::Equal), ("fname", Cmp::Similar)],
            &["fname", "lname", "addr", "phn", "email"],
        ),
    ]
}

/// Deduction: given initial comparison evidence (attr → strength),
/// compute every attribute pair that must semantically match.
///
/// Semantic matches derived by a rule count as `Equal`-strength evidence
/// for later rules (two fields referring to the same real-world value
/// satisfy both `=` and `≈` premises).
pub fn deduce(evidence: &[(String, Cmp)], rules: &[MatchingRule]) -> BTreeSet<String> {
    let mut matched: BTreeSet<String> = BTreeSet::new();
    let strength = |attr: &str, matched: &BTreeSet<String>| -> Option<Cmp> {
        if matched.contains(attr) {
            return Some(Cmp::Equal);
        }
        evidence.iter().filter(|(a, _)| a == attr).map(|(_, c)| *c).max()
    };
    let mut changed = true;
    while changed {
        changed = false;
        for rule in rules {
            let holds = rule.premises.iter().all(|(attr, req)| {
                strength(attr, &matched).map(|s| s.satisfies(*req)).unwrap_or(false)
            });
            if holds {
                for c in &rule.conclusions {
                    if matched.insert(c.clone()) {
                        changed = true;
                    }
                }
            }
        }
    }
    matched
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_strength() {
        assert!(Cmp::Equal.satisfies(Cmp::Similar));
        assert!(Cmp::Equal.satisfies(Cmp::Equal));
        assert!(Cmp::Similar.satisfies(Cmp::Similar));
        assert!(!Cmp::Similar.satisfies(Cmp::Equal));
    }

    #[test]
    fn paper_deduction_rck1() {
        // email= and addr= should derive all of Y (the rck1 chain).
        let rules = paper_rules();
        let evidence = vec![("email".to_string(), Cmp::Equal), ("addr".to_string(), Cmp::Equal)];
        let m = deduce(&evidence, &rules);
        for attr in ["fname", "lname", "addr", "phn", "email"] {
            assert!(m.contains(attr), "missing {attr}");
        }
    }

    #[test]
    fn paper_deduction_rck2() {
        // ln=, phn=, fn≈ derive Y: phn= gives addr (rule a), then rule c.
        let rules = paper_rules();
        let evidence = vec![
            ("lname".to_string(), Cmp::Equal),
            ("phn".to_string(), Cmp::Equal),
            ("fname".to_string(), Cmp::Similar),
        ];
        let m = deduce(&evidence, &rules);
        for attr in ["fname", "lname", "addr", "phn", "email"] {
            assert!(m.contains(attr), "missing {attr}");
        }
    }

    #[test]
    fn insufficient_evidence_derives_little() {
        let rules = paper_rules();
        // fn≈ alone fires nothing.
        let m = deduce(&[("fname".to_string(), Cmp::Similar)], &rules);
        assert!(m.is_empty());
        // phn= fires only rule (a).
        let m = deduce(&[("phn".to_string(), Cmp::Equal)], &rules);
        assert_eq!(m.into_iter().collect::<Vec<_>>(), vec!["addr".to_string()]);
    }

    #[test]
    fn similar_premise_not_satisfied_by_nothing() {
        // ln=, addr≈ (not =) does NOT fire rule (c).
        let rules = paper_rules();
        let evidence = vec![
            ("lname".to_string(), Cmp::Equal),
            ("addr".to_string(), Cmp::Similar),
            ("fname".to_string(), Cmp::Similar),
        ];
        let m = deduce(&evidence, &rules);
        assert!(!m.contains("phn"));
    }

    #[test]
    fn display_rule() {
        let r = MatchingRule::new(&[("phn", Cmp::Equal)], &["addr"]);
        assert_eq!(r.to_string(), "phn=phn => addr");
    }
}
