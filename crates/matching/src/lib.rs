//! # revival-matching
//!
//! Object identification (§4 of the paper): deciding when tuples from
//! two relations refer to the same real-world entity, via **relative
//! candidate keys** (RCKs) derived from matching rules.
//!
//! The paper's running scenario: `card(…)` and `billing(…)` feeds must
//! agree on the holder attributes `Y = [fn, ln, addr, phn, email]`.
//! Given domain matching rules —
//!
//! * (a) if `phn` matches then `addr` refers to the same address,
//! * (b) if `email` matches then `fn, ln` match,
//! * (c) if `ln, addr` are identical and `fn` is *similar* then `Y`
//!   matches,
//!
//! — one can *deduce* compact keys such as
//! `rck1 = ([email, addr] ‖ [=, =])` and
//! `rck2 = ([ln, phn, fn] ‖ [=, =, ≈])`: checking an RCK suffices to
//! conclude a full `Y` match. Derived RCKs find true matches the
//! original rules alone would miss on dirty pairs (experiment E8).
//!
//! Modules: [`similarity`] (edit distance, Jaro-Winkler, q-grams,
//! soundex, name/address comparators), [`rules`] (matching rules +
//! deduction), [`rck`] (RCK type + derivation), [`matcher`] (blocking
//! matcher + quality scoring).

pub mod matcher;
pub mod rck;
pub mod rules;
pub mod similarity;

pub use matcher::{MatchQuality, RecordMatcher};
pub use rck::RelativeCandidateKey;
pub use rules::{Cmp, MatchingRule};
