//! Similarity operators for record matching.
//!
//! The `≈` of §4 is attribute-kind-specific in practice; this module
//! provides the standard metrics (Levenshtein similarity, Jaro-Winkler,
//! q-gram Jaccard, Soundex) plus domain comparators for person names
//! (nickname dictionary + JW) and street addresses (abbreviation
//! normalisation + JW), the kinds the card/billing scenario needs.

/// Levenshtein edit distance (plain, no transpositions).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let sub = if a[i - 1] == b[j - 1] { 0 } else { 1 };
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + sub);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Levenshtein similarity in `[0, 1]` (1 = identical).
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 && m == 0 {
        return 1.0;
    }
    if n == 0 || m == 0 {
        return 0.0;
    }
    let window = (n.max(m) / 2).saturating_sub(1);
    let mut b_used = vec![false; m];
    let mut matches = 0usize;
    let mut a_matched = Vec::with_capacity(n);
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(m);
        let mut hit = false;
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches += 1;
                hit = true;
                break;
            }
        }
        a_matched.push(hit);
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions.
    let b_matches: Vec<char> =
        b_used.iter().zip(&b).filter_map(|(&u, &c)| if u { Some(c) } else { None }).collect();
    let mut t = 0usize;
    let mut k = 0usize;
    for (i, &ca) in a.iter().enumerate() {
        if a_matched[i] {
            if ca != b_matches[k] {
                t += 1;
            }
            k += 1;
        }
    }
    let m_f = matches as f64;
    (m_f / n as f64 + m_f / m as f64 + (m_f - t as f64 / 2.0) / m_f) / 3.0
}

/// Jaro-Winkler similarity (prefix boost `p = 0.1`, max prefix 4).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Jaccard similarity of the q-gram multisets of two strings.
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    assert!(q > 0, "q must be positive");
    let grams = |s: &str| -> Vec<String> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() < q {
            if chars.is_empty() {
                return Vec::new();
            }
            return vec![chars.iter().collect()];
        }
        (0..=chars.len() - q).map(|i| chars[i..i + q].iter().collect()).collect()
    };
    let mut ga = grams(a);
    let mut gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    ga.sort();
    gb.sort();
    // Multiset intersection via merge.
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < ga.len() && j < gb.len() {
        match ga[i].cmp(&gb[j]) {
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    let union = ga.len() + gb.len() - inter;
    inter as f64 / union as f64
}

/// American Soundex code (letter + 3 digits), empty input → `0000`.
pub fn soundex(s: &str) -> String {
    let code_of = |c: char| -> u8 {
        match c.to_ascii_lowercase() {
            'b' | 'f' | 'p' | 'v' => b'1',
            'c' | 'g' | 'j' | 'k' | 'q' | 's' | 'x' | 'z' => b'2',
            'd' | 't' => b'3',
            'l' => b'4',
            'm' | 'n' => b'5',
            'r' => b'6',
            _ => b'0', // vowels + h/w/y and non-letters
        }
    };
    let letters: Vec<char> = s.chars().filter(|c| c.is_ascii_alphabetic()).collect();
    let Some(&first) = letters.first() else { return "0000".into() };
    let mut out = String::new();
    out.push(first.to_ascii_uppercase());
    let mut prev = code_of(first);
    for &c in &letters[1..] {
        let code = code_of(c);
        let lower = c.to_ascii_lowercase();
        if code != b'0' && code != prev {
            out.push(code as char);
            if out.len() == 4 {
                break;
            }
        }
        // h/w do not reset the previous code; vowels do.
        if lower != 'h' && lower != 'w' {
            prev = code;
        }
    }
    while out.len() < 4 {
        out.push('0');
    }
    out
}

/// Nickname/diminutive dictionary (canonical → short form). A real
/// deployment ships a large table; this one covers the generator's
/// vocabulary plus common extras.
const NICKNAMES: &[(&str, &str)] = &[
    ("robert", "bob"),
    ("robert", "rob"),
    ("william", "bill"),
    ("william", "will"),
    ("elizabeth", "liz"),
    ("elizabeth", "beth"),
    ("katherine", "kate"),
    ("katherine", "kathy"),
    ("michael", "mike"),
    ("jennifer", "jen"),
    ("christopher", "chris"),
    ("patricia", "pat"),
    ("james", "jim"),
    ("margaret", "peggy"),
    ("margaret", "meg"),
    ("richard", "dick"),
    ("richard", "rick"),
    ("susan", "sue"),
    ("thomas", "tom"),
    ("joseph", "joe"),
];

/// Person-name similarity: equality, nickname pair, or high
/// Jaro-Winkler. This is the `≈` of the paper's rck2 instantiated for
/// first names.
pub fn name_similar(a: &str, b: &str) -> bool {
    let (a, b) = (a.trim().to_ascii_lowercase(), b.trim().to_ascii_lowercase());
    if a == b {
        return true;
    }
    if NICKNAMES.iter().any(|(full, nick)| (a == *full && b == *nick) || (b == *full && a == *nick))
    {
        return true;
    }
    jaro_winkler(&a, &b) >= 0.90
}

/// Street-suffix abbreviation table.
const SUFFIXES: &[(&str, &str)] = &[
    ("avenue", "ave"),
    ("street", "st"),
    ("road", "rd"),
    ("lane", "ln"),
    ("boulevard", "blvd"),
    ("drive", "dr"),
    ("place", "pl"),
    ("court", "ct"),
];

/// Normalise an address: lowercase, strip punctuation, expand suffix
/// abbreviations to the canonical long form.
pub fn normalize_address(addr: &str) -> String {
    let cleaned: String = addr
        .chars()
        .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { ' ' })
        .collect();
    cleaned
        .split_whitespace()
        .map(|tok| {
            for (full, abbr) in SUFFIXES {
                if tok == *abbr || tok == *full {
                    return (*full).to_string();
                }
            }
            tok.to_string()
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Address matching: normalised equality or high JW on the normalised
/// forms — the "refer to the same address" predicate of rule (a).
pub fn address_similar(a: &str, b: &str) -> bool {
    let (na, nb) = (normalize_address(a), normalize_address(b));
    na == nb || jaro_winkler(&na, &nb) >= 0.93
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert!((levenshtein_sim("abc", "abd") - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(levenshtein_sim("", ""), 1.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        assert!((jaro("martha", "marhta") - 0.944444).abs() < 1e-4);
        assert!((jaro_winkler("martha", "marhta") - 0.961111).abs() < 1e-4);
        assert!((jaro("dixon", "dicksonx") - 0.766667).abs() < 1e-4);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jw_bounded_and_reflexive() {
        for (a, b) in [("smith", "smyth"), ("a", "b"), ("same", "same")] {
            let s = jaro_winkler(a, b);
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(jaro_winkler("hello", "hello"), 1.0);
    }

    #[test]
    fn qgram_basics() {
        assert_eq!(qgram_jaccard("abc", "abc", 2), 1.0);
        assert_eq!(qgram_jaccard("abc", "xyz", 2), 0.0);
        let s = qgram_jaccard("night", "nacht", 2);
        assert!(s > 0.0 && s < 0.5);
        assert_eq!(qgram_jaccard("", "", 2), 1.0);
        assert_eq!(qgram_jaccard("a", "a", 2), 1.0);
    }

    #[test]
    fn soundex_known_codes() {
        assert_eq!(soundex("Robert"), "R163");
        assert_eq!(soundex("Rupert"), "R163");
        assert_eq!(soundex("Ashcraft"), "A261");
        assert_eq!(soundex("Tymczak"), "T522");
        assert_eq!(soundex("Pfister"), "P236");
        assert_eq!(soundex(""), "0000");
        assert_eq!(soundex("smith"), soundex("smyth"));
    }

    #[test]
    fn name_similarity() {
        assert!(name_similar("Robert", "bob"));
        assert!(name_similar("william", "Bill"));
        assert!(name_similar("michael", "michael"));
        assert!(name_similar("jonathan", "jonathon")); // JW path
        assert!(!name_similar("alice", "bob"));
    }

    #[test]
    fn address_similarity() {
        assert!(address_similar("10 Mountain Avenue", "10 Mountain Ave"));
        assert!(address_similar("5 Church St.", "5 church street"));
        assert!(!address_similar("10 Mountain Avenue", "99 Ocean Drive"));
        assert_eq!(normalize_address("12 Park Ln."), "12 park lane");
    }
}
