//! Relative candidate keys and their derivation from matching rules.
//!
//! An RCK `([A1, …, Ak] ‖ [op1, …, opk])` relative to `Y` asserts: if
//! two tuples compare positively on every `(Ai, opi)`, they match on all
//! of `Y`. The derivation question is: *which comparison vectors are
//! sufficient, given the rules?* — answered by closing each candidate
//! vector under [`crate::rules::deduce`] and keeping the minimal ones.

use crate::rules::{deduce, Cmp, MatchingRule};
use std::fmt;

/// A relative candidate key: attribute pairs + comparison operators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelativeCandidateKey {
    /// `(attribute-pair name, operator)`, sorted by name.
    pub components: Vec<(String, Cmp)>,
}

impl RelativeCandidateKey {
    /// Build (components get sorted for canonical form).
    pub fn new(components: &[(&str, Cmp)]) -> Self {
        let mut components: Vec<(String, Cmp)> =
            components.iter().map(|(a, c)| (a.to_string(), *c)).collect();
        components.sort();
        RelativeCandidateKey { components }
    }

    /// Does this RCK subsume `other`? It does when every requirement of
    /// `self` is implied by a requirement of `other` — i.e. `self`
    /// demands a subset of (weaker) comparisons, so whenever `other`
    /// fires, `self` fires too, making `other` redundant.
    pub fn subsumes(&self, other: &RelativeCandidateKey) -> bool {
        self.components.iter().all(|(attr, req)| {
            other.components.iter().any(|(a, have)| a == attr && have.satisfies(*req))
        })
    }
}

impl fmt::Display for RelativeCandidateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let attrs: Vec<&str> = self.components.iter().map(|(a, _)| a.as_str()).collect();
        let ops: Vec<String> = self.components.iter().map(|(_, c)| c.to_string()).collect();
        write!(f, "([{}] || [{}])", attrs.join(", "), ops.join(", "))
    }
}

/// Derive all minimal RCKs of size ≤ `max_size` over `attributes`,
/// relative to target `y`: a candidate comparison vector is an RCK iff
/// deduction from it covers every attribute of `y`.
///
/// Complexity is `O(Σ_k C(2|A|, k))` closure computations — fine for the
/// handful of holder attributes record-matching schemas carry.
pub fn derive_rcks(
    attributes: &[&str],
    y: &[&str],
    rules: &[MatchingRule],
    max_size: usize,
) -> Vec<RelativeCandidateKey> {
    // Literals: each attribute with each operator.
    let mut literals: Vec<(String, Cmp)> = Vec::new();
    for a in attributes {
        literals.push((a.to_string(), Cmp::Equal));
        literals.push((a.to_string(), Cmp::Similar));
    }
    let mut found: Vec<RelativeCandidateKey> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();

    fn covers(evidence: &[(String, Cmp)], y: &[&str], rules: &[MatchingRule]) -> bool {
        let matched = deduce(evidence, rules);
        y.iter().all(|a| {
            matched.contains(*a) || evidence.iter().any(|(e, c)| e == a && *c == Cmp::Equal)
        })
    }

    fn search(
        literals: &[(String, Cmp)],
        start: usize,
        stack: &mut Vec<usize>,
        y: &[&str],
        rules: &[MatchingRule],
        max_size: usize,
        found: &mut Vec<RelativeCandidateKey>,
    ) {
        if !stack.is_empty() {
            let evidence: Vec<(String, Cmp)> = stack.iter().map(|&i| literals[i].clone()).collect();
            // Skip candidates using the same attribute twice.
            let mut names: Vec<&str> = evidence.iter().map(|(a, _)| a.as_str()).collect();
            names.sort();
            let dup = names.windows(2).any(|w| w[0] == w[1]);
            if !dup && covers(&evidence, y, rules) {
                let rck = RelativeCandidateKey {
                    components: {
                        let mut c = evidence;
                        c.sort();
                        c
                    },
                };
                // Keep only if not subsumed by an existing (weaker) key.
                if !found.iter().any(|f| f.subsumes(&rck)) {
                    found.retain(|f| !rck.subsumes(f));
                    found.push(rck);
                }
                return; // supersets of a key are never minimal
            }
            if dup {
                return;
            }
        }
        if stack.len() == max_size {
            return;
        }
        for i in start..literals.len() {
            stack.push(i);
            search(literals, i + 1, stack, y, rules, max_size, found);
            stack.pop();
        }
    }

    search(&literals, 0, &mut stack, y, rules, max_size, &mut found);
    found.sort_by(|a, b| {
        a.components
            .len()
            .cmp(&b.components.len())
            .then_with(|| format!("{a}").cmp(&format!("{b}")))
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::paper_rules;

    const Y: &[&str] = &["fname", "lname", "addr", "phn", "email"];

    #[test]
    fn derives_paper_rcks() {
        let rcks = derive_rcks(Y, Y, &paper_rules(), 3);
        let rck1 = RelativeCandidateKey::new(&[("email", Cmp::Equal), ("addr", Cmp::Equal)]);
        let rck2 = RelativeCandidateKey::new(&[
            ("lname", Cmp::Equal),
            ("phn", Cmp::Equal),
            ("fname", Cmp::Similar),
        ]);
        assert!(rcks.contains(&rck1), "rck1 missing from {rcks:?}");
        assert!(rcks.contains(&rck2), "rck2 missing");
        // The trivial all-equal key must be subsumed away by smaller keys.
        let all_eq = RelativeCandidateKey::new(&[
            ("fname", Cmp::Equal),
            ("lname", Cmp::Equal),
            ("addr", Cmp::Equal),
            ("phn", Cmp::Equal),
            ("email", Cmp::Equal),
        ]);
        assert!(!rcks.contains(&all_eq));
    }

    #[test]
    fn minimality_no_key_subsumes_another() {
        let rcks = derive_rcks(Y, Y, &paper_rules(), 3);
        for a in &rcks {
            for b in &rcks {
                if a != b {
                    assert!(!a.subsumes(b), "{a} subsumes {b}");
                }
            }
        }
    }

    #[test]
    fn rck_with_similar_is_weaker_requirement() {
        // ([ln,phn,fn] || [=,=,≈]) subsumes ([ln,phn,fn] || [=,=,=]).
        let weak = RelativeCandidateKey::new(&[
            ("lname", Cmp::Equal),
            ("phn", Cmp::Equal),
            ("fname", Cmp::Similar),
        ]);
        let strong = RelativeCandidateKey::new(&[
            ("lname", Cmp::Equal),
            ("phn", Cmp::Equal),
            ("fname", Cmp::Equal),
        ]);
        assert!(weak.subsumes(&strong));
        assert!(!strong.subsumes(&weak));
    }

    #[test]
    fn no_rules_no_nontrivial_keys() {
        // Without rules, only full-Y equality covers Y; with max_size 3
        // over 5 attrs, nothing is derivable.
        let rcks = derive_rcks(Y, Y, &[], 3);
        assert!(rcks.is_empty());
    }

    #[test]
    fn smaller_target_derivable_directly() {
        // Y = [addr]: both addr= alone and phn= (via rule a) suffice.
        let rcks = derive_rcks(Y, &["addr"], &paper_rules(), 2);
        assert!(rcks.contains(&RelativeCandidateKey::new(&[("addr", Cmp::Equal)])));
        assert!(rcks.contains(&RelativeCandidateKey::new(&[("phn", Cmp::Equal)])));
    }

    #[test]
    fn display_formats_like_paper() {
        let rck = RelativeCandidateKey::new(&[("email", Cmp::Equal), ("addr", Cmp::Equal)]);
        assert_eq!(rck.to_string(), "([addr, email] || [=, =])");
    }
}
