//! Conflict graphs and subset-repair enumeration.

use revival_constraints::Cfd;
use revival_detect::{NativeDetector, Violation};
use revival_relation::{Table, TupleId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// The conflict structure of an instance w.r.t. a CFD suite.
///
/// * an **edge** `{t, t'}` means the two tuples cannot coexist (they
///   jointly violate a variable tableau row);
/// * a **doomed** tuple violates a constant row by itself and belongs
///   to no repair.
#[derive(Clone, Debug, Default)]
pub struct ConflictGraph {
    /// Adjacency over conflicting tuples only.
    pub edges: HashMap<TupleId, BTreeSet<TupleId>>,
    /// Tuples excluded from every repair.
    pub doomed: BTreeSet<TupleId>,
}

impl ConflictGraph {
    /// Build from an instance and suite.
    pub fn build(table: &Table, cfds: &[Cfd]) -> ConflictGraph {
        let report = NativeDetector::new(table).detect_all(cfds);
        let mut g = ConflictGraph::default();
        for v in &report.violations {
            match v {
                Violation::CfdConstant { tuple, .. } => {
                    g.doomed.insert(*tuple);
                }
                Violation::CfdVariable { cfd, tuples, .. } => {
                    let rhs = cfds[*cfd].rhs;
                    // Edges between members with *different* RHS values.
                    for (i, &a) in tuples.iter().enumerate() {
                        for &b in &tuples[i + 1..] {
                            let (Ok(ra), Ok(rb)) = (table.get(a), table.get(b)) else {
                                continue;
                            };
                            if ra[rhs] != rb[rhs] {
                                g.edges.entry(a).or_default().insert(b);
                                g.edges.entry(b).or_default().insert(a);
                            }
                        }
                    }
                }
                Violation::CindMissingWitness { .. } => {}
            }
        }
        g
    }

    /// Tuples involved in at least one conflict (edge or doom).
    pub fn conflicting_tuples(&self) -> BTreeSet<TupleId> {
        let mut s: BTreeSet<TupleId> = self.edges.keys().copied().collect();
        s.extend(self.doomed.iter().copied());
        s
    }

    /// Is the instance consistent (no conflicts at all)?
    pub fn is_consistent(&self) -> bool {
        self.edges.is_empty() && self.doomed.is_empty()
    }

    /// Is a tuple conflict-free (in every repair)?
    pub fn is_clean(&self, t: TupleId) -> bool {
        !self.doomed.contains(&t) && !self.edges.contains_key(&t)
    }

    /// Neighbors of a tuple in the conflict graph.
    pub fn neighbors(&self, t: TupleId) -> impl Iterator<Item = TupleId> + '_ {
        self.edges.get(&t).into_iter().flatten().copied()
    }
}

/// Enumerate all subset repairs (maximal consistent subsets) as sets of
/// *kept conflicting* tuples; conflict-free tuples are implicitly in
/// every repair. Stops after `cap` repairs (returns what it found).
///
/// Exponential in the number of conflicting tuples — this is the
/// semantics oracle, not the production path (that's the rewriting in
/// [`crate::certain`]).
pub fn enumerate_repairs(graph: &ConflictGraph, cap: usize) -> Vec<BTreeSet<TupleId>> {
    // Maximal independent sets over the conflict nodes minus doomed.
    let nodes: Vec<TupleId> =
        graph.edges.keys().copied().filter(|t| !graph.doomed.contains(t)).collect();
    let index: HashMap<TupleId, usize> = nodes.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let n = nodes.len();
    let mut adj: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (&t, ns) in &graph.edges {
        let Some(&i) = index.get(&t) else { continue };
        for nb in ns {
            if let Some(&j) = index.get(nb) {
                adj[i].insert(j);
            }
        }
    }
    // Bron-Kerbosch with pivoting on the *complement* clique problem,
    // expressed directly as maximal-independent-set enumeration.
    let mut out: Vec<BTreeSet<TupleId>> = Vec::new();
    let all: BTreeSet<usize> = (0..n).collect();
    fn bk(
        r: &mut Vec<usize>,
        p: BTreeSet<usize>,
        x: BTreeSet<usize>,
        adj: &[HashSet<usize>],
        nodes: &[TupleId],
        out: &mut Vec<BTreeSet<TupleId>>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if p.is_empty() && x.is_empty() {
            out.push(r.iter().map(|&i| nodes[i]).collect());
            return;
        }
        // Pivot: vertex of P∪X with most *non*-neighbours in P… for
        // independent sets, "non-neighbour" plays the role cliques give
        // to neighbours.
        let pivot = p
            .iter()
            .chain(x.iter())
            .copied()
            .max_by_key(|&u| p.iter().filter(|&&v| v != u && !adj[u].contains(&v)).count());
        let candidates: Vec<usize> = match pivot {
            Some(u) => p.iter().copied().filter(|&v| v == u || adj[u].contains(&v)).collect(),
            None => p.iter().copied().collect(),
        };
        let mut p = p;
        let mut x = x;
        for v in candidates {
            if out.len() >= cap {
                return;
            }
            r.push(v);
            let p2: BTreeSet<usize> =
                p.iter().copied().filter(|&w| w != v && !adj[v].contains(&w)).collect();
            let x2: BTreeSet<usize> = x.iter().copied().filter(|&w| !adj[v].contains(&w)).collect();
            bk(r, p2, x2, adj, nodes, out, cap);
            r.pop();
            p.remove(&v);
            x.insert(v);
        }
    }
    let mut r = Vec::new();
    bk(&mut r, all, BTreeSet::new(), &adj, &nodes, &mut out, cap);
    debug_assert!(!out.is_empty(), "at least the empty kept-set is a repair");
    out
}

/// Materialise a repair as a table: all conflict-free tuples plus the
/// kept set.
pub fn repair_table(table: &Table, graph: &ConflictGraph, kept: &BTreeSet<TupleId>) -> Table {
    let mut out = Table::new(table.schema().clone());
    for (id, row) in table.rows() {
        if graph.is_clean(id) || kept.contains(&id) {
            out.push_unchecked(row);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_constraints::parser::parse_cfds;
    use revival_relation::{Schema, Type};

    fn schema() -> Schema {
        Schema::builder("r").attr("k", Type::Str).attr("v", Type::Str).attr("w", Type::Str).build()
    }

    fn suite(s: &Schema) -> Vec<Cfd> {
        parse_cfds("r([k] -> [v])", s).unwrap()
    }

    fn table(rows: &[[&str; 3]]) -> Table {
        let mut t = Table::new(schema());
        for r in rows {
            t.push(r.iter().map(|x| (*x).into()).collect()).unwrap();
        }
        t
    }

    #[test]
    fn conflict_edges_between_disagreeing_tuples() {
        let s = schema();
        let t = table(&[
            ["a", "1", "x"],
            ["a", "2", "x"], // conflicts with t0
            ["a", "1", "y"], // agrees with t0, conflicts with t1
            ["b", "9", "z"], // clean
        ]);
        let g = ConflictGraph::build(&t, &suite(&s));
        assert!(g.edges[&TupleId(0)].contains(&TupleId(1)));
        assert!(g.edges[&TupleId(1)].contains(&TupleId(2)));
        assert!(!g.edges[&TupleId(0)].contains(&TupleId(2)));
        assert!(g.is_clean(TupleId(3)));
        assert!(!g.is_consistent());
    }

    #[test]
    fn repairs_of_two_way_conflict() {
        let s = schema();
        let t = table(&[["a", "1", "x"], ["a", "2", "x"]]);
        let g = ConflictGraph::build(&t, &suite(&s));
        let repairs = enumerate_repairs(&g, 100);
        assert_eq!(repairs.len(), 2);
        // Each repair keeps exactly one of the two.
        for r in &repairs {
            assert_eq!(r.len(), 1);
        }
    }

    #[test]
    fn multipartite_group_repairs() {
        let s = schema();
        // Group with values 1,1,2: repairs = {t0,t1} or {t2}.
        let t = table(&[["a", "1", "x"], ["a", "1", "y"], ["a", "2", "z"]]);
        let g = ConflictGraph::build(&t, &suite(&s));
        let repairs = enumerate_repairs(&g, 100);
        assert_eq!(repairs.len(), 2);
        let sizes: BTreeSet<usize> = repairs.iter().map(BTreeSet::len).collect();
        assert_eq!(sizes, [1usize, 2].into());
    }

    #[test]
    fn doomed_tuples_in_no_repair() {
        let s = schema();
        let cfds = parse_cfds("r([k='a'] -> [v='1'])", &s).unwrap();
        let t = table(&[["a", "2", "x"], ["b", "5", "y"]]);
        let g = ConflictGraph::build(&t, &cfds);
        assert!(g.doomed.contains(&TupleId(0)));
        let repairs = enumerate_repairs(&g, 100);
        assert_eq!(repairs.len(), 1);
        let full = repair_table(&t, &g, &repairs[0]);
        assert_eq!(full.len(), 1); // only the clean b tuple survives
    }

    #[test]
    fn repair_tables_are_consistent_and_maximal() {
        let s = schema();
        let cfds = suite(&s);
        let t = table(&[
            ["a", "1", "x"],
            ["a", "2", "x"],
            ["b", "3", "y"],
            ["b", "3", "z"],
            ["c", "7", "w"],
        ]);
        let g = ConflictGraph::build(&t, &cfds);
        let repairs = enumerate_repairs(&g, 100);
        assert!(!repairs.is_empty());
        for kept in &repairs {
            let rt = repair_table(&t, &g, kept);
            for cfd in &cfds {
                assert!(cfd.satisfied_by(&rt));
            }
            // Maximality: adding any excluded conflicting tuple breaks it.
            for excluded in g.conflicting_tuples() {
                if kept.contains(&excluded) || g.doomed.contains(&excluded) {
                    continue;
                }
                let mut bigger = rt.clone();
                bigger.push_unchecked(t.get(excluded).unwrap());
                assert!(
                    cfds.iter().any(|c| !c.satisfied_by(&bigger)),
                    "repair not maximal: could add {excluded}"
                );
            }
        }
    }

    #[test]
    fn consistent_instance_single_empty_repair() {
        let s = schema();
        let t = table(&[["a", "1", "x"], ["b", "2", "y"]]);
        let g = ConflictGraph::build(&t, &suite(&s));
        assert!(g.is_consistent());
        let repairs = enumerate_repairs(&g, 10);
        assert_eq!(repairs.len(), 1);
        assert!(repairs[0].is_empty());
        assert_eq!(repair_table(&t, &g, &repairs[0]).len(), 2);
    }

    #[test]
    fn cap_limits_enumeration() {
        let s = schema();
        // 4 independent two-way conflicts → 16 repairs; cap at 5.
        let t = table(&[
            ["a", "1", "x"],
            ["a", "2", "x"],
            ["b", "1", "x"],
            ["b", "2", "x"],
            ["c", "1", "x"],
            ["c", "2", "x"],
            ["d", "1", "x"],
            ["d", "2", "x"],
        ]);
        let g = ConflictGraph::build(&t, &suite(&s));
        let repairs = enumerate_repairs(&g, 5);
        assert_eq!(repairs.len(), 5);
        let all = enumerate_repairs(&g, 1000);
        assert_eq!(all.len(), 16);
    }
}
