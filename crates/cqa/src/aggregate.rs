//! Range-consistent answers for aggregate queries.
//!
//! Under inconsistency an aggregate has no single certain value;
//! Arenas et al. (and the survey \[5\] the tutorial points to) propose
//! **range semantics**: return the tightest interval `[lo, hi]` such
//! that the aggregate's value on *every* repair falls inside it.
//!
//! This module computes range answers for `COUNT(σ_pred)`:
//!
//! * exactly, when each conflict component is a clique of a single
//!   LHS-group (the complete-multipartite shape a per-relation CFD
//!   suite induces) — each group independently contributes the
//!   min/max over its admissible "kept parts";
//! * by falling back to repair enumeration (capped) otherwise.

use crate::conflict::{enumerate_repairs, repair_table, ConflictGraph};
use crate::SpQuery;
use revival_constraints::Cfd;
use revival_relation::{Table, TupleId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// The tightest `[lo, hi]` interval for `COUNT(σ_pred)` over repairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CountRange {
    pub lo: usize,
    pub hi: usize,
}

/// Compute the range-consistent `COUNT` of tuples satisfying
/// `query.predicate` (the projection of `query` is ignored — counting
/// is over tuples).
///
/// Returns `None` if the conflict structure is not group-decomposable
/// and enumeration exceeds `cap` repairs.
pub fn range_count(table: &Table, cfds: &[Cfd], query: &SpQuery, cap: usize) -> Option<CountRange> {
    let graph = ConflictGraph::build(table, cfds);
    // Base: clean tuples that satisfy the predicate are in every repair.
    let mut base = 0usize;
    let mut conflicted: Vec<TupleId> = Vec::new();
    for (id, row) in table.rows() {
        if graph.is_clean(id) {
            if query.predicate.matches(&row).unwrap_or(false) {
                base += 1;
            }
        } else if !graph.doomed.contains(&id) {
            conflicted.push(id);
        }
    }

    if let Some((lo, hi)) = decompose_groups(table, cfds, &graph, &conflicted, query) {
        return Some(CountRange { lo: base + lo, hi: base + hi });
    }

    // Fallback: enumeration.
    let repairs = enumerate_repairs(&graph, cap);
    if repairs.len() >= cap {
        return None;
    }
    let mut lo = usize::MAX;
    let mut hi = 0usize;
    for kept in &repairs {
        let rt = repair_table(table, &graph, kept);
        let n = rt.rows().filter(|(_, r)| query.predicate.matches(r).unwrap_or(false)).count();
        lo = lo.min(n);
        hi = hi.max(n);
    }
    if lo == usize::MAX {
        lo = base;
        hi = hi.max(base);
    }
    Some(CountRange { lo, hi })
}

/// Try the exact group decomposition: every conflicted tuple belongs to
/// exactly one (cfd, LHS-key) group, and repairs choose one RHS value
/// ("part") per group. Returns `(lo_extra, hi_extra)` summed over
/// groups, or `None` when tuples overlap several groups.
fn decompose_groups(
    table: &Table,
    cfds: &[Cfd],
    graph: &ConflictGraph,
    conflicted: &[TupleId],
    query: &SpQuery,
) -> Option<(usize, usize)> {
    // Assign each conflicted tuple to the (cfd, key) groups it belongs
    // to; bail out if any tuple is in more than one group (interaction).
    let mut group_of: BTreeMap<TupleId, (usize, Vec<Value>)> = BTreeMap::new();
    for &id in conflicted {
        let row = table.get(id).ok()?;
        let mut found: Option<(usize, Vec<Value>)> = None;
        for (ci, cfd) in cfds.iter().enumerate() {
            if cfd.variable_rows().next().is_none() {
                continue;
            }
            let key: Vec<Value> = cfd.lhs.iter().map(|&a| row[a].clone()).collect();
            // The tuple is "in" this group iff it conflicts with some
            // neighbour through this cfd (shares the key with it).
            let in_group = graph.neighbors(id).any(|nb| {
                table
                    .get(nb)
                    .map(|nrow| cfd.lhs.iter().all(|&a| nrow[a] == row[a]))
                    .unwrap_or(false)
            });
            if in_group {
                match &found {
                    None => found = Some((ci, key)),
                    Some((prev_ci, prev_key)) if *prev_ci == ci && *prev_key == key => {}
                    _ => return None, // overlapping groups → not decomposable
                }
            }
        }
        group_of.insert(id, found?);
    }

    // Per group: partition members by RHS value; a repair keeps exactly
    // one part. Contribute min/max matching count over parts. Each part
    // carries `(member_count, matching_count)`.
    type Parts = BTreeMap<Value, (usize, usize)>;
    let mut groups: BTreeMap<(usize, Vec<Value>), Parts> = BTreeMap::new();
    for (&id, key) in &group_of {
        let (ci, k) = key.clone();
        let row = table.get(id).ok()?;
        let rhs = cfds[ci].rhs;
        let part = groups.entry((ci, k)).or_default().entry(row[rhs].clone()).or_insert((0, 0));
        part.0 += 1;
        if query.predicate.matches(&row).unwrap_or(false) {
            part.1 += 1;
        }
    }
    let mut lo = 0usize;
    let mut hi = 0usize;
    for (_, parts) in groups {
        let matches: BTreeSet<usize> = parts.values().map(|(_, m)| *m).collect();
        lo += matches.iter().next().copied().unwrap_or(0);
        hi += matches.iter().next_back().copied().unwrap_or(0);
    }
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_constraints::parser::parse_cfds;
    use revival_relation::{Expr, Schema, Type};

    fn schema() -> Schema {
        Schema::builder("emp")
            .attr("name", Type::Str)
            .attr("dept", Type::Str)
            .attr("city", Type::Str)
            .build()
    }

    fn suite(s: &Schema) -> Vec<Cfd> {
        parse_cfds("emp([name] -> [city])", s).unwrap()
    }

    fn table(rows: &[[&str; 3]]) -> Table {
        let mut t = Table::new(schema());
        for r in rows {
            t.push(r.iter().map(|x| (*x).into()).collect()).unwrap();
        }
        t
    }

    fn q_city_edi() -> SpQuery {
        SpQuery::new(Expr::col(2).eq(Expr::lit("edi")), vec![0])
    }

    #[test]
    fn consistent_instance_tight_range() {
        let s = schema();
        let t = table(&[["a", "cs", "edi"], ["b", "cs", "gla"]]);
        let r = range_count(&t, &suite(&s), &q_city_edi(), 1000).unwrap();
        assert_eq!(r, CountRange { lo: 1, hi: 1 });
    }

    #[test]
    fn conflicting_tuple_widens_range() {
        let s = schema();
        // alice is in edi in one repair, gla in the other.
        let t = table(&[["alice", "cs", "edi"], ["alice", "cs", "gla"], ["bob", "m", "edi"]]);
        let r = range_count(&t, &suite(&s), &q_city_edi(), 1000).unwrap();
        assert_eq!(r, CountRange { lo: 1, hi: 2 });
    }

    #[test]
    fn group_with_majority_part() {
        let s = schema();
        // alice: two edi records vs one gla record → repairs keep either
        // the edi part (2 matches) or the gla part (0 matches).
        let t = table(&[["alice", "cs", "edi"], ["alice", "ee", "edi"], ["alice", "cs", "gla"]]);
        let r = range_count(&t, &suite(&s), &q_city_edi(), 1000).unwrap();
        assert_eq!(r, CountRange { lo: 0, hi: 2 });
    }

    #[test]
    fn decomposition_matches_enumeration() {
        use rand::prelude::*;
        let s = schema();
        let cfds = suite(&s);
        let mut rng = StdRng::seed_from_u64(5);
        let names = ["a", "b", "c"];
        let cities = ["edi", "gla"];
        for _ in 0..40 {
            let mut t = Table::new(s.clone());
            for _ in 0..rng.gen_range(2..9) {
                t.push(vec![
                    (*names.choose(&mut rng).unwrap()).into(),
                    "d".into(),
                    (*cities.choose(&mut rng).unwrap()).into(),
                ])
                .unwrap();
            }
            // Force the enumeration fallback by removing decomposability?
            // No — single-FD instances decompose; compare the fast path
            // against brute-force enumeration over the same graph.
            let graph = ConflictGraph::build(&t, &cfds);
            let fast = range_count(&t, &cfds, &q_city_edi(), 100_000).unwrap();
            let repairs = enumerate_repairs(&graph, 100_000);
            let mut lo = usize::MAX;
            let mut hi = 0;
            for kept in &repairs {
                let rt = repair_table(&t, &graph, kept);
                let n =
                    rt.rows().filter(|(_, r)| q_city_edi().predicate.matches(r).unwrap()).count();
                lo = lo.min(n);
                hi = hi.max(n);
            }
            assert_eq!((fast.lo, fast.hi), (lo, hi));
        }
    }

    #[test]
    fn doomed_tuples_excluded_from_counts() {
        let s = schema();
        let cfds = parse_cfds("emp([dept='cs'] -> [city='edi'])", &s).unwrap();
        // Violates the constant rule → doomed → in no repair.
        let t = table(&[["a", "cs", "gla"], ["b", "m", "edi"]]);
        let q = SpQuery::new(Expr::lit(true), vec![0]);
        let r = range_count(&t, &cfds, &q, 1000).unwrap();
        assert_eq!(r, CountRange { lo: 1, hi: 1 });
    }
}

#[cfg(test)]
mod fallback_tests {
    use super::*;
    use revival_constraints::parser::parse_cfds;
    use revival_relation::{Expr, Schema, Type};

    #[test]
    fn overlapping_constraints_fall_back_to_enumeration() {
        // Two CFDs whose conflict groups overlap on the same tuples:
        // name → city and dept → city. Tuples conflict through both,
        // so the group decomposition must refuse and enumeration kicks in.
        let s = Schema::builder("emp")
            .attr("name", Type::Str)
            .attr("dept", Type::Str)
            .attr("city", Type::Str)
            .build();
        let cfds = parse_cfds(
            "emp([name] -> [city])\n\
             emp([dept] -> [city])",
            &s,
        )
        .unwrap();
        let mut t = Table::new(s);
        for (n, d, c) in [
            ("alice", "cs", "edi"),
            ("alice", "cs", "gla"), // conflicts via name AND dept
            ("bob", "cs", "edi"),   // conflicts with t1 via dept
        ] {
            t.push(vec![n.into(), d.into(), c.into()]).unwrap();
        }
        let q = SpQuery::new(Expr::col(2).eq(Expr::lit("edi")), vec![0]);
        let r = range_count(&t, &cfds, &q, 10_000).expect("enumeration fits the cap");
        // Repairs: keep {edi-part: t0,t2} (2 matches) or {gla-part: t1}
        // (0 matches).
        assert_eq!(r, CountRange { lo: 0, hi: 2 });
        // A tiny cap forces the None path.
        assert_eq!(range_count(&t, &cfds, &q, 1), None);
    }
}
