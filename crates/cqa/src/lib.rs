//! # revival-cqa
//!
//! Consistent query answering (CQA) — *"to find an answer to a given
//! query in every repair of the original database, without editing the
//! data"* (§2 of the paper, Arenas-Bertossi-Chomicki 1999).
//!
//! Under **subset-repair** semantics, a repair is a maximal subset of
//! the instance satisfying the constraints; a *certain answer* is one
//! returned by the query on every repair, a *possible answer* on at
//! least one. This crate provides:
//!
//! * [`conflict`] — the conflict graph of an instance w.r.t. a CFD
//!   suite (nodes = tuples; edges = pairs violating a variable row;
//!   self-conflicting tuples for constant-row violations);
//! * [`conflict::enumerate_repairs`] — all subset repairs via maximal
//!   independent set enumeration (exponential — capped; the semantics
//!   oracle);
//! * [`certain`] — certain/possible answers for selection-projection
//!   queries, both by repair enumeration and by the first-order
//!   rewriting that avoids materialising repairs (the tractable path
//!   measured in experiment E10);
//! * [`aggregate`] — range-consistent answers for `COUNT` queries
//!   (tightest `[lo, hi]` over all repairs), exact for
//!   group-decomposable conflicts.

pub mod aggregate;
pub mod certain;
pub mod conflict;

pub use aggregate::{range_count, CountRange};
pub use certain::{certain_answers_enumerate, certain_answers_rewrite, possible_answers, SpQuery};
pub use conflict::{enumerate_repairs, ConflictGraph};
