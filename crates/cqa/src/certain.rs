//! Certain and possible answers for selection-projection queries.
//!
//! Two evaluation paths:
//!
//! * [`certain_answers_enumerate`] — the semantics oracle: materialise
//!   every repair (capped) and intersect the answers;
//! * [`certain_answers_rewrite`] — the first-order rewriting: an answer
//!   `x` is certain iff some non-doomed witness `t` satisfies the
//!   selection, projects to `x`, **and every conflict neighbour of `t`
//!   does too**. No repair is materialised — cost `O(n + edges)`.
//!
//! The rewriting is *sound* for arbitrary CFD conflict graphs and
//! *complete* when each conflicting tuple's component is complete
//! multipartite (the shape a single embedded FD induces) — the classic
//! tractable case of Arenas et al. Tests cross-check both paths.

use crate::conflict::{enumerate_repairs, repair_table, ConflictGraph};
use revival_constraints::Cfd;
use revival_relation::{Expr, Table, Value};
use std::collections::BTreeSet;

/// A selection-projection query `π_proj σ_pred (R)`.
#[derive(Clone, Debug)]
pub struct SpQuery {
    /// Selection predicate over the full row.
    pub predicate: Expr,
    /// Projection attribute positions.
    pub projection: Vec<usize>,
}

impl SpQuery {
    /// Build a query.
    pub fn new(predicate: Expr, projection: Vec<usize>) -> Self {
        SpQuery { predicate, projection }
    }

    /// Evaluate on a consistent table: project matching rows, dedup.
    pub fn answers(&self, table: &Table) -> BTreeSet<Vec<Value>> {
        let mut out = BTreeSet::new();
        for (_, row) in table.rows() {
            if self.predicate.matches(&row).unwrap_or(false) {
                out.insert(self.projection.iter().map(|&a| row[a].clone()).collect());
            }
        }
        out
    }
}

/// Certain answers by repair enumeration (capped). Returns `None` when
/// the cap was hit without exhausting the repair space — the caller
/// should fall back to the rewriting (a sound under-approximation) or
/// raise the cap.
pub fn certain_answers_enumerate(
    table: &Table,
    cfds: &[Cfd],
    query: &SpQuery,
    cap: usize,
) -> Option<BTreeSet<Vec<Value>>> {
    let graph = ConflictGraph::build(table, cfds);
    let repairs = enumerate_repairs(&graph, cap);
    if repairs.len() >= cap {
        return None;
    }
    let mut iter = repairs.iter();
    let first = iter.next()?;
    let mut acc = query.answers(&repair_table(table, &graph, first));
    for kept in iter {
        let answers = query.answers(&repair_table(table, &graph, kept));
        acc = acc.intersection(&answers).cloned().collect();
        if acc.is_empty() {
            break;
        }
    }
    Some(acc)
}

/// Possible answers (union over repairs, capped the same way).
pub fn possible_answers(
    table: &Table,
    cfds: &[Cfd],
    query: &SpQuery,
    cap: usize,
) -> Option<BTreeSet<Vec<Value>>> {
    let graph = ConflictGraph::build(table, cfds);
    let repairs = enumerate_repairs(&graph, cap);
    if repairs.len() >= cap {
        return None;
    }
    let mut acc = BTreeSet::new();
    for kept in &repairs {
        acc.extend(query.answers(&repair_table(table, &graph, kept)));
    }
    Some(acc)
}

/// Certain answers via first-order rewriting — no repairs materialised.
pub fn certain_answers_rewrite(
    table: &Table,
    cfds: &[Cfd],
    query: &SpQuery,
) -> BTreeSet<Vec<Value>> {
    let graph = ConflictGraph::build(table, cfds);
    let mut out = BTreeSet::new();
    'tuples: for (id, row) in table.rows() {
        if graph.doomed.contains(&id) {
            continue;
        }
        if !query.predicate.matches(&row).unwrap_or(false) {
            continue;
        }
        let x: Vec<Value> = query.projection.iter().map(|&a| row[a].clone()).collect();
        // Every conflicting alternative must yield the same answer.
        for nb in graph.neighbors(id) {
            let Ok(other) = table.get(nb) else { continue };
            if !query.predicate.matches(&other).unwrap_or(false) {
                continue 'tuples;
            }
            let y: Vec<Value> = query.projection.iter().map(|&a| other[a].clone()).collect();
            if y != x {
                continue 'tuples;
            }
        }
        out.insert(x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_constraints::parser::parse_cfds;
    use revival_relation::{Schema, Type};

    fn schema() -> Schema {
        Schema::builder("emp")
            .attr("name", Type::Str)
            .attr("dept", Type::Str)
            .attr("city", Type::Str)
            .build()
    }

    fn suite(s: &Schema) -> Vec<Cfd> {
        // name is a key for city.
        parse_cfds("emp([name] -> [city])", s).unwrap()
    }

    fn table(rows: &[[&str; 3]]) -> Table {
        let mut t = Table::new(schema());
        for r in rows {
            t.push(r.iter().map(|x| (*x).into()).collect()).unwrap();
        }
        t
    }

    /// π_dept σ_true — which departments certainly exist.
    fn q_depts() -> SpQuery {
        SpQuery::new(Expr::lit(true), vec![1])
    }

    /// π_name σ_{city='edi'}.
    fn q_names_in_edi() -> SpQuery {
        SpQuery::new(Expr::col(2).eq(Expr::lit("edi")), vec![0])
    }

    #[test]
    fn certain_answer_survives_conflict_when_projection_agrees() {
        let s = schema();
        // alice has two conflicting city records but one dept.
        let t = table(&[["alice", "cs", "edi"], ["alice", "cs", "gla"], ["bob", "math", "edi"]]);
        let cfds = suite(&s);
        let certain = certain_answers_enumerate(&t, &cfds, &q_depts(), 1000).unwrap();
        assert!(certain.contains(&vec!["cs".into()]));
        assert!(certain.contains(&vec!["math".into()]));
        // Rewriting agrees.
        assert_eq!(certain, certain_answers_rewrite(&t, &cfds, &q_depts()));
    }

    #[test]
    fn conflicting_selection_not_certain_but_possible() {
        let s = schema();
        let t = table(&[["alice", "cs", "edi"], ["alice", "cs", "gla"]]);
        let cfds = suite(&s);
        let q = q_names_in_edi();
        let certain = certain_answers_enumerate(&t, &cfds, &q, 1000).unwrap();
        assert!(certain.is_empty(), "alice is in edi only in one repair");
        let possible = possible_answers(&t, &cfds, &q, 1000).unwrap();
        assert!(possible.contains(&vec!["alice".into()]));
        assert_eq!(certain, certain_answers_rewrite(&t, &cfds, &q));
    }

    #[test]
    fn clean_tuples_always_certain() {
        let s = schema();
        let t = table(&[["bob", "math", "edi"]]);
        let cfds = suite(&s);
        let q = q_names_in_edi();
        let certain = certain_answers_rewrite(&t, &cfds, &q);
        assert!(certain.contains(&vec!["bob".into()]));
    }

    #[test]
    fn doomed_tuples_never_answer() {
        let s = schema();
        let cfds = parse_cfds("emp([dept='cs'] -> [city='edi'])", &s).unwrap();
        let t = table(&[["carol", "cs", "gla"]]); // violates the constant rule
        let q = SpQuery::new(Expr::lit(true), vec![0]);
        let certain = certain_answers_rewrite(&t, &cfds, &q);
        assert!(certain.is_empty());
        let enumd = certain_answers_enumerate(&t, &cfds, &q, 100).unwrap();
        assert!(enumd.is_empty());
    }

    #[test]
    fn rewrite_matches_enumeration_on_random_instances() {
        use rand::prelude::*;
        let s = schema();
        let cfds = suite(&s);
        let mut rng = StdRng::seed_from_u64(17);
        let names = ["a", "b", "c", "d"];
        let depts = ["x", "y"];
        let cities = ["edi", "gla", "abd"];
        for trial in 0..30 {
            let mut t = Table::new(s.clone());
            for _ in 0..rng.gen_range(2..10) {
                t.push(vec![
                    (*names.choose(&mut rng).unwrap()).into(),
                    (*depts.choose(&mut rng).unwrap()).into(),
                    (*cities.choose(&mut rng).unwrap()).into(),
                ])
                .unwrap();
            }
            for q in [q_depts(), q_names_in_edi()] {
                let enumd = certain_answers_enumerate(&t, &cfds, &q, 10_000)
                    .expect("cap generous for tiny instances");
                let rewritten = certain_answers_rewrite(&t, &cfds, &q);
                assert_eq!(enumd, rewritten, "trial {trial} diverged");
            }
        }
    }

    #[test]
    fn cap_returns_none() {
        let s = schema();
        let mut rows = Vec::new();
        // 12 independent conflicts → 4096 repairs.
        for i in 0..12 {
            rows.push([format!("n{i}"), "d".to_string(), "edi".to_string()]);
            rows.push([format!("n{i}"), "d".to_string(), "gla".to_string()]);
        }
        let mut t = Table::new(s.clone());
        for r in &rows {
            t.push(vec![r[0].as_str().into(), r[1].as_str().into(), r[2].as_str().into()]).unwrap();
        }
        let cfds = suite(&s);
        assert!(certain_answers_enumerate(&t, &cfds, &q_depts(), 100).is_none());
        // Rewriting still answers.
        let certain = certain_answers_rewrite(&t, &cfds, &q_depts());
        assert!(certain.contains(&vec!["d".into()]));
    }
}
