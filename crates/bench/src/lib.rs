//! Shared harness utilities for the experiment binaries (`exp1`–`exp13`,
//! `t1`) and the Criterion benches.
//!
//! Each binary reproduces one figure/table from the papers behind the
//! tutorial (see DESIGN.md §3 for the index and EXPERIMENTS.md for
//! recorded paper-vs-measured shapes). Binaries accept `--full` to run
//! the paper-scale sweep; the default sizes finish in seconds.

use revival_constraints::Cfd;
use revival_dirty::customer::{attrs, generate, standard_cfds, CustomerConfig, CustomerData};
use revival_dirty::noise::{inject, DirtyDataset, NoiseConfig};
use std::time::{Duration, Instant};

pub mod perf;

/// Run `f`, returning its result and wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Milliseconds as a display string with 2 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Print an aligned results table: header row + data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() && cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:>w$}", w = widths[i]));
        }
        println!("{out}");
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Did the user pass `--full`? (Paper-scale sweep vs. quick check.)
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Standard dirty-customer workload: clean generation + noise over the
/// repairable attributes, plus the standard CFD suite.
pub fn customer_workload(
    rows: usize,
    noise: f64,
    seed: u64,
) -> (CustomerData, DirtyDataset, Vec<Cfd>) {
    let data = generate(&CustomerConfig { rows, seed, ..Default::default() });
    let ds = inject(
        &data.table,
        &NoiseConfig::new(noise, vec![attrs::STREET, attrs::CITY, attrs::ZIP], seed ^ 0xd1f7),
    );
    let cfds = standard_cfds(&data.schema);
    (data, ds, cfds)
}

/// The attributes noise targets (and repair edits touch).
pub fn repairable_attrs() -> Vec<usize> {
    vec![attrs::STREET, attrs::CITY, attrs::ZIP]
}

/// Standard dirty-hospital workload (the HOSP scenario): clean
/// generation + noise over the attributes the published suites
/// constrain, plus the standard 8-CFD normal-form suite. The kernel
/// ablations in [`perf`] run here — wider rows and a larger suite than
/// the customer workload, so grouping dominates the scan.
pub fn hospital_workload(
    rows: usize,
    noise: f64,
    seed: u64,
) -> (revival_dirty::hospital::HospitalData, DirtyDataset, Vec<Cfd>) {
    use revival_dirty::hospital::{attrs as h, generate, standard_cfds, HospitalConfig};
    let data = generate(&HospitalConfig { rows, seed, ..Default::default() });
    let ds = inject(
        &data.table,
        &NoiseConfig::new(noise, vec![h::STATE, h::MEASURE_NAME, h::HNAME], seed ^ 0x405b),
    );
    let cfds = standard_cfds(&data.schema);
    (data, ds, cfds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn workload_shapes() {
        let (data, ds, cfds) = customer_workload(200, 0.05, 1);
        assert_eq!(data.table.len(), 200);
        assert!(ds.error_count() > 0);
        assert_eq!(cfds.len(), 5);
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
    }

    #[test]
    fn hospital_workload_shapes() {
        let (data, ds, cfds) = hospital_workload(300, 0.05, 1);
        assert_eq!(data.table.len(), 300);
        assert!(ds.error_count() > 0);
        assert_eq!(cfds.len(), 8, "normal-form HOSP suite");
    }
}
