//! Machine-readable detection performance measurement.
//!
//! [`measure_detection`] times the sequential engine against the
//! parallel engine (through the shared [`Detector`] trait, exactly as
//! the CLI dispatches them) on the standard dirty-customer workload,
//! and [`DetectionPerf::to_json`] renders the result as the
//! `BENCH_detection.json` record the `detection_json` bench target
//! writes — one file per run, so successive PRs accumulate a perf
//! trajectory.

use crate::{customer_workload, hospital_workload};
use revival_detect::{DetectJob, Detector, NativeEngine, ParallelEngine};
use std::time::Instant;

/// The interned-vs-clone and merged-vs-unmerged kernel ablation,
/// measured on the hospital workload at `jobs = 1` (grouping-dominated:
/// 8-attribute rows, 6 variable CFDs).
#[derive(Clone, Debug)]
pub struct KernelAblation {
    pub rows: usize,
    pub cfds: usize,
    pub merged_cfds: usize,
    /// Full-suite scan with the pre-interning reference kernel
    /// (`HashMap<Vec<Value>, _>`, one key clone + value hash per row
    /// per CFD).
    pub clone_secs: f64,
    /// The same scan through the interned kernel (the shipping
    /// `NativeEngine` path) — also the unmerged baseline of the merge
    /// ablation.
    pub interned_secs: f64,
    /// The interned scan with `DetectJob::merged` (one grouping pass
    /// per embedded FD).
    pub merged_secs: f64,
}

impl KernelAblation {
    pub fn clone_rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.clone_secs
    }

    pub fn interned_rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.interned_secs
    }

    pub fn merged_rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.merged_secs
    }

    /// Interned kernel vs. the cloning kernel (same suite, jobs=1).
    pub fn interned_speedup(&self) -> f64 {
        self.clone_secs / self.interned_secs
    }

    /// Merged tableaux vs. per-CFD passes (both on the interned kernel).
    pub fn merge_speedup(&self) -> f64 {
        self.interned_secs / self.merged_secs
    }
}

/// The columnar-storage measurement: projection scans straight on the
/// `Sym` columns vs. per-row `Value` materialisation, and `.sdq`
/// snapshot open vs. CSV re-ingest.
#[derive(Clone, Debug)]
pub struct ColumnarPerf {
    /// Rows in the hospital scan workload.
    pub scan_rows: usize,
    /// Rows in the snapshot/CSV ingest workload (dirty customer).
    pub ingest_rows: usize,
    /// Row-major baseline: materialise every row's `Value`s, compare
    /// the CFD-LHS projection value-by-value (the pre-columnar access
    /// pattern), in row-visits (rows × CFDs) per second.
    pub row_scan_rows_per_s: f64,
    /// The same projection comparisons on borrowed `Sym` column slices
    /// (`Table::proj`), no `Value` touched.
    pub scan_rows_per_s: f64,
    /// Best-of-N `Table::open_snapshot` wall time, milliseconds.
    pub snapshot_open_ms: f64,
    /// Best-of-N CSV re-parse (`csv::read_table_infer`) of the same
    /// table, milliseconds.
    pub csv_ingest_ms: f64,
}

impl ColumnarPerf {
    /// Column scan vs. row-major materialising scan.
    pub fn scan_speedup(&self) -> f64 {
        self.scan_rows_per_s / self.row_scan_rows_per_s
    }

    /// Snapshot open vs. CSV re-ingest.
    pub fn open_speedup(&self) -> f64 {
        self.csv_ingest_ms / self.snapshot_open_ms
    }
}

/// Measure [`ColumnarPerf`]: projection-equality scans over the
/// hospital kernel workload (`scan_rows`) both row-major and columnar
/// — each CFD's LHS projection is compared against the first live
/// row's, and the two paths must agree on every count — plus snapshot
/// open vs. CSV re-ingest of an `ingest_rows` dirty-customer table
/// round-tripped through a temp file.
pub fn measure_columnar(scan_rows: usize, ingest_rows: usize, samples: usize) -> ColumnarPerf {
    use revival_relation::{csv, Table, Value};

    let (_, ds, cfds) = hospital_workload(scan_rows, 0.05, 11);
    let table = &ds.dirty;
    let projections: Vec<&[usize]> = cfds.iter().map(|c| c.lhs.as_slice()).collect();

    // Row-major: materialise rows, compare projection Values.
    let (row_counts, row_secs) = best_of(samples, || {
        let mut counts = Vec::with_capacity(projections.len());
        for attrs in &projections {
            let mut rows = table.rows();
            let Some((_, first)) = rows.next() else {
                counts.push(0usize);
                continue;
            };
            let key: Vec<Value> = attrs.iter().map(|&a| first[a].clone()).collect();
            let mut n = 1usize;
            for (_, row) in rows {
                if attrs.iter().zip(&key).all(|(&a, k)| row[a] == *k) {
                    n += 1;
                }
            }
            counts.push(n);
        }
        counts
    });
    // Columnar: the same comparisons on borrowed Sym columns.
    let (col_counts, col_secs) = best_of(samples, || {
        let mut counts = Vec::with_capacity(projections.len());
        for attrs in &projections {
            let proj = table.proj(attrs);
            let mut slots = table.live_slots();
            let Some(first) = slots.next() else {
                counts.push(0usize);
                continue;
            };
            let key = proj.key_at(first);
            let mut n = 1usize;
            for slot in slots {
                if proj.matches_at(slot, &key) {
                    n += 1;
                }
            }
            counts.push(n);
        }
        counts
    });
    assert_eq!(row_counts, col_counts, "columnar scan must agree with the row-major scan");
    let visits = (scan_rows * projections.len()) as f64;

    // Snapshot open vs. CSV re-ingest of the same (larger) table.
    let (_, ids, _) = customer_workload(ingest_rows, 0.05, 11);
    let csv_text = csv::write_table(&ids.dirty);
    let sdq = std::env::temp_dir().join(format!("revival_bench_{ingest_rows}.sdq"));
    ids.dirty.save_snapshot(&sdq).expect("write bench snapshot");
    let (parsed, csv_secs) =
        best_of(samples, || csv::read_table_infer("customer", &csv_text).expect("re-ingest CSV"));
    let (opened, open_secs) =
        best_of(samples, || Table::open_snapshot(&sdq).expect("open bench snapshot"));
    assert_eq!(opened.len(), ids.dirty.len());
    assert_eq!(parsed.len(), ids.dirty.len());
    let _ = std::fs::remove_file(&sdq);

    ColumnarPerf {
        scan_rows,
        ingest_rows,
        row_scan_rows_per_s: visits / row_secs,
        scan_rows_per_s: visits / col_secs,
        snapshot_open_ms: open_secs * 1e3,
        csv_ingest_ms: csv_secs * 1e3,
    }
}

/// One sequential-vs-parallel detection measurement.
#[derive(Clone, Debug)]
pub struct DetectionPerf {
    pub rows: usize,
    pub cfds: usize,
    pub violations: usize,
    pub jobs: usize,
    /// Best-of-N wall time of the sequential (native) engine.
    pub sequential_secs: f64,
    /// Best-of-N wall time of the parallel engine at `jobs` shards.
    pub parallel_secs: f64,
    /// Hardware parallelism the measurement ran on (1 core makes any
    /// speedup number meaningless — record it so readers can tell).
    pub available_cores: usize,
    /// The hospital-workload kernel ablation.
    pub kernel: KernelAblation,
    /// The columnar-scan and snapshot-vs-CSV measurement.
    pub columnar: ColumnarPerf,
}

impl DetectionPerf {
    pub fn sequential_rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.sequential_secs
    }

    pub fn parallel_rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.parallel_secs
    }

    pub fn speedup(&self) -> f64 {
        self.sequential_secs / self.parallel_secs
    }

    /// Render as a self-describing JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"detection\",\n  \"workload\": \"dirty::customer\",\n  \
             \"rows\": {},\n  \"cfds\": {},\n  \"violations\": {},\n  \
             \"available_cores\": {},\n  \
             \"sequential\": {{ \"secs\": {:.6}, \"rows_per_sec\": {:.1} }},\n  \
             \"parallel\": {{ \"jobs\": {}, \"secs\": {:.6}, \"rows_per_sec\": {:.1} }},\n  \
             \"speedup\": {:.3},\n  \
             \"kernel\": {{ \"workload\": \"dirty::hospital\", \"jobs\": 1, \"rows\": {}, \
             \"cfds\": {}, \"merged_cfds\": {},\n    \
             \"grouped_clone_rows_per_s\": {:.1}, \"grouped_interned_rows_per_s\": {:.1}, \
             \"interned_speedup\": {:.3},\n    \
             \"unmerged_rows_per_s\": {:.1}, \"merged_rows_per_s\": {:.1}, \
             \"merge_speedup\": {:.3} }},\n  \
             \"columnar\": {{ \"scan_workload\": \"dirty::hospital\", \"scan_rows\": {}, \
             \"ingest_rows\": {},\n    \
             \"row_scan_rows_per_s\": {:.1}, \"scan_rows_per_s\": {:.1}, \
             \"scan_speedup\": {:.3},\n    \
             \"snapshot_open_ms\": {:.3}, \"csv_ingest_ms\": {:.3}, \
             \"open_speedup\": {:.3} }}\n}}\n",
            self.rows,
            self.cfds,
            self.violations,
            self.available_cores,
            self.sequential_secs,
            self.sequential_rows_per_sec(),
            self.jobs,
            self.parallel_secs,
            self.parallel_rows_per_sec(),
            self.speedup(),
            self.kernel.rows,
            self.kernel.cfds,
            self.kernel.merged_cfds,
            self.kernel.clone_rows_per_sec(),
            self.kernel.interned_rows_per_sec(),
            self.kernel.interned_speedup(),
            self.kernel.interned_rows_per_sec(),
            self.kernel.merged_rows_per_sec(),
            self.kernel.merge_speedup(),
            self.columnar.scan_rows,
            self.columnar.ingest_rows,
            self.columnar.row_scan_rows_per_s,
            self.columnar.scan_rows_per_s,
            self.columnar.scan_speedup(),
            self.columnar.snapshot_open_ms,
            self.columnar.csv_ingest_ms,
            self.columnar.open_speedup(),
        )
    }
}

/// Hardware parallelism the measurement ran on, recorded by every
/// `BENCH_*.json` emitter through this one helper. The caveat lives
/// here instead of being restated per emitter: on a single-core runner
/// any sequential-vs-parallel speedup is meaningless (the shards just
/// time-slice), so readers must check this field before comparing
/// speedup numbers across machines or CI runs.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn best_of<T>(samples: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        let v = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(v);
    }
    (out.unwrap(), best)
}

/// The pre-interning reference kernel, preserved verbatim for the
/// ablation: group by cloning a `Vec<Value>` key per row per CFD and
/// hashing the values directly — what every detection pass did before
/// the interned `GroupBy` kernel. Emits reports in the exact order the
/// shipping native engine does, so the ablation can assert byte parity.
fn detect_all_cloning(
    table: &revival_relation::Table,
    cfds: &[revival_constraints::Cfd],
) -> revival_detect::ViolationReport {
    use revival_detect::{Violation, ViolationReport};
    use revival_relation::{TupleId, Value};
    use std::collections::HashMap;

    struct Group {
        members: Vec<TupleId>,
        rhs_values: Vec<Value>,
    }
    let mut report = ViolationReport::default();
    for (idx, cfd) in cfds.iter().enumerate() {
        if cfd.constant_rows().next().is_some() {
            for (id, row) in table.rows() {
                if let Some(tp) = cfd.constant_violation(&row) {
                    report.violations.push(Violation::CfdConstant { cfd: idx, row: tp, tuple: id });
                }
            }
        }
        let var_rows: Vec<(usize, _)> =
            cfd.tableau.iter().enumerate().filter(|(_, r)| !r.is_constant_row()).collect();
        if var_rows.is_empty() {
            continue;
        }
        let mut groups: HashMap<Vec<Value>, Group> = HashMap::new();
        for (id, row) in table.rows() {
            let key: Vec<Value> = cfd.lhs.iter().map(|&a| row[a].clone()).collect();
            let g = groups
                .entry(key)
                .or_insert_with(|| Group { members: Vec::new(), rhs_values: Vec::new() });
            g.members.push(id);
            let rhs = &row[cfd.rhs];
            if !g.rhs_values.contains(rhs) {
                g.rhs_values.push(rhs.clone());
            }
        }
        let mut keyed: Vec<(&Vec<Value>, &Group)> = groups.iter().collect();
        keyed.sort_by(|a, b| a.0.cmp(b.0));
        for (key, group) in keyed {
            if group.rhs_values.len() < 2 {
                continue;
            }
            for (tp_idx, tp) in &var_rows {
                if tp.lhs_matches(key) {
                    report.violations.push(Violation::CfdVariable {
                        cfd: idx,
                        row: *tp_idx,
                        key: key.clone(),
                        tuples: group.members.clone(),
                    });
                }
            }
        }
    }
    report
}

/// The hospital-workload kernel ablation at `jobs = 1`: interned vs.
/// cloning group-by, and merged vs. per-CFD tableaux. Panics unless all
/// three paths agree on the violations — the ablation doubles as a
/// correctness check of both kernels.
pub fn measure_kernel_ablation(rows: usize, samples: usize) -> KernelAblation {
    let (_, ds, cfds) = hospital_workload(rows, 0.05, 11);
    let job = DetectJob::on_table(&ds.dirty, &cfds);
    let (clone_report, clone_secs) = best_of(samples, || detect_all_cloning(&ds.dirty, &cfds));
    let (interned_report, interned_secs) = best_of(samples, || NativeEngine.run(&job).unwrap());
    assert_eq!(
        clone_report, interned_report,
        "interned kernel must match the cloning kernel byte-for-byte"
    );
    let (merged_report, merged_secs) =
        best_of(samples, || NativeEngine.run(&job.merged(true)).unwrap());
    let (mut m, mut u) = (merged_report, interned_report.clone());
    m.normalize();
    u.normalize();
    assert_eq!(m, u, "merged run must report the unmerged violation set");
    KernelAblation {
        rows,
        cfds: cfds.len(),
        merged_cfds: revival_constraints::cfd::merge_by_embedded_fd(&cfds).len(),
        clone_secs,
        interned_secs,
        merged_secs,
    }
}

/// Time sequential vs. parallel detection on `rows` dirty-customer
/// tuples (5% noise, fixed seed), plus the hospital kernel ablation on
/// `kernel_rows` tuples. Panics if any pair of paths disagrees — the
/// benchmark doubles as a parity check.
pub fn measure_detection(
    rows: usize,
    kernel_rows: usize,
    jobs: usize,
    samples: usize,
) -> DetectionPerf {
    let (_, ds, cfds) = customer_workload(rows, 0.05, 11);
    let job = DetectJob::on_table(&ds.dirty, &cfds);
    let (seq_report, sequential_secs) = best_of(samples, || NativeEngine.run(&job).unwrap());
    let parallel = ParallelEngine::new(jobs);
    let (par_report, parallel_secs) = best_of(samples, || parallel.run(&job).unwrap());
    assert_eq!(seq_report, par_report, "parallel engine must match sequential byte-for-byte");
    DetectionPerf {
        rows,
        cfds: cfds.len(),
        violations: seq_report.len(),
        jobs: parallel.jobs(),
        sequential_secs,
        parallel_secs,
        available_cores: available_cores(),
        kernel: measure_kernel_ablation(kernel_rows, samples),
        columnar: measure_columnar(kernel_rows, rows, samples),
    }
}

/// One sequential-vs-sharded [`BatchRepair`] measurement — the repair
/// counterpart of [`DetectionPerf`], rendered as `BENCH_repair.json`.
#[derive(Clone, Debug)]
pub struct RepairPerf {
    pub rows: usize,
    pub cfds: usize,
    pub violations_before: usize,
    pub cells_changed: usize,
    pub jobs: usize,
    /// Best-of-N wall time of the sequential repair (`jobs = 1`).
    pub sequential_secs: f64,
    /// Best-of-N wall time of the sharded repair at `jobs` shards.
    pub parallel_secs: f64,
    pub available_cores: usize,
}

impl RepairPerf {
    pub fn sequential_rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.sequential_secs
    }

    pub fn parallel_rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.parallel_secs
    }

    pub fn speedup(&self) -> f64 {
        self.sequential_secs / self.parallel_secs
    }

    /// Render as a self-describing JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"repair\",\n  \"workload\": \"dirty::customer\",\n  \
             \"rows\": {},\n  \"cfds\": {},\n  \"violations_before\": {},\n  \
             \"cells_changed\": {},\n  \"available_cores\": {},\n  \
             \"sequential\": {{ \"secs\": {:.6}, \"rows_per_sec\": {:.1} }},\n  \
             \"parallel\": {{ \"jobs\": {}, \"secs\": {:.6}, \"rows_per_sec\": {:.1} }},\n  \
             \"speedup\": {:.3}\n}}\n",
            self.rows,
            self.cfds,
            self.violations_before,
            self.cells_changed,
            self.available_cores,
            self.sequential_secs,
            self.sequential_rows_per_sec(),
            self.jobs,
            self.parallel_secs,
            self.parallel_rows_per_sec(),
            self.speedup(),
        )
    }
}

/// Time sequential vs. sharded [`BatchRepair`] on `rows` dirty-customer
/// tuples (5% noise, fixed seed). Panics if the sharded repair diverges
/// from the sequential one — the benchmark doubles as a parity check.
pub fn measure_repair(rows: usize, jobs: usize, samples: usize) -> RepairPerf {
    use revival_repair::{BatchRepair, CostModel};

    let (data, ds, cfds) = customer_workload(rows, 0.05, 11);
    let job = DetectJob::on_table(&ds.dirty, &cfds);
    let violations_before = NativeEngine.run(&job).unwrap().len();
    let sequential = BatchRepair::new(&cfds, CostModel::uniform(data.schema.arity()));
    let (seq_out, sequential_secs) = best_of(samples, || sequential.repair(&ds.dirty).unwrap());
    let sharded =
        BatchRepair::new(&cfds, CostModel::uniform(data.schema.arity())).with_jobs(jobs.max(2));
    let (par_out, parallel_secs) = best_of(samples, || sharded.repair(&ds.dirty).unwrap());
    assert_eq!(seq_out.1, par_out.1, "sharded repair stats must match sequential");
    assert_eq!(
        seq_out.0.diff_cells(&par_out.0),
        0,
        "sharded repair table must match sequential byte-for-byte"
    );
    RepairPerf {
        rows,
        cfds: cfds.len(),
        violations_before,
        cells_changed: seq_out.1.cells_changed,
        jobs: jobs.max(2),
        sequential_secs,
        parallel_secs,
        available_cores: available_cores(),
    }
}

/// One incremental-vs-rescan streaming measurement — the delta
/// maintenance counterpart of [`DetectionPerf`], rendered as
/// `BENCH_stream.json`. `batches` models `semandaq watch` poll rounds:
/// after each batch of appended rows the live violation count is read,
/// either from the maintained delta state or by a full re-detection.
#[derive(Clone, Debug)]
pub struct StreamPerf {
    pub base_rows: usize,
    pub delta_rows: usize,
    pub batches: usize,
    pub cfds: usize,
    pub violations_final: usize,
    /// Best-of-N wall time for the delta session (incremental).
    pub incremental_secs: f64,
    /// Best-of-N wall time for per-batch full rescans (native engine).
    pub rescan_secs: f64,
    pub available_cores: usize,
}

impl StreamPerf {
    pub fn incremental_rows_per_sec(&self) -> f64 {
        self.delta_rows as f64 / self.incremental_secs
    }

    pub fn rescan_rows_per_sec(&self) -> f64 {
        self.delta_rows as f64 / self.rescan_secs
    }

    pub fn speedup(&self) -> f64 {
        self.rescan_secs / self.incremental_secs
    }

    /// Render as a self-describing JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"stream\",\n  \"workload\": \"dirty::customer\",\n  \
             \"base_rows\": {},\n  \"delta_rows\": {},\n  \"batches\": {},\n  \
             \"cfds\": {},\n  \"violations_final\": {},\n  \"available_cores\": {},\n  \
             \"incremental\": {{ \"secs\": {:.6}, \"delta_rows_per_sec\": {:.1} }},\n  \
             \"rescan\": {{ \"secs\": {:.6}, \"delta_rows_per_sec\": {:.1} }},\n  \
             \"speedup\": {:.3}\n}}\n",
            self.base_rows,
            self.delta_rows,
            self.batches,
            self.cfds,
            self.violations_final,
            self.available_cores,
            self.incremental_secs,
            self.incremental_rows_per_sec(),
            self.rescan_secs,
            self.rescan_rows_per_sec(),
            self.speedup(),
        )
    }
}

/// Time processing `delta_rows` appended dirty-customer tuples in
/// `batches` poll rounds over a `base_rows` base: a
/// [`revival_stream::DeltaSession`] maintaining state per insert versus
/// a full [`NativeEngine`] re-detection per batch. Session setup (the
/// base bulk-load) happens outside the timed region — both sides start
/// from a loaded base. Panics if the maintained report diverges from
/// the final full scan — the benchmark doubles as a parity check.
pub fn measure_stream(
    base_rows: usize,
    delta_rows: usize,
    batches: usize,
    samples: usize,
) -> StreamPerf {
    use revival_relation::Table;
    use revival_stream::DeltaSession;

    let (_, ds, cfds) = customer_workload(base_rows + delta_rows, 0.05, 11);
    let mut base = Table::new(ds.dirty.schema().clone());
    let mut delta: Vec<Vec<revival_relation::Value>> = Vec::with_capacity(delta_rows);
    for (i, (_, row)) in ds.dirty.rows().enumerate() {
        if i < base_rows {
            base.push_unchecked(row);
        } else {
            delta.push(row);
        }
    }
    let batch_size = delta.len().div_ceil(batches.max(1)).max(1);

    let mut incremental_secs = f64::INFINITY;
    let mut inc_report = None;
    for _ in 0..samples.max(1) {
        let mut session = DeltaSession::new(1);
        session.register(base.clone(), cfds.clone()).expect("register base");
        let start = Instant::now();
        for batch in delta.chunks(batch_size) {
            for row in batch {
                session.insert("customer", row.clone()).expect("insert delta row");
            }
            let _ = session.violation_count().expect("live count");
        }
        incremental_secs = incremental_secs.min(start.elapsed().as_secs_f64());
        assert_eq!(session.stats().rescans, 0, "trickle inserts must never rescan");
        inc_report = Some(session.report().expect("session report"));
    }

    let mut rescan_secs = f64::INFINITY;
    let mut scan_report = None;
    for _ in 0..samples.max(1) {
        let mut table = base.clone();
        let start = Instant::now();
        for batch in delta.chunks(batch_size) {
            for row in batch {
                table.push_unchecked(row.clone());
            }
            let job = DetectJob::on_table(&table, &cfds);
            scan_report = Some(NativeEngine.run(&job).expect("full rescan"));
        }
        rescan_secs = rescan_secs.min(start.elapsed().as_secs_f64());
    }

    let mut inc = inc_report.expect("at least one incremental sample");
    let mut scan = scan_report.expect("at least one rescan sample");
    inc.normalize();
    scan.normalize();
    assert_eq!(inc, scan, "maintained report must match the full rescan");
    StreamPerf {
        base_rows,
        delta_rows: delta.len(),
        batches: delta.len().div_ceil(batch_size),
        cfds: cfds.len(),
        violations_final: scan.len(),
        incremental_secs,
        rescan_secs,
        available_cores: available_cores(),
    }
}

/// One shard-count's slice of the serve-tier load measurement.
#[derive(Clone, Debug)]
pub struct ServeShardPerf {
    pub shards: usize,
    /// Whether this run fsync-logged every mutation before acking.
    pub wal: bool,
    /// Whether every client hammered one shared table (`hot`) instead
    /// of owning its own (`spread`) — the hot mode is where WAL group
    /// commit can amortize a sync across writers, since grouping is
    /// per shard.
    pub hot_table: bool,
    /// Total ops acked across every client.
    pub ops: usize,
    /// Wall time from the start barrier to the last client finishing.
    pub secs: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    /// Mutating ops in the run (registers + appends) — the denominator
    /// of [`ServeShardPerf::fsyncs_per_op`].
    pub mutation_ops: u64,
    /// WAL fsyncs observed during the run (0 when the WAL is off),
    /// read from the `wal_fsync_us` histogram as a windowed delta.
    pub fsync_count: u64,
    pub fsync_p50_us: u64,
    pub fsync_p99_us: u64,
}

impl ServeShardPerf {
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.secs
    }

    /// Fsyncs per mutating op: 1.0 is sync-per-op, below 1.0 means
    /// group commit amortized syncs across concurrent writers.
    pub fn fsyncs_per_op(&self) -> f64 {
        if self.mutation_ops == 0 {
            0.0
        } else {
            self.fsync_count as f64 / self.mutation_ops as f64
        }
    }

    fn table_mode(&self) -> &'static str {
        if self.hot_table {
            "hot"
        } else {
            "spread"
        }
    }
}

/// The serve-tier load measurement — `BENCH_serve.json`: concurrent
/// TCP clients driving `semandaq serve` in-process. The WAL-off
/// `single`/`sharded` legs give each client its own table (pricing
/// lock contention as shards grow); the `hot`/`walled` pair puts every
/// client on ONE shared table — the heavy single-table write traffic
/// where group commit can amortize the fsync — with the WAL off and on
/// respectively, so `wal_slowdown` compares like for like.
#[derive(Clone, Debug)]
pub struct ServePerf {
    pub clients: usize,
    pub ops_per_client: usize,
    pub available_cores: usize,
    /// The single-shard (global-lock) baseline, one table per client.
    pub single: ServeShardPerf,
    /// The same load over `shards = N` session shards.
    pub sharded: ServeShardPerf,
    /// Every client on one shared table, WAL off: the durability-free
    /// baseline for `wal_slowdown`.
    pub hot: ServeShardPerf,
    /// The shared-table load with `--wal`: every mutation durably
    /// group-committed before acking. `fsyncs_per_op` below 1.0 shows
    /// grouping engaged; `wal_slowdown` prices what durability still
    /// costs.
    pub walled: ServeShardPerf,
}

impl ServePerf {
    /// Sharded throughput over single-shard throughput.
    pub fn shard_speedup(&self) -> f64 {
        self.sharded.ops_per_sec() / self.single.ops_per_sec()
    }

    /// WAL-on throughput over WAL-off throughput on the shared-table
    /// workload — the fraction of throughput kept when every mutation
    /// is durable before acking.
    pub fn wal_retention(&self) -> f64 {
        self.walled.ops_per_sec() / self.hot.ops_per_sec()
    }

    /// The same ratio the readable way up: how many times slower the
    /// WAL-on run is than the WAL-off run on the same workload
    /// (`1 / wal_retention`).
    pub fn wal_slowdown(&self) -> f64 {
        self.hot.ops_per_sec() / self.walled.ops_per_sec()
    }

    /// Render as a self-describing JSON object.
    pub fn to_json(&self) -> String {
        let side = |s: &ServeShardPerf| {
            format!(
                "{{ \"shards\": {}, \"wal\": {}, \"table_mode\": \"{}\", \"ops\": {}, \
                 \"secs\": {:.6}, \
                 \"ops_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
                 \"mutation_ops\": {}, \"fsync_count\": {}, \"fsyncs_per_op\": {:.3}, \
                 \"wal_fsync_p50_us\": {}, \"wal_fsync_p99_us\": {} }}",
                s.shards,
                s.wal,
                s.table_mode(),
                s.ops,
                s.secs,
                s.ops_per_sec(),
                s.p50_us,
                s.p99_us,
                s.mutation_ops,
                s.fsync_count,
                s.fsyncs_per_op(),
                s.fsync_p50_us,
                s.fsync_p99_us,
            )
        };
        format!(
            "{{\n  \"benchmark\": \"serve\",\n  \
             \"workload\": \"3:1 append:count; spread legs: one table per client, \
             hot legs: one shared table\",\n  \
             \"clients\": {},\n  \"ops_per_client\": {},\n  \"available_cores\": {},\n  \
             \"single\": {},\n  \"sharded\": {},\n  \"hot\": {},\n  \"walled\": {},\n  \
             \"shard_speedup\": {:.3},\n  \"wal_retention\": {:.3},\n  \
             \"wal_slowdown\": {:.3}\n}}\n",
            self.clients,
            self.ops_per_client,
            self.available_cores,
            side(&self.single),
            side(&self.sharded),
            side(&self.hot),
            side(&self.walled),
            self.shard_speedup(),
            self.wal_retention(),
            self.wal_slowdown(),
        )
    }
}

/// Drive one in-process [`revival_stream::Server`] with `clients`
/// concurrent TCP connections: register before the start barrier, then
/// `ops_per_client` timed ops per client (three appends, then a live
/// count, repeating). With `shared_table` every client appends to one
/// table `hot` (registered once, up front) — all mutations route to
/// one shard, the workload where WAL group commit can amortize its
/// fsync; otherwise each client owns table `t<i>`. Returns total
/// throughput and per-op latency percentiles. The worker pool pins one
/// connection per worker, so the pool is sized `clients + 1` (the `+
/// 1` takes the shutdown connection).
fn run_serve_load(
    shards: usize,
    clients: usize,
    ops_per_client: usize,
    wal: bool,
    shared_table: bool,
) -> ServeShardPerf {
    use revival_stream::{Request, Response, ServeOptions, Server};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::sync::{Arc, Barrier};

    struct BenchClient {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
    }
    impl BenchClient {
        fn connect(addr: std::net::SocketAddr) -> BenchClient {
            let stream = TcpStream::connect(addr).expect("connect to bench server");
            let reader = BufReader::new(stream.try_clone().expect("clone stream"));
            BenchClient { stream, reader }
        }
        fn call(&mut self, req: &Request) -> Response {
            self.stream.write_all(req.to_line().as_bytes()).expect("send request");
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read response");
            Response::parse(&line).expect("parse response")
        }
    }

    // A WAL run needs a state directory for the log files; the fsync
    // cost it measures comes from the log, not the checkpoints (none
    // are taken during the timed window).
    let state = wal.then(|| {
        let mode = if shared_table { "hot" } else { "spread" };
        let dir = std::env::temp_dir()
            .join(format!("revival_bench_serve_wal_{}_{shards}_{mode}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    });
    // The WAL leg runs with a gather window on the order of one
    // fdatasync (p50 ~200us on this container), so followers collect
    // in the shadow of the in-flight sync and group commit engages —
    // the tuning README documents for write-heavy deployments.
    let opts = ServeOptions {
        jobs: 1,
        shards,
        wal,
        state: state.clone(),
        wal_group_max_wait_us: if wal { 120 } else { 0 },
        ..ServeOptions::default()
    };
    let (server, _) = Server::bind_opts("127.0.0.1:0", &opts).expect("bind bench server");
    // Windowed fsync timings: the histogram is process-global and
    // cumulative, so take a snapshot now and diff after the run.
    let fsync_hist = revival_obs::global().histogram("wal_fsync_us");
    let fsync_before = fsync_hist.snapshot();
    let addr = server.local_addr().expect("bench server addr");
    let workers = clients + 1;
    let server = std::thread::spawn(move || server.run(workers));

    if shared_table {
        // One shared table, registered up front; the setup connection
        // drops before the clients spawn, freeing its worker.
        let mut setup = BenchClient::connect(addr);
        let resp = setup.call(&Request::Register {
            table: "hot".into(),
            csv: "cc,zip,street\n44,EH8,Crichton\n".into(),
            cfds: "hot([cc, zip] -> [street])".into(),
            merged: false,
        });
        assert!(resp.is_ok(), "bench register hot: {resp:?}");
    }

    let barrier = Arc::new(Barrier::new(clients + 1));
    let joins: Vec<_> = (0..clients)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let table = if shared_table { "hot".to_string() } else { format!("t{c}") };
                let mut client = BenchClient::connect(addr);
                if !shared_table {
                    let resp = client.call(&Request::Register {
                        table: table.clone(),
                        csv: "cc,zip,street\n44,EH8,Crichton\n".into(),
                        cfds: format!("{table}([cc, zip] -> [street])"),
                        merged: false,
                    });
                    assert!(resp.is_ok(), "bench register: {resp:?}");
                }
                barrier.wait();
                let mut latencies_us = Vec::with_capacity(ops_per_client);
                for i in 0..ops_per_client {
                    let req = if i % 4 == 3 {
                        Request::Count { replica: false }
                    } else {
                        // The cc key (numeric, per the seed row's inferred
                        // schema) is offset per client so every append lands
                        // in its own pattern-match group and the violation
                        // state stays flat in both table modes.
                        Request::Append {
                            table: table.clone(),
                            row: format!("{},z{i},s{i}", c * 1_000_000 + i),
                        }
                    };
                    let start = Instant::now();
                    let resp = client.call(&req);
                    latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
                    assert!(resp.is_ok(), "bench op {i}: {resp:?}");
                }
                latencies_us
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    let mut latencies_us: Vec<f64> =
        joins.into_iter().flat_map(|j| j.join().expect("bench client thread")).collect();
    let secs = start.elapsed().as_secs_f64().max(1e-9);

    let mut shutdown = BenchClient::connect(addr);
    assert!(shutdown.call(&Request::Shutdown).is_ok());
    server.join().expect("server thread").expect("server run");

    let fsync = fsync_hist.snapshot().delta_since(&fsync_before);
    if let Some(dir) = &state {
        let _ = std::fs::remove_dir_all(dir);
    }

    latencies_us.sort_by(f64::total_cmp);
    let pct = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p).round() as usize];
    // Every op asserted Ok, so the mutation count is arithmetic: the
    // registers (one shared, or one per client) plus each client's
    // appends (every op except the `i % 4 == 3` counts).
    let registers = if shared_table { 1 } else { clients } as u64;
    let appends_per_client = (ops_per_client - ops_per_client / 4) as u64;
    let mutation_ops = registers + clients as u64 * appends_per_client;
    ServeShardPerf {
        shards,
        wal,
        hot_table: shared_table,
        ops: latencies_us.len(),
        secs,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        mutation_ops,
        fsync_count: fsync.count,
        fsync_p50_us: fsync.percentile(0.50),
        fsync_p99_us: fsync.percentile(0.99),
    }
}

/// Measure the serve tier four ways under the same client count:
/// shards=1 vs shards=`shards` with per-client tables and the WAL off
/// (isolating lock contention), then a shared-hot-table pair — WAL off
/// and WAL on — where every mutation routes to one shard.
/// `wal_slowdown` compares that pair, so it prices exactly what
/// durable group commit costs on heavy single-table write traffic; the
/// fsync latency distribution is read back from the `wal_fsync_us`
/// histogram, and `fsyncs_per_op < 1` on the WAL leg shows grouping
/// engaged.
pub fn measure_serve(clients: usize, ops_per_client: usize, shards: usize) -> ServePerf {
    let clients = clients.max(1);
    let shards = shards.max(2);
    ServePerf {
        clients,
        ops_per_client,
        available_cores: available_cores(),
        single: run_serve_load(1, clients, ops_per_client, false, false),
        sharded: run_serve_load(shards, clients, ops_per_client, false, false),
        hot: run_serve_load(shards, clients, ops_per_client, false, true),
        walled: run_serve_load(shards, clients, ops_per_client, true, true),
    }
}

/// One workload's sequential-vs-parallel discovery measurement.
#[derive(Clone, Debug)]
pub struct DiscoveryWorkloadPerf {
    pub workload: &'static str,
    pub rows: usize,
    /// Mined rules (lattice + constant, before vetting).
    pub rules: usize,
    /// Rules surviving the vetting cover.
    pub vetted: usize,
    /// Best-of-N wall time of the sequential engine.
    pub sequential_secs: f64,
    /// Best-of-N wall time of the parallel engine at `jobs` shards.
    pub parallel_secs: f64,
}

impl DiscoveryWorkloadPerf {
    pub fn sequential_rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.sequential_secs
    }

    pub fn parallel_rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.parallel_secs
    }

    pub fn speedup(&self) -> f64 {
        self.sequential_secs / self.parallel_secs
    }

    fn to_json(&self) -> String {
        format!(
            "{{ \"workload\": \"{}\", \"rows\": {}, \"rules\": {}, \"vetted\": {},\n    \
             \"sequential\": {{ \"secs\": {:.6}, \"rows_per_sec\": {:.1} }},\n    \
             \"parallel\": {{ \"secs\": {:.6}, \"rows_per_sec\": {:.1} }},\n    \
             \"speedup\": {:.3} }}",
            self.workload,
            self.rows,
            self.rules,
            self.vetted,
            self.sequential_secs,
            self.sequential_rows_per_sec(),
            self.parallel_secs,
            self.parallel_rows_per_sec(),
            self.speedup(),
        )
    }
}

/// The discovery measurement — `BENCH_discovery.json`: rows/sec of the
/// sequential vs. the parallel discovery engine (jobs=1 vs jobs=N) on
/// the dirty hospital and customer workloads, mined approximately
/// (`min_confidence < 1`) so the g3 path is exercised.
#[derive(Clone, Debug)]
pub struct DiscoveryPerf {
    pub jobs: usize,
    pub available_cores: usize,
    pub hospital: DiscoveryWorkloadPerf,
    pub customer: DiscoveryWorkloadPerf,
}

impl DiscoveryPerf {
    /// Render as a self-describing JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"discovery\",\n  \"jobs\": {},\n  \
             \"available_cores\": {},\n  \
             \"hospital\": {},\n  \"customer\": {}\n}}\n",
            self.jobs,
            self.available_cores,
            self.hospital.to_json(),
            self.customer.to_json(),
        )
    }
}

/// Mine one dirty workload sequentially and at `jobs` shards, asserting
/// the outputs are byte-identical (the benchmark doubles as the
/// discovery parity check).
fn measure_discovery_workload(
    workload: &'static str,
    table: &revival_relation::Table,
    jobs: usize,
    samples: usize,
) -> DiscoveryWorkloadPerf {
    use revival_discovery::{
        DiscoverJob, DiscoverOptions, DiscoveryEngine, ParallelDiscovery, SequentialDiscovery,
    };
    let options = DiscoverOptions { min_confidence: 0.92, ..DiscoverOptions::default() };
    let seq_job = DiscoverJob::on_table(table, options.clone());
    let (seq, sequential_secs) = best_of(samples, || SequentialDiscovery.run(&seq_job).unwrap());
    let par_job = DiscoverJob::on_table(table, DiscoverOptions { jobs, ..options });
    let (par, parallel_secs) = best_of(samples, || ParallelDiscovery.run(&par_job).unwrap());
    assert_eq!(
        format!("{:?}", seq.rules),
        format!("{:?}", par.rules),
        "parallel discovery must match sequential byte-for-byte"
    );
    assert_eq!(format!("{:?}", seq.vetted), format!("{:?}", par.vetted));
    assert_eq!(seq.stats, par.stats);
    DiscoveryWorkloadPerf {
        workload,
        rows: table.len(),
        rules: seq.rules.len(),
        vetted: seq.vetted.len(),
        sequential_secs,
        parallel_secs,
    }
}

/// Time sequential vs. parallel discovery on dirty hospital and
/// customer instances (5% noise, fixed seed). Panics if the engines
/// disagree — the benchmark doubles as a parity check.
pub fn measure_discovery(
    hospital_rows: usize,
    customer_rows: usize,
    jobs: usize,
    samples: usize,
) -> DiscoveryPerf {
    let (_, hds, _) = hospital_workload(hospital_rows, 0.05, 11);
    let (_, cds, _) = customer_workload(customer_rows, 0.05, 11);
    DiscoveryPerf {
        jobs,
        available_cores: available_cores(),
        hospital: measure_discovery_workload("dirty::hospital", &hds.dirty, jobs, samples),
        customer: measure_discovery_workload("dirty::customer", &cds.dirty, jobs, samples),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_measurement_runs_and_serialises() {
        let perf = measure_discovery(800, 600, 4, 1);
        assert_eq!(perf.jobs, 4);
        assert_eq!(perf.hospital.rows, 800);
        assert_eq!(perf.customer.rows, 600);
        assert!(perf.hospital.rules > 0, "dirty hospital must still yield rules");
        assert!(perf.hospital.vetted > 0);
        assert!(perf.hospital.sequential_secs > 0.0 && perf.hospital.parallel_secs > 0.0);
        let json = perf.to_json();
        assert!(json.contains("\"benchmark\": \"discovery\""));
        assert!(json.contains("\"workload\": \"dirty::hospital\""));
        assert!(json.contains("\"workload\": \"dirty::customer\""));
        assert!(json.contains("\"speedup\""));
    }

    #[test]
    fn serve_measurement_runs_and_serialises() {
        let perf = measure_serve(2, 16, 2);
        assert_eq!(perf.clients, 2);
        assert_eq!(perf.single.shards, 1);
        assert_eq!(perf.sharded.shards, 2);
        assert_eq!(perf.single.ops, 32);
        assert_eq!(perf.sharded.ops, 32);
        assert!(perf.single.secs > 0.0 && perf.sharded.secs > 0.0);
        assert!(perf.single.p50_us <= perf.single.p99_us);
        // Table modes: spread legs own a table per client, the hot
        // pair shares one.
        assert!(!perf.single.hot_table && !perf.sharded.hot_table);
        assert!(perf.hot.hot_table && perf.walled.hot_table);
        // The WAL-off runs fsync nothing; the WAL-on run group-commits
        // every mutation (3 appends in 4 ops, plus the register) with
        // at most one fsync each, and its percentile window must be
        // ordered.
        assert!(!perf.single.wal && !perf.sharded.wal && !perf.hot.wal && perf.walled.wal);
        assert_eq!(perf.single.fsync_count, 0);
        assert_eq!(perf.hot.fsync_count, 0);
        assert_eq!(perf.walled.ops, 32);
        // 2 clients x 12 appends + 1 shared register.
        assert_eq!(perf.walled.mutation_ops, 25);
        assert!(perf.walled.fsync_count >= 1, "{}", perf.walled.fsync_count);
        assert!(
            perf.walled.fsync_count <= perf.walled.mutation_ops,
            "group commit never syncs more than once per mutation: {} > {}",
            perf.walled.fsync_count,
            perf.walled.mutation_ops
        );
        assert!(perf.walled.fsyncs_per_op() <= 1.0);
        assert!(perf.walled.fsync_p50_us <= perf.walled.fsync_p99_us);
        let json = perf.to_json();
        assert!(json.contains("\"benchmark\": \"serve\""));
        assert!(json.contains("\"clients\": 2"));
        assert!(json.contains("\"p99_us\""));
        assert!(json.contains("\"shard_speedup\""));
        assert!(json.contains("\"wal_retention\""));
        assert!(json.contains("\"wal_slowdown\""));
        assert!(json.contains("\"fsyncs_per_op\""));
        assert!(json.contains("\"table_mode\": \"hot\""));
        assert!(json.contains("\"wal_fsync_p99_us\""));
    }

    #[test]
    fn stream_measurement_runs_and_serialises() {
        let perf = measure_stream(600, 60, 6, 1);
        assert_eq!(perf.base_rows, 600);
        assert_eq!(perf.delta_rows, 60);
        assert_eq!(perf.batches, 6);
        assert!(perf.incremental_secs > 0.0 && perf.rescan_secs > 0.0);
        let json = perf.to_json();
        assert!(json.contains("\"benchmark\": \"stream\""));
        assert!(json.contains("\"delta_rows\": 60"));
        assert!(json.contains("\"speedup\""));
    }

    #[test]
    fn repair_measurement_runs_and_serialises() {
        let perf = measure_repair(400, 4, 1);
        assert_eq!(perf.rows, 400);
        assert_eq!(perf.jobs, 4);
        assert!(perf.sequential_secs > 0.0 && perf.parallel_secs > 0.0);
        assert!(perf.violations_before > 0, "5% noise must produce violations");
        assert!(perf.cells_changed > 0, "repair must edit cells");
        let json = perf.to_json();
        assert!(json.contains("\"benchmark\": \"repair\""));
        assert!(json.contains("\"rows\": 400"));
        assert!(json.contains("\"speedup\""));
    }

    #[test]
    fn measurement_runs_and_serialises() {
        let perf = measure_detection(2_000, 1_000, 2, 1);
        assert_eq!(perf.rows, 2_000);
        assert_eq!(perf.jobs, 2);
        assert!(perf.sequential_secs > 0.0 && perf.parallel_secs > 0.0);
        assert!(perf.violations > 0, "5% noise must produce violations");
        assert_eq!(perf.kernel.rows, 1_000);
        assert_eq!(perf.kernel.cfds, 8);
        assert!(perf.kernel.merged_cfds < perf.kernel.cfds, "HOSP suite must actually merge");
        assert!(perf.kernel.clone_secs > 0.0 && perf.kernel.merged_secs > 0.0);
        let json = perf.to_json();
        assert!(json.contains("\"benchmark\": \"detection\""));
        assert!(json.contains("\"rows\": 2000"));
        assert!(json.contains("\"rows_per_sec\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"grouped_interned_rows_per_s\""));
        assert!(json.contains("\"merged_rows_per_s\""));
        assert!(json.contains("\"columnar\""));
        assert!(json.contains("\"scan_rows_per_s\""));
        assert!(json.contains("\"snapshot_open_ms\""));
        assert!(json.contains("\"csv_ingest_ms\""));
        assert!(perf.columnar.snapshot_open_ms > 0.0 && perf.columnar.csv_ingest_ms > 0.0);
    }

    #[test]
    fn kernel_ablation_parity_holds() {
        // The ablation itself asserts clone == interned byte-for-byte
        // and merged == unmerged after normalisation.
        let k = measure_kernel_ablation(800, 1);
        assert_eq!(k.cfds, 8);
        assert!(k.interned_speedup() > 0.0);
        assert!(k.merge_speedup() > 0.0);
    }
}
