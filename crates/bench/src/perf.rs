//! Machine-readable detection performance measurement.
//!
//! [`measure_detection`] times the sequential engine against the
//! parallel engine (through the shared [`Detector`] trait, exactly as
//! the CLI dispatches them) on the standard dirty-customer workload,
//! and [`DetectionPerf::to_json`] renders the result as the
//! `BENCH_detection.json` record the `detection_json` bench target
//! writes — one file per run, so successive PRs accumulate a perf
//! trajectory.

use crate::customer_workload;
use revival_detect::{DetectJob, Detector, NativeEngine, ParallelEngine};
use std::time::Instant;

/// One sequential-vs-parallel detection measurement.
#[derive(Clone, Debug)]
pub struct DetectionPerf {
    pub rows: usize,
    pub cfds: usize,
    pub violations: usize,
    pub jobs: usize,
    /// Best-of-N wall time of the sequential (native) engine.
    pub sequential_secs: f64,
    /// Best-of-N wall time of the parallel engine at `jobs` shards.
    pub parallel_secs: f64,
    /// Hardware parallelism the measurement ran on (1 core makes any
    /// speedup number meaningless — record it so readers can tell).
    pub available_cores: usize,
}

impl DetectionPerf {
    pub fn sequential_rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.sequential_secs
    }

    pub fn parallel_rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.parallel_secs
    }

    pub fn speedup(&self) -> f64 {
        self.sequential_secs / self.parallel_secs
    }

    /// Render as a self-describing JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"detection\",\n  \"workload\": \"dirty::customer\",\n  \
             \"rows\": {},\n  \"cfds\": {},\n  \"violations\": {},\n  \
             \"available_cores\": {},\n  \
             \"sequential\": {{ \"secs\": {:.6}, \"rows_per_sec\": {:.1} }},\n  \
             \"parallel\": {{ \"jobs\": {}, \"secs\": {:.6}, \"rows_per_sec\": {:.1} }},\n  \
             \"speedup\": {:.3}\n}}\n",
            self.rows,
            self.cfds,
            self.violations,
            self.available_cores,
            self.sequential_secs,
            self.sequential_rows_per_sec(),
            self.jobs,
            self.parallel_secs,
            self.parallel_rows_per_sec(),
            self.speedup(),
        )
    }
}

fn best_of<T>(samples: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        let v = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(v);
    }
    (out.unwrap(), best)
}

/// Time sequential vs. parallel detection on `rows` dirty-customer
/// tuples (5% noise, fixed seed). Panics if the two engines disagree —
/// the benchmark doubles as a parity check.
pub fn measure_detection(rows: usize, jobs: usize, samples: usize) -> DetectionPerf {
    let (_, ds, cfds) = customer_workload(rows, 0.05, 11);
    let job = DetectJob::on_table(&ds.dirty, &cfds);
    let (seq_report, sequential_secs) = best_of(samples, || NativeEngine.run(&job).unwrap());
    let parallel = ParallelEngine::new(jobs);
    let (par_report, parallel_secs) = best_of(samples, || parallel.run(&job).unwrap());
    assert_eq!(seq_report, par_report, "parallel engine must match sequential byte-for-byte");
    DetectionPerf {
        rows,
        cfds: cfds.len(),
        violations: seq_report.len(),
        jobs: parallel.jobs(),
        sequential_secs,
        parallel_secs,
        available_cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_runs_and_serialises() {
        let perf = measure_detection(2_000, 2, 1);
        assert_eq!(perf.rows, 2_000);
        assert_eq!(perf.jobs, 2);
        assert!(perf.sequential_secs > 0.0 && perf.parallel_secs > 0.0);
        assert!(perf.violations > 0, "5% noise must produce violations");
        let json = perf.to_json();
        assert!(json.contains("\"benchmark\": \"detection\""));
        assert!(json.contains("\"rows\": 2000"));
        assert!(json.contains("\"rows_per_sec\""));
        assert!(json.contains("\"speedup\""));
    }
}
