//! E1 — detection time vs. instance size (TODS 2008, detection scaling).
//!
//! Claim under test (§5): CFD violation detection is efficient and
//! scales with the data. Series: native hash detector vs. the SQL
//! two-query encoding on the bundled engine. Expected shape: both
//! near-linear in n; SQL slower by a constant factor.

use revival_bench::{customer_workload, full_mode, ms, print_table, timed};
use revival_detect::sqlgen::detect_sql;
use revival_detect::NativeDetector;

fn main() {
    let sizes: &[usize] = if full_mode() {
        &[20_000, 40_000, 80_000, 160_000, 320_000]
    } else {
        &[5_000, 10_000, 20_000, 40_000]
    };
    println!("E1: CFD detection scaling (noise 5%, standard suite)");
    let mut rows = Vec::new();
    for &n in sizes {
        let (_, ds, cfds) = customer_workload(n, 0.05, 1);
        let (native_report, native_t) = timed(|| NativeDetector::new(&ds.dirty).detect_all(&cfds));
        let (sql_report, sql_t) = timed(|| detect_sql(&ds.dirty, &cfds).expect("sql detect"));
        assert_eq!(
            native_report.violating_tuples(),
            sql_report.violating_tuples(),
            "engines must agree"
        );
        rows.push(vec![
            n.to_string(),
            native_report.len().to_string(),
            ms(native_t),
            ms(sql_t),
            format!("{:.2}", sql_t.as_secs_f64() / native_t.as_secs_f64().max(1e-9)),
        ]);
    }
    print_table(&["tuples", "violations", "native_ms", "sql_ms", "sql/native"], &rows);
}
