//! T1 — static analyses of CFD suites (TODS 2008 tables).
//!
//! Three measurements over generated suites of growing size:
//!
//! * satisfiability time, with and without finite-domain attributes
//!   (the NP-hardness lever);
//! * implication time (chase over the bounded witness space);
//! * minimal-cover shrinkage on suites with planted redundancy.

use revival_bench::{full_mode, ms, print_table, timed};
use revival_constraints::analysis::{implies, is_satisfiable, minimal_cover, Outcome};
use revival_constraints::parser::parse_cfds;
use revival_relation::{Schema, Type};

fn infinite_schema() -> Schema {
    Schema::builder("r")
        .attr("a", Type::Str)
        .attr("b", Type::Str)
        .attr("c", Type::Str)
        .attr("d", Type::Str)
        .build()
}

fn finite_schema() -> Schema {
    Schema::builder("r")
        .attr_in("a", Type::Str, (0..4).map(|i| i.to_string().into()).collect())
        .attr_in("b", Type::Str, (0..4).map(|i| i.to_string().into()).collect())
        .attr("c", Type::Str)
        .attr("d", Type::Str)
        .build()
}

/// A satisfiable suite with `n` constant rows plus redundancy.
fn suite_text(n: usize) -> String {
    let mut text = String::from("r([b] -> [c])\n");
    for i in 0..n {
        // Guarded constant rules, pairwise consistent.
        text.push_str(&format!("r([a='{i}'] -> [c='v{i}'])\n"));
        // Redundant conditional variant of the global rule (implied).
        if i % 3 == 0 {
            text.push_str(&format!("r([a='{i}', b] -> [c])\n"));
        }
    }
    text
}

fn main() {
    let sizes: &[usize] = if full_mode() { &[10, 25, 50, 100, 200] } else { &[5, 10, 20, 40] };
    let budget = 4_000_000;
    println!("T1: static analyses of generated CFD suites");
    let mut rows = Vec::new();
    for &n in sizes {
        let text = suite_text(n);
        let s_inf = infinite_schema();
        let s_fin = finite_schema();
        let suite_inf = parse_cfds(&text, &s_inf).unwrap();
        let suite_fin = parse_cfds(&text, &s_fin).unwrap();

        let (sat_inf, t_inf) = timed(|| is_satisfiable(&s_inf, &suite_inf, budget));
        let (sat_fin, t_fin) = timed(|| is_satisfiable(&s_fin, &suite_fin, budget));
        assert_eq!(sat_inf, Outcome::Yes);

        // Implication: is the guarded variant of the global rule implied?
        let phi = parse_cfds("r([a='0', b] -> [c])", &s_inf).unwrap();
        let (imp, t_imp) = timed(|| implies(&s_inf, &suite_inf, &phi[0], budget));
        assert_eq!(imp, Outcome::Yes);

        let ((_, cover_report), t_cover) = timed(|| minimal_cover(&s_inf, &suite_inf, budget));

        rows.push(vec![
            suite_inf.len().to_string(),
            ms(t_inf),
            format!("{:?}({})", sat_fin, ms(t_fin)),
            ms(t_imp),
            format!("{}->{}", cover_report.rows_in, cover_report.rows_out),
            ms(t_cover),
        ]);
    }
    print_table(
        &["cfds", "sat_inf_ms", "sat_finite", "implication_ms", "cover_rows", "cover_ms"],
        &rows,
    );
}
