//! E8 — match quality: RCK matcher vs. exact-key baseline (§4 / \[10\]).
//!
//! Card/billing pairs with representation variations (diminutives,
//! address abbreviations) and typos. The baseline requires exact
//! equality on `[fname, lname, addr]`; the RCK matcher uses the two
//! keys derived from the paper's rules. Expected shape: RCK recall ≫
//! baseline recall at comparable precision, gap widening with the
//! variation rate.

use revival_bench::{full_mode, print_table};
use revival_dirty::cardbilling::{attrs, generate, CardBillingConfig};
use revival_matching::matcher::{AttributePair, BlockKey, Comparator, MatchQuality, RecordMatcher};
use revival_matching::rck::derive_rcks;
use revival_matching::rules::{paper_rules, Cmp};
use revival_matching::RelativeCandidateKey;

fn attribute_pairs() -> Vec<AttributePair> {
    vec![
        AttributePair::new("fname", attrs::CARD_FN, attrs::BILL_FN, Comparator::PersonName),
        AttributePair::new("lname", attrs::CARD_LN, attrs::BILL_LN, Comparator::JaroWinkler(0.88)),
        AttributePair::new("addr", attrs::CARD_ADDR, attrs::BILL_ADDR, Comparator::Address),
        AttributePair::new("phn", attrs::CARD_PHN, attrs::BILL_PHN, Comparator::Phone),
        AttributePair::new("email", attrs::CARD_EMAIL, attrs::BILL_EMAIL, Comparator::Exact),
    ]
}

fn main() {
    let persons = if full_mode() { 10_000 } else { 2_000 };
    let variation_rates = [0.1, 0.2, 0.3, 0.4, 0.5];
    println!("E8: match quality vs variation rate ({persons} persons, typo 5%)");

    // Derive the RCKs from the paper's rules (not hand-coded!).
    let y = ["fname", "lname", "addr", "phn", "email"];
    let rcks = derive_rcks(&y, &y, &paper_rules(), 3);
    println!("derived {} RCK(s):", rcks.len());
    for r in &rcks {
        println!("  {r}");
    }

    let baseline_key = RelativeCandidateKey::new(&[
        ("fname", Cmp::Equal),
        ("lname", Cmp::Equal),
        ("addr", Cmp::Equal),
    ]);

    let mut rows = Vec::new();
    for &rate in &variation_rates {
        let data = generate(&CardBillingConfig {
            persons,
            variation_rate: rate,
            typo_rate: 0.05,
            seed: 8,
            ..Default::default()
        });
        let blocking = vec![("phn", BlockKey::Digits), ("lname", BlockKey::Soundex)];
        let rck_matcher = RecordMatcher::new(attribute_pairs(), rcks.clone(), blocking.clone());
        let base_pairs = vec![
            AttributePair::new("fname", attrs::CARD_FN, attrs::BILL_FN, Comparator::Exact),
            AttributePair::new("lname", attrs::CARD_LN, attrs::BILL_LN, Comparator::Exact),
            AttributePair::new("addr", attrs::CARD_ADDR, attrs::BILL_ADDR, Comparator::Exact),
            AttributePair::new("phn", attrs::CARD_PHN, attrs::BILL_PHN, Comparator::Phone),
        ];
        let baseline = RecordMatcher::new(base_pairs, vec![baseline_key.clone()], blocking.clone());

        let rck_found = rck_matcher.run(&data.card, &data.billing);
        let base_found = baseline.run(&data.card, &data.billing);
        let rck_q = MatchQuality::score(&rck_found, &data.true_pairs);
        let base_q = MatchQuality::score(&base_found, &data.true_pairs);
        rows.push(vec![
            format!("{:.0}%", rate * 100.0),
            format!("{:.3}", base_q.precision),
            format!("{:.3}", base_q.recall),
            format!("{:.3}", base_q.f1()),
            format!("{:.3}", rck_q.precision),
            format!("{:.3}", rck_q.recall),
            format!("{:.3}", rck_q.f1()),
        ]);
    }
    print_table(&["variation", "base_p", "base_r", "base_f1", "rck_p", "rck_r", "rck_f1"], &rows);
}
