//! E13 — ablation: uniform cost weights vs. detection-derived
//! confidence weights (the "placed automatically" weights of Cong et
//! al.'s cost model).
//!
//! Expected shape: confidence weights match or beat uniform weights on
//! precision/recall across noise rates (they encode the plurality
//! heuristic into the objective), at negligible extra cost (one
//! detection pass).

use revival_bench::{customer_workload, full_mode, ms, print_table, repairable_attrs, timed};
use revival_repair::{suspicion_weights, BatchRepair, ConfidenceOptions, CostModel};

fn main() {
    let n = if full_mode() { 20_000 } else { 5_000 };
    let noise_rates = [0.02, 0.05, 0.10];
    println!("E13: repair quality — uniform vs confidence weights ({n} tuples)");
    let mut rows = Vec::new();
    for &rate in &noise_rates {
        let (data, ds, cfds) = customer_workload(n, rate, 14);
        let arity = data.schema.arity();

        let uniform = BatchRepair::new(&cfds, CostModel::uniform(arity));
        let ((fix_u, _), t_u) = timed(|| uniform.repair(&ds.dirty).expect("repair"));
        let score_u = ds.score_repair(&fix_u, &repairable_attrs());

        let ((fix_w, stats_w), t_w) = timed(|| {
            let weights = suspicion_weights(&ds.dirty, &cfds, ConfidenceOptions::default());
            BatchRepair::new(&cfds, weights).repair(&ds.dirty).expect("repair")
        });
        assert_eq!(stats_w.residual_violations, 0);
        let score_w = ds.score_repair(&fix_w, &repairable_attrs());

        rows.push(vec![
            format!("{:.0}%", rate * 100.0),
            format!("{:.3}", score_u.f1()),
            ms(t_u),
            format!("{:.3}", score_w.f1()),
            ms(t_w),
        ]);
    }
    print_table(&["noise", "uniform_f1", "uniform_ms", "conf_f1", "conf_ms"], &rows);
}
