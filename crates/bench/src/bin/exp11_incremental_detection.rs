//! E11 — incremental vs. full re-detection as a delta streams in.
//!
//! The incremental detector maintains per-CFD group state and costs
//! `O(|Δ|)` per batch; full detection re-scans everything. Expected
//! shape: incremental linear in the delta and far cheaper until the
//! delta approaches the base size.

use revival_bench::{full_mode, ms, print_table, timed};
use revival_detect::{IncrementalDetector, NativeDetector};
use revival_dirty::customer::{attrs, generate, standard_cfds, CustomerConfig};
use revival_dirty::noise::{inject, NoiseConfig};
use revival_relation::{Table, TupleId};

fn main() {
    let base_n = if full_mode() { 80_000 } else { 20_000 };
    let delta_fracs = [0.005, 0.01, 0.02, 0.04, 0.08, 0.16];
    println!("E11: incremental vs full detection (base {base_n} tuples, noise 5%)");
    let max_delta = (base_n as f64 * delta_fracs.last().unwrap()).ceil() as usize;
    let data = generate(&CustomerConfig { rows: base_n + max_delta, ..Default::default() });
    let cfds = standard_cfds(&data.schema);
    let noisy = inject(&data.table, &NoiseConfig::new(0.05, vec![attrs::STREET, attrs::CITY], 11));

    // Base table and detector state.
    let mut base = Table::new(data.schema.clone());
    let mut delta_rows = Vec::new();
    for (i, (_, row)) in noisy.dirty.rows().enumerate() {
        if i < base_n {
            base.push_unchecked(row.to_vec());
        } else {
            delta_rows.push(row.to_vec());
        }
    }

    let mut rows = Vec::new();
    for &frac in &delta_fracs {
        let k = (base_n as f64 * frac).ceil() as usize;
        // Incremental: load base once (not timed — amortised state),
        // then time the delta stream.
        let mut inc = IncrementalDetector::new(cfds.clone());
        inc.load(&base);
        let ((), inc_t) = timed(|| {
            for (i, row) in delta_rows.iter().take(k).enumerate() {
                inc.insert(TupleId((base_n + i) as u64), row);
            }
        });
        let inc_count = inc.violation_count();

        // Full re-detection over base + delta.
        let mut combined = base.clone();
        for row in delta_rows.iter().take(k) {
            combined.push_unchecked(row.clone());
        }
        let (full_report, full_t) = timed(|| NativeDetector::new(&combined).detect_all(&cfds));
        assert_eq!(inc_count, full_report.len(), "state must agree with full scan");

        rows.push(vec![
            format!("{:.1}%", frac * 100.0),
            k.to_string(),
            inc_count.to_string(),
            ms(inc_t),
            ms(full_t),
            format!("{:.1}x", full_t.as_secs_f64() / inc_t.as_secs_f64().max(1e-9)),
        ]);
    }
    print_table(&["delta", "tuples", "violations", "inc_ms", "full_ms", "speedup"], &rows);
}
