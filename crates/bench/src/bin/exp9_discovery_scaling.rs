//! E9 — dependency discovery scaling (profiling, §2c).
//!
//! TANE (FDs), CFDMiner (constant CFDs) and bounded CTANE (general
//! CFDs) over growing customer instances. Expected shape: all
//! polynomial in n; CFDMiner ≪ CTANE (itemset mining over a narrow
//! schema vs. pattern-lattice search); discovered rule counts stay
//! roughly stable once the instance is large enough to be
//! representative.

use revival_bench::{full_mode, ms, print_table, timed};
use revival_dirty::customer::{generate, CustomerConfig};
use revival_discovery::cfdminer::{mine_constant_cfds, MinerOptions};
use revival_discovery::ctane::{discover_cfds, CtaneOptions};
use revival_discovery::tane::{discover_fds, TaneOptions};

fn main() {
    let sizes: &[usize] = if full_mode() {
        &[5_000, 10_000, 20_000, 40_000, 80_000]
    } else {
        &[1_000, 2_000, 4_000, 8_000]
    };
    println!("E9: discovery scaling on clean customer data");
    let mut rows = Vec::new();
    for &n in sizes {
        let data = generate(&CustomerConfig { rows: n, ..Default::default() });
        let (fds, tane_t) = timed(|| discover_fds(&data.table, &TaneOptions { max_lhs: 2 }));
        let ((consts, _), miner_t) = timed(|| {
            mine_constant_cfds(&data.table, &MinerOptions { min_support: n / 100 + 2, max_size: 2 })
        });
        let ((cfds, _), ctane_t) = timed(|| {
            discover_cfds(
                &data.table,
                &CtaneOptions {
                    max_lhs: 2,
                    max_constants: 1,
                    min_support: n / 100 + 2,
                    top_values: 4,
                },
            )
        });
        rows.push(vec![
            n.to_string(),
            fds.len().to_string(),
            ms(tane_t),
            consts.len().to_string(),
            ms(miner_t),
            cfds.len().to_string(),
            ms(ctane_t),
        ]);
    }
    print_table(
        &["tuples", "fds", "tane_ms", "const_rules", "miner_ms", "cfds", "ctane_ms"],
        &rows,
    );
}
