//! E7 — CIND detection scaling (Bravo/Fan/Ma, VLDB 2007).
//!
//! The paper's book/CD CIND over growing instances. Expected shape:
//! near-linear in |CD| + |book| (one target-index build + one probe per
//! applicable source tuple); violations found exactly match the planted
//! count.

use revival_bench::{full_mode, ms, print_table, timed};
use revival_detect::CindDetector;
use revival_dirty::orders::{generate, standard_cind, OrdersConfig};

fn main() {
    let sizes: &[usize] = if full_mode() {
        &[20_000, 40_000, 80_000, 160_000, 320_000]
    } else {
        &[5_000, 10_000, 20_000, 40_000]
    };
    println!("E7: CIND detection scaling (5% planted violations)");
    let mut rows = Vec::new();
    for &n in sizes {
        let data = generate(&OrdersConfig {
            cds: n,
            extra_books: n / 2,
            violation_rate: 0.05,
            ..Default::default()
        });
        let cind = standard_cind(&data.cd_schema, &data.book_schema);
        let (report, t) = timed(|| CindDetector::detect(&cind, &data.cd, &data.book, 0));
        assert_eq!(report.len(), data.planted_violations, "must find exactly the planted set");
        rows.push(vec![
            n.to_string(),
            data.book.len().to_string(),
            report.len().to_string(),
            ms(t),
        ]);
    }
    print_table(&["cd_tuples", "book_tuples", "violations", "time_ms"], &rows);
}
