//! E4 — repair quality vs. noise rate (Cong et al., VLDB 2007).
//!
//! BatchRepair's output is scored against the clean original:
//! precision over changed cells, recall over corrupted cells. Expected
//! shape: both high (> 0.7) at low noise, degrading gracefully as the
//! noise rate grows (plurality evidence thins out).

use revival_bench::{customer_workload, full_mode, print_table, repairable_attrs, timed};
use revival_repair::{BatchRepair, CostModel};

fn main() {
    let n = if full_mode() { 20_000 } else { 5_000 };
    let noise_rates = [0.01, 0.02, 0.05, 0.08, 0.10];
    println!("E4: repair precision/recall vs noise ({n} tuples, standard suite)");
    let mut rows = Vec::new();
    for &rate in &noise_rates {
        let (data, ds, cfds) = customer_workload(n, rate, 4);
        let repairer = BatchRepair::new(&cfds, CostModel::uniform(data.schema.arity()));
        let ((fixed, stats), t) = timed(|| repairer.repair(&ds.dirty).expect("repair"));
        assert_eq!(stats.residual_violations, 0, "repair must satisfy the suite");
        let score = ds.score_repair(&fixed, &repairable_attrs());
        rows.push(vec![
            format!("{:.0}%", rate * 100.0),
            ds.error_count().to_string(),
            stats.cells_changed.to_string(),
            format!("{:.3}", score.precision),
            format!("{:.3}", score.recall),
            format!("{:.3}", score.f1()),
            revival_bench::ms(t),
        ]);
    }
    print_table(&["noise", "injected", "changed", "precision", "recall", "f1", "time_ms"], &rows);
}
