//! E10 — consistent query answering: rewriting vs. repair enumeration.
//!
//! Certain answers to a selection-projection query over a dirty
//! instance. The first-order rewriting never materialises repairs
//! (cost ≈ one scan + conflict-neighbour checks); enumeration is
//! exponential in the conflict count and caps out quickly. Expected
//! shape: rewriting flat-ish in n; enumeration feasible only at tiny
//! noise, hitting the cap otherwise.

use revival_bench::{customer_workload, full_mode, ms, print_table, timed};
use revival_cqa::{certain_answers_enumerate, certain_answers_rewrite, SpQuery};
use revival_dirty::customer::attrs;
use revival_relation::Expr;

fn main() {
    let sizes: &[usize] =
        if full_mode() { &[2_000, 4_000, 8_000, 16_000] } else { &[500, 1_000, 2_000, 4_000] };
    let noise = 0.01;
    println!("E10: CQA — certain answers for pi_zip sigma_(cc='44') (noise {noise})");
    let query = SpQuery::new(Expr::col(attrs::CC).eq(Expr::lit("44")), vec![attrs::ZIP]);
    let cap = 20_000;
    let mut rows = Vec::new();
    for &n in sizes {
        let (_, ds, cfds) = customer_workload(n, noise, 10);
        let (rewritten, rw_t) = timed(|| certain_answers_rewrite(&ds.dirty, &cfds, &query));
        let (enumerated, enum_t) =
            timed(|| certain_answers_enumerate(&ds.dirty, &cfds, &query, cap));
        let (enum_answers, enum_cell) = match &enumerated {
            Some(ans) => {
                // The rewriting is sound always; check agreement when the
                // oracle is available.
                assert!(
                    rewritten.is_subset(ans),
                    "rewriting must under-approximate certain answers"
                );
                (ans.len().to_string(), ms(enum_t))
            }
            None => ("cap".into(), format!(">{}", ms(enum_t))),
        };
        rows.push(vec![
            n.to_string(),
            rewritten.len().to_string(),
            ms(rw_t),
            enum_answers,
            enum_cell,
        ]);
    }
    print_table(&["tuples", "rewrite_answers", "rewrite_ms", "enum_answers", "enum_ms"], &rows);
}
