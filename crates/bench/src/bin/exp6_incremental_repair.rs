//! E6 — IncRepair vs. BatchRepair as the delta grows (Cong et al. §5).
//!
//! A clean base receives a dirty delta. IncRepair edits only the delta
//! (`O(|Δ|)`); BatchRepair re-repairs base+delta from scratch. Expected
//! shape: IncRepair wins for small deltas; the advantage shrinks as
//! `|Δ|/|base|` grows (the crossover the paper reports around tens of
//! percent).

use revival_bench::{full_mode, ms, print_table, timed};
use revival_dirty::customer::{attrs, generate, standard_cfds, CustomerConfig};
use revival_dirty::noise::{inject, NoiseConfig};
use revival_relation::{Table, Value};
use revival_repair::{BatchRepair, CostModel, IncRepair};

fn main() {
    let base_n = if full_mode() { 40_000 } else { 10_000 };
    let delta_fracs = [0.01, 0.02, 0.04, 0.08, 0.16, 0.32];
    println!("E6: incremental vs batch repair (base {base_n} clean tuples)");
    // One generation big enough for base + the largest delta.
    let max_delta = (base_n as f64 * delta_fracs.last().unwrap()).ceil() as usize;
    let data = generate(&CustomerConfig { rows: base_n + max_delta, ..Default::default() });
    let cfds = standard_cfds(&data.schema);
    let arity = data.schema.arity();

    // Split: first base_n tuples are the clean base; the rest get noised
    // and arrive as the delta.
    let mut base = Table::new(data.schema.clone());
    let mut delta_pool: Vec<Vec<Value>> = Vec::new();
    for (i, (_, row)) in data.table.rows().enumerate() {
        if i < base_n {
            base.push_unchecked(row.to_vec());
        } else {
            delta_pool.push(row.to_vec());
        }
    }
    // Noise the delta pool via a throwaway table.
    let mut pool_table = Table::new(data.schema.clone());
    for row in &delta_pool {
        pool_table.push_unchecked(row.clone());
    }
    let dirty_pool = inject(
        &pool_table,
        &NoiseConfig::new(0.10, vec![attrs::STREET, attrs::CITY, attrs::ZIP], 6),
    );
    let dirty_delta: Vec<Vec<Value>> = dirty_pool.dirty.rows().map(|(_, r)| r).collect();

    let mut rows = Vec::new();
    for &frac in &delta_fracs {
        let k = (base_n as f64 * frac).ceil() as usize;
        let delta: Vec<Vec<Value>> = dirty_delta.iter().take(k).cloned().collect();

        // Incremental path.
        let mut inc_table = base.clone();
        let (inc_stats, inc_t) = timed(|| {
            IncRepair::repair_delta(&cfds, &mut inc_table, delta.clone(), CostModel::uniform(arity))
        });
        assert!(revival_detect::native::satisfies(&inc_table, &cfds));

        // Batch path over base + delta.
        let mut combined = base.clone();
        for row in &delta {
            combined.push_unchecked(row.clone());
        }
        let repairer = BatchRepair::new(&cfds, CostModel::uniform(arity));
        let ((batch_table, batch_stats), batch_t) =
            timed(|| repairer.repair(&combined).expect("repair"));
        assert_eq!(batch_stats.residual_violations, 0);
        let _ = batch_table;

        rows.push(vec![
            format!("{:.0}%", frac * 100.0),
            k.to_string(),
            inc_stats.cells_changed.to_string(),
            ms(inc_t),
            ms(batch_t),
            format!("{:.1}x", batch_t.as_secs_f64() / inc_t.as_secs_f64().max(1e-9)),
        ]);
    }
    print_table(&["delta", "tuples", "inc_edits", "inc_ms", "batch_ms", "speedup"], &rows);
}
