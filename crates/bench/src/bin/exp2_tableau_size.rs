//! E2 — detection time vs. pattern-tableau size (TODS 2008).
//!
//! Pattern tableaux are *data*, not schema: suites grow by adding rows,
//! and detection cost must track that. Series: per-CFD detection (one
//! pass per pattern row's CFD) vs. merged-tableau detection (one pass
//! per embedded FD). Expected: per-CFD grows linearly with tableau
//! size, merged stays near-flat.

use revival_bench::{full_mode, ms, print_table, timed};
use revival_constraints::cfd::merge_by_embedded_fd;
use revival_detect::{DetectJob, Detector, NativeEngine};
use revival_dirty::customer::{attrs, generate, scaled_suite, CustomerConfig};
use revival_dirty::noise::{inject, NoiseConfig};

fn main() {
    let n = if full_mode() { 80_000 } else { 20_000 };
    let tableau_sizes: &[usize] = &[1, 2, 4, 8, 16, 32];
    println!("E2: detection vs tableau size ({n} tuples, noise 5%)");
    let data = generate(&CustomerConfig { rows: n, ..Default::default() });
    let ds = inject(&data.table, &NoiseConfig::new(0.05, vec![attrs::STREET, attrs::CITY], 2));
    let mut rows = Vec::new();
    for &k in tableau_sizes {
        let suite = scaled_suite(&data, k);
        let job = DetectJob::on_table(&ds.dirty, &suite);
        let (per_cfd, per_t) = timed(|| NativeEngine.run(&job).unwrap());
        let (merged, merged_t) = timed(|| NativeEngine.run(&job.merged(true)).unwrap());
        assert_eq!(
            per_cfd.violating_tuples(),
            merged.violating_tuples(),
            "merged detection must implicate the same tuples"
        );
        rows.push(vec![
            suite.len().to_string(),
            merge_by_embedded_fd(&suite).len().to_string(),
            ms(per_t),
            ms(merged_t),
        ]);
    }
    print_table(&["cfds", "merged_cfds", "per_cfd_ms", "merged_ms"], &rows);
}
