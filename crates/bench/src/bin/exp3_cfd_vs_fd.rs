//! E3 — error-catching power: CFD suite vs. its traditional-FD
//! counterpart.
//!
//! The tutorial's central §3 claim: *"cfds … are able to capture more
//! inconsistencies than their traditional fd counterparts"*. Both
//! suites share the same embedded FDs; the CFD suite adds pattern rows
//! with constants (here: one `([cc, ac=c] → [city=c'])` row per master
//! pair). Two effects are measured against ground truth:
//!
//! * **error recall** — fraction of corrupted tuples implicated by some
//!   violation. FDs miss errors whose LHS group has a single member;
//!   constant rows catch them tuple-at-a-time.
//! * **blame precision** — fraction of implicated tuples that are
//!   actually corrupted. A variable (FD-style) violation implicates the
//!   *whole* conflicting group; a constant row pinpoints the culprit.
//!
//! Expected shape: CFD recall ≥ FD recall, and CFD blame precision ≫ FD
//! blame precision, both gaps persisting across noise rates.

use revival_bench::{full_mode, print_table};
use revival_constraints::Cfd;
use revival_detect::NativeDetector;
use revival_dirty::customer::{attrs, generate, scaled_suite, CustomerConfig};
use revival_dirty::noise::{inject, DirtyDataset, NoiseConfig};
use std::collections::BTreeSet;

/// The traditional counterpart: same embedded FDs, all patterns dropped.
fn fd_counterpart(cfds: &[Cfd]) -> Vec<Cfd> {
    let mut out: Vec<Cfd> = Vec::new();
    for cfd in cfds {
        let plain = Cfd {
            relation: cfd.relation.clone(),
            lhs: cfd.lhs.clone(),
            rhs: cfd.rhs,
            tableau: vec![revival_constraints::PatternRow::all_wildcards(cfd.lhs.len())],
        };
        if !out.iter().any(|c: &Cfd| c.lhs == plain.lhs && c.rhs == plain.rhs) {
            out.push(plain);
        }
    }
    out
}

struct Quality {
    recall: f64,
    pinpoint_precision: Option<f64>,
    pinpoint_recall: Option<f64>,
    violations: usize,
}

fn evaluate(ds: &DirtyDataset, suite: &[Cfd]) -> Quality {
    let report = NativeDetector::new(&ds.dirty).detect_all(suite);
    let implicated = report.violating_tuples();
    let corrupted: BTreeSet<_> = ds.modified.iter().map(|(t, _)| *t).collect();
    let caught = corrupted.iter().filter(|t| implicated.contains(t)).count();
    // Pinpointed tuples: implicated by a *constant* row, i.e. blamed
    // individually rather than as part of a conflicting group.
    let pinpointed: BTreeSet<_> = report
        .violations
        .iter()
        .filter_map(|v| match v {
            revival_detect::Violation::CfdConstant { tuple, .. } => Some(*tuple),
            _ => None,
        })
        .collect();
    let has_const = suite.iter().any(|c| c.constant_rows().next().is_some());
    let pin_correct = pinpointed.iter().filter(|t| corrupted.contains(t)).count();
    let pin_caught = corrupted.iter().filter(|t| pinpointed.contains(t)).count();
    Quality {
        recall: if corrupted.is_empty() { 1.0 } else { caught as f64 / corrupted.len() as f64 },
        pinpoint_precision: has_const.then(|| {
            if pinpointed.is_empty() {
                1.0
            } else {
                pin_correct as f64 / pinpointed.len() as f64
            }
        }),
        pinpoint_recall: has_const.then(|| {
            if corrupted.is_empty() {
                1.0
            } else {
                pin_caught as f64 / corrupted.len() as f64
            }
        }),
        violations: report.len(),
    }
}

fn main() {
    let n = if full_mode() { 80_000 } else { 20_000 };
    let noise_rates = [0.01, 0.02, 0.05, 0.08, 0.10];
    println!("E3: error detection — FD counterpart vs CFD suite ({n} tuples, city noise)");
    let data = generate(&CustomerConfig { rows: n, ..Default::default() });
    // Full constant coverage of the (cc, ac) → city master map.
    let cfd_suite = scaled_suite(&data, data.city_of.len());
    let fd_suite = fd_counterpart(&cfd_suite);
    let mut rows = Vec::new();
    for (i, &rate) in noise_rates.iter().enumerate() {
        let ds = inject(&data.table, &NoiseConfig::new(rate, vec![attrs::CITY], 30 + i as u64));
        let fd_q = evaluate(&ds, &fd_suite);
        let cfd_q = evaluate(&ds, &cfd_suite);
        let opt = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into());
        rows.push(vec![
            format!("{:.0}%", rate * 100.0),
            fd_q.violations.to_string(),
            format!("{:.3}", fd_q.recall),
            opt(fd_q.pinpoint_recall),
            cfd_q.violations.to_string(),
            format!("{:.3}", cfd_q.recall),
            opt(cfd_q.pinpoint_recall),
            opt(cfd_q.pinpoint_precision),
        ]);
    }
    print_table(
        &[
            "noise",
            "fd_viol",
            "fd_recall",
            "fd_pin_r",
            "cfd_viol",
            "cfd_recall",
            "cfd_pin_r",
            "cfd_pin_p",
        ],
        &rows,
    );
}
