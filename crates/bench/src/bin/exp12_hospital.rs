//! E12 — cross-dataset validation on the HOSP-style scenario.
//!
//! The CFD literature evaluates on two datasets: synthetic customer
//! data and the US hospital-quality feed (HOSP). E12 re-runs the E1
//! (detection scaling) and E4 (repair quality) protocols on the
//! hospital scenario to confirm the shapes are not artifacts of the
//! customer generator: detection stays near-linear and repair quality
//! lands in the same band.

use revival_bench::{full_mode, ms, print_table, timed};
use revival_detect::NativeDetector;
use revival_dirty::hospital::{attrs, generate, standard_cfds, HospitalConfig};
use revival_dirty::noise::{inject, NoiseConfig};
use revival_repair::{BatchRepair, CostModel};

fn main() {
    let sizes: &[usize] = if full_mode() {
        &[10_000, 20_000, 40_000, 80_000]
    } else {
        &[2_500, 5_000, 10_000, 20_000]
    };
    println!("E12a: detection scaling on hospital data (noise 4%)");
    let noise_attrs = vec![attrs::STATE, attrs::MEASURE_NAME, attrs::HNAME];
    let mut rows = Vec::new();
    for &n in sizes {
        let data = generate(&HospitalConfig {
            rows: n,
            providers: (n / 20).max(10),
            ..Default::default()
        });
        let suite = standard_cfds(&data.schema);
        let ds = inject(&data.table, &NoiseConfig::new(0.04, noise_attrs.clone(), 12));
        let (report, t) = timed(|| NativeDetector::new(&ds.dirty).detect_all(&suite));
        rows.push(vec![n.to_string(), report.len().to_string(), ms(t)]);
    }
    print_table(&["tuples", "violations", "detect_ms"], &rows);

    println!("\nE12b: repair quality on hospital data");
    let n = if full_mode() { 20_000 } else { 5_000 };
    let mut rows = Vec::new();
    for &rate in &[0.01, 0.04, 0.08] {
        let data = generate(&HospitalConfig {
            rows: n,
            providers: (n / 20).max(10),
            ..Default::default()
        });
        let suite = standard_cfds(&data.schema);
        let ds = inject(&data.table, &NoiseConfig::new(rate, noise_attrs.clone(), 13));
        let repairer = BatchRepair::new(&suite, CostModel::uniform(data.schema.arity()));
        let ((fixed, stats), t) = timed(|| repairer.repair(&ds.dirty).expect("repair"));
        assert_eq!(stats.residual_violations, 0);
        let score = ds.score_repair(&fixed, &noise_attrs);
        rows.push(vec![
            format!("{:.0}%", rate * 100.0),
            ds.error_count().to_string(),
            format!("{:.3}", score.precision),
            format!("{:.3}", score.recall),
            format!("{:.3}", score.f1()),
            ms(t),
        ]);
    }
    print_table(&["noise", "injected", "precision", "recall", "f1", "time_ms"], &rows);
}
