//! E5 — repair time vs. instance size (Cong et al., VLDB 2007).
//!
//! Expected shape: polynomial, dominated by repeated detection +
//! equivalence-class resolution passes; quality stays flat across
//! sizes (reported alongside for context).

use revival_bench::{customer_workload, full_mode, ms, print_table, repairable_attrs, timed};
use revival_repair::{BatchRepair, CostModel};

fn main() {
    let sizes: &[usize] = if full_mode() {
        &[10_000, 20_000, 40_000, 80_000, 160_000]
    } else {
        &[2_500, 5_000, 10_000, 20_000]
    };
    println!("E5: repair scaling (noise 5%, standard suite)");
    let mut rows = Vec::new();
    for &n in sizes {
        let (data, ds, cfds) = customer_workload(n, 0.05, 5);
        let repairer = BatchRepair::new(&cfds, CostModel::uniform(data.schema.arity()));
        let ((fixed, stats), t) = timed(|| repairer.repair(&ds.dirty).expect("repair"));
        let score = ds.score_repair(&fixed, &repairable_attrs());
        rows.push(vec![
            n.to_string(),
            stats.passes.to_string(),
            stats.cells_changed.to_string(),
            format!("{:.3}", score.f1()),
            ms(t),
        ]);
    }
    print_table(&["tuples", "passes", "changed", "f1", "time_ms"], &rows);
}
