//! Emits `BENCH_stream.json` at the workspace root: delta rows/sec for
//! a `DeltaSession` maintaining violations per appended row vs. a full
//! native re-detection per poll batch — the streaming counterpart of
//! `detection_json`/`repair_json`, tracking the `semandaq watch` hot
//! path. Runs as part of `cargo bench` (`cargo bench --bench
//! stream_json` for just this file); `BENCH_STREAM_BASE`,
//! `BENCH_STREAM_DELTA` and `BENCH_STREAM_BATCHES` size the workload.

use revival_bench::perf::measure_stream;
use std::path::Path;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let base = env_or("BENCH_STREAM_BASE", 8_000);
    let delta = env_or("BENCH_STREAM_DELTA", 400);
    let batches = env_or("BENCH_STREAM_BATCHES", 20);
    let perf = measure_stream(base, delta, batches, 3);
    let json = perf.to_json();
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_stream.json");
    std::fs::write(&out, &json).expect("write BENCH_stream.json");
    println!(
        "stream @ {} base + {} delta rows in {} batch(es): incremental {:.1} delta rows/s, \
         per-batch rescan {:.1} delta rows/s, speedup {:.2}x on {} core(s)",
        perf.base_rows,
        perf.delta_rows,
        perf.batches,
        perf.incremental_rows_per_sec(),
        perf.rescan_rows_per_sec(),
        perf.speedup(),
        perf.available_cores,
    );
    println!("wrote {}", out.display());
}
