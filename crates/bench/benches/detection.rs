//! Criterion benches for detection: scaling (E1), tableau size /
//! merged-tableau ablation (E2), incremental maintenance (E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revival_bench::customer_workload;
use revival_detect::{
    engine_by_name, DetectJob, Detector, IncrementalDetector, NativeDetector, NativeEngine,
};
use revival_dirty::customer::{attrs, generate, scaled_suite, CustomerConfig};
use revival_dirty::noise::{inject, NoiseConfig};
use revival_relation::TupleId;

/// All engines dispatch through the shared `Detector` trait, exactly as
/// the CLI does — so these numbers measure the production code path.
fn detect_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect_scaling");
    group.sample_size(10);
    for &n in &[2_000usize, 8_000, 32_000] {
        let (_, ds, cfds) = customer_workload(n, 0.05, 1);
        let job = DetectJob::on_table(&ds.dirty, &cfds);
        for name in ["native", "sql", "parallel"] {
            let engine = engine_by_name(name, 4).unwrap();
            let id = if name == "parallel" { "parallel4" } else { name };
            group.bench_with_input(BenchmarkId::new(id, n), &n, |b, _| {
                b.iter(|| engine.run(&job).unwrap())
            });
        }
    }
    group.finish();
}

fn detect_tableau(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect_tableau");
    group.sample_size(10);
    let data = generate(&CustomerConfig { rows: 8_000, ..Default::default() });
    let ds = inject(&data.table, &NoiseConfig::new(0.05, vec![attrs::STREET, attrs::CITY], 2));
    for &k in &[2usize, 8, 32] {
        let suite = scaled_suite(&data, k);
        let job = DetectJob::on_table(&ds.dirty, &suite);
        group.bench_with_input(BenchmarkId::new("per_cfd", k), &k, |b, _| {
            b.iter(|| NativeEngine.run(&job).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("merged", k), &k, |b, _| {
            b.iter(|| NativeEngine.run(&job.merged(true)).unwrap())
        });
    }
    group.finish();
}

fn incr_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("incr_detect");
    group.sample_size(10);
    let (_, ds, cfds) = customer_workload(16_000, 0.05, 3);
    let delta: Vec<Vec<revival_relation::Value>> =
        ds.dirty.rows().take(200).map(|(_, r)| r).collect();
    group.bench_function("insert_200_delta", |b| {
        b.iter_with_setup(
            || {
                let mut d = IncrementalDetector::new(cfds.clone());
                d.load(&ds.dirty);
                d
            },
            |mut d| {
                for (i, row) in delta.iter().enumerate() {
                    d.insert(TupleId(1_000_000 + i as u64), row);
                }
                d.violation_count()
            },
        )
    });
    group.bench_function("full_redetect", |b| {
        b.iter(|| NativeDetector::new(&ds.dirty).detect_all(&cfds))
    });
    group.finish();
}

criterion_group!(benches, detect_scaling, detect_tableau, incr_detect);
criterion_main!(benches);
