//! Emits `BENCH_repair.json` at the workspace root: rows/sec for the
//! sequential `BatchRepair` vs. the sharded repair engine at 4 shards
//! on a dirty-customer workload — the repair counterpart of
//! `detection_json`, so the repair trajectory is tracked alongside
//! detection. Runs as part of `cargo bench` (`cargo bench --bench
//! repair_json` for just this file); set `BENCH_REPAIR_ROWS` to change
//! the workload size.

use revival_bench::perf::measure_repair;
use std::path::Path;

fn main() {
    let rows: usize =
        std::env::var("BENCH_REPAIR_ROWS").ok().and_then(|s| s.parse().ok()).unwrap_or(8_000);
    let perf = measure_repair(rows, 4, 3);
    let json = perf.to_json();
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_repair.json");
    std::fs::write(&out, &json).expect("write BENCH_repair.json");
    println!(
        "repair @ {} rows ({} violations before): sequential {:.1} rows/s, \
         sharded(jobs={}) {:.1} rows/s, speedup {:.2}x on {} core(s)",
        perf.rows,
        perf.violations_before,
        perf.sequential_rows_per_sec(),
        perf.jobs,
        perf.parallel_rows_per_sec(),
        perf.speedup(),
        perf.available_cores,
    );
    println!("wrote {}", out.display());
}
