//! Criterion benches for the remaining pipelines: CIND detection (E7),
//! discovery (E9), static analysis (T1), and the SQL engine itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revival_constraints::analysis::{is_satisfiable, minimal_cover};
use revival_constraints::parser::parse_cfds;
use revival_detect::CindDetector;
use revival_dirty::customer::{generate, CustomerConfig};
use revival_dirty::orders::{self, OrdersConfig};
use revival_discovery::cfdminer::{mine_constant_cfds, MinerOptions};
use revival_discovery::tane::{discover_fds, TaneOptions};
use revival_relation::{sql, Catalog};

fn cind_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cind_scaling");
    group.sample_size(10);
    for &n in &[4_000usize, 16_000, 64_000] {
        let data = orders::generate(&OrdersConfig {
            cds: n,
            extra_books: n / 2,
            violation_rate: 0.05,
            ..Default::default()
        });
        let cind = orders::standard_cind(&data.cd_schema, &data.book_schema);
        group.bench_with_input(BenchmarkId::new("detect", n), &n, |b, _| {
            b.iter(|| CindDetector::detect(&cind, &data.cd, &data.book, 0))
        });
    }
    group.finish();
}

fn discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);
    let data = generate(&CustomerConfig { rows: 4_000, ..Default::default() });
    group.bench_function("tane_lhs2", |b| {
        b.iter(|| discover_fds(&data.table, &TaneOptions { max_lhs: 2 }))
    });
    group.bench_function("cfdminer", |b| {
        b.iter(|| mine_constant_cfds(&data.table, &MinerOptions { min_support: 50, max_size: 2 }))
    });
    group.finish();
}

fn static_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_analysis");
    let schema = revival_relation::Schema::builder("r")
        .attr("a", revival_relation::Type::Str)
        .attr("b", revival_relation::Type::Str)
        .attr("c", revival_relation::Type::Str)
        .build();
    let mut text = String::from("r([b] -> [c])\n");
    for i in 0..30 {
        text.push_str(&format!("r([a='{i}'] -> [c='v{i}'])\n"));
    }
    let suite = parse_cfds(&text, &schema).unwrap();
    group.bench_function("satisfiability_30", |b| {
        b.iter(|| is_satisfiable(&schema, &suite, 4_000_000))
    });
    group.bench_function("minimal_cover_30", |b| {
        b.iter(|| minimal_cover(&schema, &suite, 4_000_000))
    });
    group.finish();
}

fn sql_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_engine");
    group.sample_size(20);
    let data = generate(&CustomerConfig { rows: 20_000, ..Default::default() });
    let mut catalog = Catalog::new();
    catalog.register(data.table.clone());
    let q_v = "SELECT cc, zip FROM customer WHERE cc = '44' \
               GROUP BY cc, zip HAVING COUNT(DISTINCT street) > 1";
    group.bench_function("parse", |b| b.iter(|| sql::parse_query(q_v).unwrap()));
    group.bench_function("group_by_having", |b| b.iter(|| sql::run(q_v, &catalog).unwrap()));
    group.bench_function("scan_filter", |b| {
        b.iter(|| sql::run("SELECT zip FROM customer WHERE cc = '44'", &catalog).unwrap())
    });
    group.finish();
}

criterion_group!(benches, cind_scaling, discovery, static_analysis, sql_engine);
criterion_main!(benches);
