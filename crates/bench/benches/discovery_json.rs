//! Emits `BENCH_discovery.json` at the workspace root: rows/sec of the
//! sequential vs. the parallel discovery engine (jobs=1 vs jobs=4) on
//! dirty hospital and customer workloads, mined approximately
//! (`min_confidence 0.92`) so the g3 confidence path is exercised. Runs
//! as part of `cargo bench` (`cargo bench --bench discovery_json` for
//! just this file); set `BENCH_DISCOVERY_HOSPITAL_ROWS` /
//! `BENCH_DISCOVERY_CUSTOMER_ROWS` to change the workload sizes. The
//! emitter asserts sequential ≡ parallel byte-for-byte before writing
//! numbers.

use revival_bench::perf::measure_discovery;
use std::path::Path;

fn main() {
    let hospital_rows: usize = std::env::var("BENCH_DISCOVERY_HOSPITAL_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let customer_rows: usize = std::env::var("BENCH_DISCOVERY_CUSTOMER_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let perf = measure_discovery(hospital_rows, customer_rows, 4, 3);
    let json = perf.to_json();
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_discovery.json");
    std::fs::write(&out, &json).expect("write BENCH_discovery.json");
    for w in [&perf.hospital, &perf.customer] {
        println!(
            "discovery @ {} {} rows: jobs=1 {:.1} rows/s, jobs={} {:.1} rows/s, \
             speedup {:.2}x ({} rules -> {} vetted) on {} core(s)",
            w.rows,
            w.workload,
            w.sequential_rows_per_sec(),
            perf.jobs,
            w.parallel_rows_per_sec(),
            w.speedup(),
            w.rules,
            w.vetted,
            perf.available_cores,
        );
    }
    println!("wrote {}", out.display());
}
