//! Criterion benches for repair: scaling (E5), incremental (E6), and
//! the equivalence-class ablation (cost-guided passes vs. force-only).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revival_bench::customer_workload;
use revival_repair::batch::RepairOptions;
use revival_repair::{BatchRepair, CostModel, IncRepair};

fn repair_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair_scaling");
    group.sample_size(10);
    for &n in &[1_000usize, 4_000, 16_000] {
        let (data, ds, cfds) = customer_workload(n, 0.05, 5);
        let repairer = BatchRepair::new(&cfds, CostModel::uniform(data.schema.arity()));
        group.bench_with_input(BenchmarkId::new("batch", n), &n, |b, _| {
            b.iter(|| repairer.repair(&ds.dirty).unwrap())
        });
    }
    group.finish();
}

fn ablation_eqclass(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_eqclass");
    group.sample_size(10);
    let (data, ds, cfds) = customer_workload(8_000, 0.05, 6);
    let guided = BatchRepair::new(&cfds, CostModel::uniform(data.schema.arity()));
    // Force-only: zero cost-guided passes — plurality coercion rounds do
    // all the work. Same output guarantee, worse accuracy.
    let force_only = BatchRepair::new(&cfds, CostModel::uniform(data.schema.arity()))
        .with_options(RepairOptions { max_passes: 0, ..Default::default() });
    group.bench_function("eqclass_guided", |b| b.iter(|| guided.repair(&ds.dirty).unwrap()));
    group.bench_function("force_only", |b| b.iter(|| force_only.repair(&ds.dirty).unwrap()));
    group.finish();
}

fn incremental_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_repair");
    group.sample_size(10);
    let (data, ds, cfds) = customer_workload(8_000, 0.0, 7);
    let _ = ds;
    let arity = data.schema.arity();
    // Clean base + a 200-tuple dirty delta.
    let (_, dirty, _) = customer_workload(400, 0.2, 8);
    let delta: Vec<Vec<revival_relation::Value>> =
        dirty.dirty.rows().take(200).map(|(_, r)| r).collect();
    group.bench_function("inc_200_delta", |b| {
        b.iter_with_setup(
            || data.table.clone(),
            |mut base| {
                IncRepair::repair_delta(&cfds, &mut base, delta.clone(), CostModel::uniform(arity))
            },
        )
    });
    group.finish();
}

criterion_group!(benches, repair_scaling, ablation_eqclass, incremental_repair);
criterion_main!(benches);
