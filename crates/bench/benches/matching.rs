//! Criterion benches for matching: blocking ablation (blocking vs.
//! exhaustive cross-product) and the similarity-metric microbenches.

use criterion::{criterion_group, criterion_main, Criterion};
use revival_dirty::cardbilling::{attrs, generate, CardBillingConfig};
use revival_matching::matcher::{AttributePair, BlockKey, Comparator, RecordMatcher};
use revival_matching::rck::derive_rcks;
use revival_matching::rules::paper_rules;
use revival_matching::similarity::{jaro_winkler, levenshtein, qgram_jaccard, soundex};

fn matcher() -> RecordMatcher {
    let y = ["fname", "lname", "addr", "phn", "email"];
    let rcks = derive_rcks(&y, &y, &paper_rules(), 3);
    RecordMatcher::new(
        vec![
            AttributePair::new("fname", attrs::CARD_FN, attrs::BILL_FN, Comparator::PersonName),
            AttributePair::new(
                "lname",
                attrs::CARD_LN,
                attrs::BILL_LN,
                Comparator::JaroWinkler(0.88),
            ),
            AttributePair::new("addr", attrs::CARD_ADDR, attrs::BILL_ADDR, Comparator::Address),
            AttributePair::new("phn", attrs::CARD_PHN, attrs::BILL_PHN, Comparator::Phone),
            AttributePair::new("email", attrs::CARD_EMAIL, attrs::BILL_EMAIL, Comparator::Exact),
        ],
        rcks,
        vec![("phn", BlockKey::Digits), ("lname", BlockKey::Soundex)],
    )
}

fn ablation_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_blocking");
    group.sample_size(10);
    let data = generate(&CardBillingConfig { persons: 300, ..Default::default() });
    let m = matcher();
    group.bench_function("blocked", |b| b.iter(|| m.run(&data.card, &data.billing)));
    group.bench_function("exhaustive", |b| b.iter(|| m.run_exhaustive(&data.card, &data.billing)));
    group.finish();
}

fn similarity_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    let pairs = [
        ("jonathan smithers", "jonathon smithers"),
        ("10 Mountain Avenue", "10 Mountain Ave"),
        ("katherine", "kate"),
    ];
    group.bench_function("levenshtein", |b| {
        b.iter(|| pairs.iter().map(|(x, y)| levenshtein(x, y)).sum::<usize>())
    });
    group.bench_function("jaro_winkler", |b| {
        b.iter(|| pairs.iter().map(|(x, y)| jaro_winkler(x, y)).sum::<f64>())
    });
    group.bench_function("qgram_jaccard", |b| {
        b.iter(|| pairs.iter().map(|(x, y)| qgram_jaccard(x, y, 2)).sum::<f64>())
    });
    group.bench_function("soundex", |b| {
        b.iter(|| pairs.iter().map(|(x, _)| soundex(x).len()).sum::<usize>())
    });
    group.finish();
}

criterion_group!(benches, ablation_blocking, similarity_micro);
criterion_main!(benches);
