//! Emits `BENCH_serve.json` at the workspace root: concurrent-client
//! throughput (ops/sec) and per-op latency percentiles (p50/p99 µs)
//! of an in-process `semandaq serve`, measured at shards=1 and
//! shards=N under the same load — the serve-tier counterpart of
//! `stream_json` — plus a hot-table pair at shards=N (one shared
//! table, WAL off then WAL on) that prices the durable-before-ack
//! guarantee under group commit: `wal_slowdown` compares like for
//! like, and `fsyncs_per_op` shows how far fsync sharing spreads one
//! sync across concurrent writers (with the fsync latency
//! distribution from the `wal_fsync_us` histogram). Runs as part of
//! `cargo bench` (`cargo bench --bench serve_json` for just this
//! file); `BENCH_SERVE_CLIENTS`, `BENCH_SERVE_OPS` and
//! `BENCH_SERVE_SHARDS` size the load.

use revival_bench::perf::measure_serve;
use std::path::Path;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let clients = env_or("BENCH_SERVE_CLIENTS", 4);
    let ops = env_or("BENCH_SERVE_OPS", 400);
    let shards = env_or("BENCH_SERVE_SHARDS", 4);
    let perf = measure_serve(clients, ops, shards);
    let json = perf.to_json();
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&out, &json).expect("write BENCH_serve.json");
    println!(
        "serve @ {} client(s) x {} op(s): shards=1 {:.0} ops/s (p50 {:.0}us, p99 {:.0}us), \
         shards={} {:.0} ops/s (p50 {:.0}us, p99 {:.0}us), speedup {:.2}x on {} core(s)",
        perf.clients,
        perf.ops_per_client,
        perf.single.ops_per_sec(),
        perf.single.p50_us,
        perf.single.p99_us,
        perf.sharded.shards,
        perf.sharded.ops_per_sec(),
        perf.sharded.p50_us,
        perf.sharded.p99_us,
        perf.shard_speedup(),
        perf.available_cores,
    );
    println!(
        "serve hot-table @ shards={}: wal-off {:.0} ops/s, wal-on {:.0} ops/s \
         (p50 {:.0}us, p99 {:.0}us) -> wal_slowdown {:.2}x ({:.0}% retained)",
        perf.walled.shards,
        perf.hot.ops_per_sec(),
        perf.walled.ops_per_sec(),
        perf.walled.p50_us,
        perf.walled.p99_us,
        perf.wal_slowdown(),
        perf.wal_retention() * 100.0,
    );
    println!(
        "serve +wal group commit: {} fsync(s) over {} mutation(s) = {:.3} fsyncs/op \
         (fsync p50 {}us, p99 {}us)",
        perf.walled.fsync_count,
        perf.walled.mutation_ops,
        perf.walled.fsyncs_per_op(),
        perf.walled.fsync_p50_us,
        perf.walled.fsync_p99_us,
    );
    if perf.available_cores < 2 {
        println!(
            "note: single-core runner — the shard speedup only measures lock overhead, \
             not parallelism"
        );
    }
    println!("wrote {}", out.display());
}
