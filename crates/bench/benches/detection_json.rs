//! Emits `BENCH_detection.json` at the workspace root: rows/sec for
//! the sequential engine vs. the parallel engine at 4 shards on a
//! 100k-row dirty-customer workload, plus the hospital-workload kernel
//! ablation (interned vs. cloning group-by, merged vs. per-CFD
//! tableaux) at jobs=1, plus the columnar block (column scan vs.
//! row-major scan, snapshot open vs. CSV re-ingest). Runs as part of
//! `cargo bench`
//! (`cargo bench --bench detection_json` for just this file); set
//! `BENCH_DETECTION_ROWS` / `BENCH_HOSPITAL_ROWS` to change the
//! workload sizes.

use revival_bench::perf::measure_detection;
use std::path::Path;

fn main() {
    let rows: usize =
        std::env::var("BENCH_DETECTION_ROWS").ok().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let kernel_rows: usize =
        std::env::var("BENCH_HOSPITAL_ROWS").ok().and_then(|s| s.parse().ok()).unwrap_or(60_000);
    let perf = measure_detection(rows, kernel_rows, 4, 3);
    let json = perf.to_json();
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_detection.json");
    std::fs::write(&out, &json).expect("write BENCH_detection.json");
    println!(
        "detection @ {} rows: sequential {:.1} rows/s, parallel(jobs={}) {:.1} rows/s, \
         speedup {:.2}x on {} core(s)",
        perf.rows,
        perf.sequential_rows_per_sec(),
        perf.jobs,
        perf.parallel_rows_per_sec(),
        perf.speedup(),
        perf.available_cores,
    );
    let k = &perf.kernel;
    println!(
        "kernel  @ {} hospital rows, jobs=1: interned {:.1} rows/s vs clone {:.1} rows/s \
         ({:.2}x); merged({} FDs) {:.1} rows/s vs per-CFD({}) {:.1} rows/s ({:.2}x)",
        k.rows,
        k.interned_rows_per_sec(),
        k.clone_rows_per_sec(),
        k.interned_speedup(),
        k.merged_cfds,
        k.merged_rows_per_sec(),
        k.cfds,
        k.interned_rows_per_sec(),
        k.merge_speedup(),
    );
    let c = &perf.columnar;
    println!(
        "columnar @ {} scan rows: column scan {:.1} rows/s vs row-major {:.1} rows/s ({:.2}x); \
         snapshot open {:.1} ms vs CSV re-ingest {:.1} ms at {} rows ({:.1}x)",
        c.scan_rows,
        c.scan_rows_per_s,
        c.row_scan_rows_per_s,
        c.scan_speedup(),
        c.snapshot_open_ms,
        c.csv_ingest_ms,
        c.ingest_rows,
        c.open_speedup(),
    );
    println!("wrote {}", out.display());
}
