//! Emits `BENCH_detection.json` at the workspace root: rows/sec for
//! the sequential engine vs. the parallel engine at 4 shards on a
//! 100k-row dirty-customer workload. Runs as part of `cargo bench`
//! (`cargo bench --bench detection_json` for just this file); set
//! `BENCH_DETECTION_ROWS` to change the workload size.

use revival_bench::perf::measure_detection;
use std::path::Path;

fn main() {
    let rows: usize =
        std::env::var("BENCH_DETECTION_ROWS").ok().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let perf = measure_detection(rows, 4, 3);
    let json = perf.to_json();
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_detection.json");
    std::fs::write(&out, &json).expect("write BENCH_detection.json");
    println!(
        "detection @ {} rows: sequential {:.1} rows/s, parallel(jobs={}) {:.1} rows/s, \
         speedup {:.2}x on {} core(s)",
        perf.rows,
        perf.sequential_rows_per_sec(),
        perf.jobs,
        perf.parallel_rows_per_sec(),
        perf.speedup(),
        perf.available_cores,
    );
    println!("wrote {}", out.display());
}
