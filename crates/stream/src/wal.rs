//! Per-shard write-ahead log of protocol operations.
//!
//! `semandaq serve --wal` follows the classic log + checkpoint recipe:
//! `.sdq` snapshots (one [`crate::session::DeltaSession::save_state`]
//! directory per shard) are the checkpoints, and between checkpoints
//! every acknowledged mutating request is appended here *before* the
//! ack goes out. A `kill -9` therefore loses nothing acked: restart
//! restores the snapshots and re-executes the tail of logged requests
//! (they are deterministic — the same line replayed over the same
//! state produces the same session).
//!
//! ## Record format
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a of payload][payload bytes]
//! ```
//!
//! The payload is one canonical protocol line
//! ([`crate::protocol::Request::to_line`], no trailing newline).
//! Appends are `fdatasync`'d before returning, so an `Ok` from
//! [`Wal::append`] *is* the durability point. A crash mid-append
//! leaves a torn final record; [`Wal::replay`] detects it (short
//! header, short payload, or checksum mismatch), keeps the intact
//! prefix, and reports the dropped bytes — a torn record was by
//! construction never acked, so dropping it is correct, not lossy.
//!
//! [`Wal::truncate`] resets the log to empty at each checkpoint, after
//! the snapshots are durably on disk.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use revival_relation::{durable, Error, Result};

/// `[len: u32][checksum: u64]` prefix ahead of every payload.
const HEADER: usize = 4 + 8;

/// FNV-1a, the same hash the `.sdq` snapshot trailer uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Io(format!("{context} {}: {e}", path.display()))
}

/// An append-only, fsync'd operation log. One instance per shard; the
/// shard's session lock serialises appends, so `Wal` itself needs no
/// interior locking.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    records: u64,
    /// Cached handle for the `wal_fsync_us` histogram: appends are the
    /// hottest durable path, so the registry map is touched once at open.
    fsync_hist: Arc<revival_obs::Histogram>,
    appends: Arc<revival_obs::Counter>,
}

/// Result of reading a log back: the intact records in append order,
/// plus how many trailing bytes were discarded as a torn final write.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Payload lines of every intact record, oldest first.
    pub records: Vec<String>,
    /// Bytes dropped after the last intact record (0 on a clean log).
    pub torn_bytes: usize,
}

impl Wal {
    /// Open `path` for appending, creating it (and fsyncing the parent
    /// directory, so the new entry survives a crash) if absent. Replay
    /// is the caller's job — do it *before* opening, via
    /// [`Wal::replay`], then [`Wal::truncate`] once the replayed state
    /// has been checkpointed.
    pub fn open(path: &Path) -> Result<Wal> {
        let existed = path.exists();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err("open wal", path, e))?;
        if !existed {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                durable::sync_dir(parent)?;
            }
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            records: 0,
            fsync_hist: revival_obs::global().histogram("wal_fsync_us"),
            appends: revival_obs::global().counter("wal_appends_total"),
        })
    }

    /// Records appended since open/truncate (drives auto-checkpoints).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Append one protocol line and fsync. Returns only after the
    /// record is durable; the header + payload go down in a single
    /// `write_all`, so a crash leaves at most one torn record at the
    /// tail.
    pub fn append(&mut self, line: &str) -> Result<()> {
        let payload = line.as_bytes();
        let mut rec = Vec::with_capacity(HEADER + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&fnv1a(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        self.file.write_all(&rec).map_err(|e| io_err("append wal", &self.path, e))?;
        let fsync_start = Instant::now();
        self.file.sync_data().map_err(|e| io_err("sync wal", &self.path, e))?;
        if revival_obs::enabled() {
            self.fsync_hist.record(fsync_start.elapsed().as_micros() as u64);
            self.appends.inc();
        }
        self.records += 1;
        Ok(())
    }

    /// Reset the log to empty (checkpoint taken: the snapshot now
    /// covers everything logged). Fsyncs so the truncation itself is
    /// durable — a crash right after must not resurrect pre-checkpoint
    /// records on top of the post-checkpoint snapshot.
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(0).map_err(|e| io_err("truncate wal", &self.path, e))?;
        self.file.sync_all().map_err(|e| io_err("sync wal", &self.path, e))?;
        self.records = 0;
        Ok(())
    }

    /// Read every intact record of the log at `path` (missing file =
    /// empty log). Stops at the first record whose header is short,
    /// whose payload is short, whose checksum mismatches, or whose
    /// payload is not UTF-8 — everything from there on counts as the
    /// torn tail of an unacknowledged append and is reported, not
    /// replayed.
    pub fn replay(path: &Path) -> Result<WalReplay> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReplay::default()),
            Err(e) => return Err(io_err("read wal", path, e)),
        };
        let mut replay = WalReplay::default();
        let mut at = 0usize;
        while at < bytes.len() {
            let rest = &bytes[at..];
            if rest.len() < HEADER {
                break;
            }
            let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
            let sum = u64::from_le_bytes(rest[4..12].try_into().unwrap());
            if rest.len() < HEADER + len {
                break;
            }
            let payload = &rest[HEADER..HEADER + len];
            if fnv1a(payload) != sum {
                break;
            }
            let Ok(line) = std::str::from_utf8(payload) else {
                break;
            };
            replay.records.push(line.to_string());
            at += HEADER + len;
        }
        replay.torn_bytes = bytes.len() - at;
        Ok(replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("revival_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("shard.log")
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(r#"{"cmd":"append","table":"t","row":"1,a"}"#).unwrap();
        wal.append("second line with unicode: …").unwrap();
        assert_eq!(wal.records(), 2);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.records.len(), 2);
        assert!(replay.records[0].contains("append"));
        assert_eq!(replay.records[1], "second line with unicode: …");
    }

    #[test]
    fn missing_log_is_empty() {
        let path = tmp("missing");
        let replay = Wal::replay(&path).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path).unwrap();
        wal.append("intact record").unwrap();
        wal.append("this one will be torn").unwrap();
        // Chop the file mid-way through the second record's payload,
        // as a crash between write and ack would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, vec!["intact record".to_string()]);
        assert!(replay.torn_bytes > 0);
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = tmp("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        wal.append("first").unwrap();
        wal.append("second").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the first record: both records after
        // the corruption point are untrusted.
        let target = HEADER + 2;
        bytes[target] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert!(replay.records.is_empty());
        assert!(replay.torn_bytes > 0);
    }

    #[test]
    fn truncate_resets_log() {
        let path = tmp("truncate");
        let mut wal = Wal::open(&path).unwrap();
        wal.append("pre-checkpoint").unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.records(), 0);
        assert!(Wal::replay(&path).unwrap().records.is_empty());
        wal.append("post-checkpoint").unwrap();
        assert_eq!(Wal::replay(&path).unwrap().records, vec!["post-checkpoint".to_string()]);
    }
}
