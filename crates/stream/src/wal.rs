//! Per-shard write-ahead log of protocol operations.
//!
//! `semandaq serve --wal` follows the classic log + checkpoint recipe:
//! `.sdq` snapshots (one [`crate::session::DeltaSession::save_state`]
//! directory per shard) are the checkpoints, and between checkpoints
//! every acknowledged mutating request is appended here *before* the
//! ack goes out. A `kill -9` therefore loses nothing acked: restart
//! restores the snapshots and re-executes the tail of logged requests
//! (they are deterministic — the same line replayed over the same
//! state produces the same session).
//!
//! ## Record format
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a of payload][payload bytes]
//! ```
//!
//! The payload is one canonical protocol line
//! ([`crate::protocol::Request::to_line`], no trailing newline).
//! Appends are `fdatasync`'d before returning, so an `Ok` from
//! [`Wal::append`] *is* the durability point. A crash mid-append
//! leaves a torn final record; [`Wal::replay`] detects it (short
//! header, short payload, or checksum mismatch), keeps the intact
//! prefix, and reports the dropped bytes — a torn record was by
//! construction never acked, so dropping it is correct, not lossy.
//!
//! [`Wal::truncate`] resets the log to empty at each checkpoint, after
//! the snapshots are durably on disk.
//!
//! ## Group commit
//!
//! [`GroupWal`] layers leader/follower group commit on top: writers
//! *stage* records (under the shard's session write lock, so log order
//! = apply order) and then *commit* after releasing it. The first
//! committer to find no sync in flight becomes the leader, writes every
//! staged frame in one `write_all`, and pays one `fdatasync` for the
//! whole batch; followers sleep on a condvar until the commit sequence
//! number of their record is covered. An `Ok` from [`GroupWal::commit`]
//! therefore still means *durable* — the sync covering the record
//! completed before anyone acked it. A crash mid-batch leaves exactly
//! the shapes replay already tolerates: an intact prefix of frames
//! (none of the batch was acked, and replaying applied-but-unacked ops
//! is what the WAL does anyway) plus at most one torn frame at the
//! tail.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::shard::lock_recovered;
use revival_relation::{durable, Error, Result};

/// `[len: u32][checksum: u64]` prefix ahead of every payload.
const HEADER: usize = 4 + 8;

/// FNV-1a, the same hash the `.sdq` snapshot trailer uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Io(format!("{context} {}: {e}", path.display()))
}

/// Append one framed record (`[len][fnv1a][payload]`) to `buf`.
fn push_frame(buf: &mut Vec<u8>, line: &str) {
    let payload = line.as_bytes();
    buf.reserve(HEADER + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&fnv1a(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// `Condvar::wait` recovering from mutex poisoning, like the lock
/// helpers in [`crate::shard`].
fn wait_recovered<'a, T>(cond: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cond.wait(guard).unwrap_or_else(|p| p.into_inner())
}

/// `Condvar::wait_timeout` recovering from mutex poisoning.
fn wait_timeout_recovered<'a, T>(
    cond: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> MutexGuard<'a, T> {
    match cond.wait_timeout(guard, dur) {
        Ok((g, _)) => g,
        Err(p) => p.into_inner().0,
    }
}

/// An append-only, fsync'd operation log. One instance per shard; the
/// shard's session lock serialises appends, so `Wal` itself needs no
/// interior locking.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    records: u64,
    /// Cached handle for the `wal_fsync_us` histogram: appends are the
    /// hottest durable path, so the registry map is touched once at open.
    fsync_hist: Arc<revival_obs::Histogram>,
    appends: Arc<revival_obs::Counter>,
}

/// Result of reading a log back: the intact records in append order,
/// plus how many trailing bytes were discarded as a torn final write.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Payload lines of every intact record, oldest first.
    pub records: Vec<String>,
    /// Bytes dropped after the last intact record (0 on a clean log).
    pub torn_bytes: usize,
}

impl Wal {
    /// Open `path` for appending, creating it (and fsyncing the parent
    /// directory, so the new entry survives a crash) if absent. Replay
    /// is the caller's job — do it *before* opening, via
    /// [`Wal::replay`], then [`Wal::truncate`] once the replayed state
    /// has been checkpointed.
    pub fn open(path: &Path) -> Result<Wal> {
        let existed = path.exists();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err("open wal", path, e))?;
        if !existed {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                durable::sync_dir(parent)?;
            }
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            records: 0,
            fsync_hist: revival_obs::global().histogram("wal_fsync_us"),
            appends: revival_obs::global().counter("wal_appends_total"),
        })
    }

    /// Records appended since open/truncate (drives auto-checkpoints).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Append one protocol line and fsync. Returns only after the
    /// record is durable; the header + payload go down in a single
    /// `write_all`, so a crash leaves at most one torn record at the
    /// tail.
    pub fn append(&mut self, line: &str) -> Result<()> {
        let mut rec = Vec::with_capacity(HEADER + line.len());
        push_frame(&mut rec, line);
        self.append_batch(&rec, 1)
    }

    /// Append a pre-framed batch of `records` records and fsync once.
    /// The whole batch goes down in a single `write_all`, so a crash
    /// leaves at most one torn frame at the tail — the same shape
    /// [`Wal::replay`] already tolerates for single appends, and none
    /// of the batch was acked before this returns.
    pub fn append_batch(&mut self, frames: &[u8], records: u64) -> Result<()> {
        self.file.write_all(frames).map_err(|e| io_err("append wal", &self.path, e))?;
        let fsync_start = Instant::now();
        self.file.sync_data().map_err(|e| io_err("sync wal", &self.path, e))?;
        if revival_obs::enabled() {
            self.fsync_hist.record(fsync_start.elapsed().as_micros() as u64);
            self.appends.add(records);
        }
        self.records += records;
        Ok(())
    }

    /// Reset the log to empty (checkpoint taken: the snapshot now
    /// covers everything logged). Fsyncs so the truncation itself is
    /// durable — a crash right after must not resurrect pre-checkpoint
    /// records on top of the post-checkpoint snapshot.
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(0).map_err(|e| io_err("truncate wal", &self.path, e))?;
        self.file.sync_all().map_err(|e| io_err("sync wal", &self.path, e))?;
        self.records = 0;
        Ok(())
    }

    /// Read every intact record of the log at `path` (missing file =
    /// empty log). Stops at the first record whose header is short,
    /// whose payload is short, whose checksum mismatches, or whose
    /// payload is not UTF-8 — everything from there on counts as the
    /// torn tail of an unacknowledged append and is reported, not
    /// replayed.
    pub fn replay(path: &Path) -> Result<WalReplay> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReplay::default()),
            Err(e) => return Err(io_err("read wal", path, e)),
        };
        let mut replay = WalReplay::default();
        let mut at = 0usize;
        while at < bytes.len() {
            let rest = &bytes[at..];
            if rest.len() < HEADER {
                break;
            }
            let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
            let sum = u64::from_le_bytes(rest[4..12].try_into().unwrap());
            if rest.len() < HEADER + len {
                break;
            }
            let payload = &rest[HEADER..HEADER + len];
            if fnv1a(payload) != sum {
                break;
            }
            let Ok(line) = std::str::from_utf8(payload) else {
                break;
            };
            replay.records.push(line.to_string());
            at += HEADER + len;
        }
        replay.torn_bytes = bytes.len() - at;
        Ok(replay)
    }
}

/// Book-keeping behind [`GroupWal`]'s state mutex. The file itself
/// lives under a *separate* mutex so the leader can write and fsync
/// without holding this one — stagers keep staging (and readers keep
/// reading) while a group syncs.
#[derive(Debug, Default)]
struct GroupState {
    /// Framed records staged but not yet handed to a leader.
    buf: Vec<u8>,
    /// Retired batch buffer, recycled to keep staging allocation-free.
    spare: Vec<u8>,
    /// Records currently in `buf`.
    buffered: u64,
    /// Commit sequence number of the last staged record.
    staged: u64,
    /// Every record with csn `<= synced` is durable (or covered by a
    /// checkpoint snapshot).
    synced: u64,
    /// A leader is gathering or syncing.
    syncing: bool,
    /// Group syncs performed since open.
    batches: u64,
    /// Records staged since open/truncate (drives auto-checkpoints).
    logged: u64,
    /// A batch write/fsync failed: the log tail is in an unknown state,
    /// so anything appended after it could be lost at replay. Staging
    /// and commits refuse until a checkpoint truncates the log (whose
    /// snapshot re-covers everything applied).
    failed: Option<String>,
}

/// Leader/follower group commit over one shard's [`Wal`]: many
/// concurrent writers, one `fdatasync` per batch. See the module docs
/// for the protocol; the invariants in short:
///
/// * [`GroupWal::stage`] is called under the shard's session write
///   lock, so commit sequence numbers follow apply order and replay
///   re-executes ops in the order they mutated the session.
/// * [`GroupWal::commit`] returns `Ok` only after a sync whose batch
///   included the record completed — ack still implies durable.
/// * The fsync happens outside both the session lock and the state
///   mutex, so reads and further staging proceed while a group syncs.
#[derive(Debug)]
pub struct GroupWal {
    wal: Mutex<Wal>,
    state: Mutex<GroupState>,
    cond: Condvar,
    /// Bounded gather window: a freshly elected leader sleeps this long
    /// (letting more writers stage into its batch) before syncing. Zero
    /// means sync immediately — batching then comes only from writers
    /// that staged while a previous sync was in flight.
    max_wait: Duration,
    group_size: Arc<revival_obs::Histogram>,
    commits: Arc<revival_obs::Counter>,
    saved: Arc<revival_obs::Counter>,
}

impl GroupWal {
    /// Open the log at `path` (see [`Wal::open`]) with the given gather
    /// window.
    pub fn open(path: &Path, max_wait: Duration) -> Result<GroupWal> {
        Ok(GroupWal {
            wal: Mutex::new(Wal::open(path)?),
            state: Mutex::new(GroupState::default()),
            cond: Condvar::new(),
            max_wait,
            group_size: revival_obs::global().histogram("wal_group_size"),
            commits: revival_obs::global().counter("wal_group_commits_total"),
            saved: revival_obs::global().counter("wal_group_syncs_saved_total"),
        })
    }

    /// Stage one protocol line into the pending batch and return its
    /// commit sequence number. Call under the shard's session write
    /// lock; the record is *not* durable until [`GroupWal::commit`]
    /// returns `Ok` for the returned number.
    pub fn stage(&self, line: &str) -> Result<u64> {
        let mut st = lock_recovered(&self.state);
        if let Some(msg) = &st.failed {
            return Err(Error::Io(msg.clone()));
        }
        push_frame(&mut st.buf, line);
        st.buffered += 1;
        st.staged += 1;
        st.logged += 1;
        Ok(st.staged)
    }

    /// Block until the record with commit sequence number `csn` is
    /// durable. Call *after* releasing the session write lock. The
    /// first caller to find no sync in flight leads: it waits out the
    /// gather window, takes every staged frame, and syncs them as one
    /// batch; everyone the batch covered is released together.
    pub fn commit(&self, csn: u64) -> Result<()> {
        let mut st = lock_recovered(&self.state);
        loop {
            if st.synced >= csn {
                return Ok(());
            }
            if let Some(msg) = &st.failed {
                return Err(Error::Io(msg.clone()));
            }
            if st.syncing {
                // Follower: the in-flight (or gathering) leader covers
                // us, or the loop elects us once it finishes.
                st = wait_recovered(&self.cond, st);
                continue;
            }
            st.syncing = true;
            if !self.max_wait.is_zero() {
                // Bounded gather: sleep with the state mutex released
                // so more writers can stage into this batch. The loop
                // re-arms after spurious wakeups, so a lone writer is
                // delayed at most `max_wait` — never indefinitely.
                let deadline = Instant::now() + self.max_wait;
                while let Some(left) = deadline.checked_duration_since(Instant::now()) {
                    st = wait_timeout_recovered(&self.cond, st, left);
                }
            }
            let next = std::mem::take(&mut st.spare);
            let batch = std::mem::replace(&mut st.buf, next);
            let records = st.buffered;
            let top = st.staged;
            st.buffered = 0;
            drop(st);

            let result = lock_recovered(&self.wal).append_batch(&batch, records);

            st = lock_recovered(&self.state);
            st.syncing = false;
            match result {
                Ok(()) => {
                    st.synced = top;
                    st.batches += 1;
                    let mut spare = batch;
                    spare.clear();
                    if spare.capacity() > st.spare.capacity() {
                        st.spare = spare;
                    }
                    if revival_obs::enabled() {
                        self.group_size.record(records);
                        self.commits.inc();
                        self.saved.add(records.saturating_sub(1));
                    }
                    self.cond.notify_all();
                    // Loop: `synced >= csn` now — we took everything
                    // staged, and our own record was staged.
                }
                Err(e) => {
                    st.failed = Some(e.to_string());
                    self.cond.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Records staged since open/truncate (drives auto-checkpoints).
    pub fn records(&self) -> u64 {
        lock_recovered(&self.state).logged
    }

    /// Group syncs performed since open (tests; the registry carries
    /// the process-global `wal_group_commits_total`).
    pub fn group_commits(&self) -> u64 {
        lock_recovered(&self.state).batches
    }

    /// Checkpoint truncation: wait out any in-flight sync, reset the
    /// log, and mark everything staged as covered. Call with the
    /// shard's session *read* lock held (as checkpoints do): staging
    /// only happens under the write lock, so every staged record was
    /// applied before the checkpoint's read lock was granted and is in
    /// the snapshot — dropping its frame loses nothing, and waiting
    /// followers are released as durable-via-snapshot. Also clears a
    /// sticky batch failure, since the snapshot re-covers the log.
    pub fn truncate_covered(&self) -> Result<()> {
        let mut st = lock_recovered(&self.state);
        while st.syncing {
            st = wait_recovered(&self.cond, st);
        }
        lock_recovered(&self.wal).truncate()?;
        st.buf.clear();
        st.buffered = 0;
        st.synced = st.staged;
        st.logged = 0;
        st.failed = None;
        self.cond.notify_all();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("revival_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("shard.log")
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(r#"{"cmd":"append","table":"t","row":"1,a"}"#).unwrap();
        wal.append("second line with unicode: …").unwrap();
        assert_eq!(wal.records(), 2);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.records.len(), 2);
        assert!(replay.records[0].contains("append"));
        assert_eq!(replay.records[1], "second line with unicode: …");
    }

    #[test]
    fn missing_log_is_empty() {
        let path = tmp("missing");
        let replay = Wal::replay(&path).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path).unwrap();
        wal.append("intact record").unwrap();
        wal.append("this one will be torn").unwrap();
        // Chop the file mid-way through the second record's payload,
        // as a crash between write and ack would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, vec!["intact record".to_string()]);
        assert!(replay.torn_bytes > 0);
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = tmp("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        wal.append("first").unwrap();
        wal.append("second").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the first record: both records after
        // the corruption point are untrusted.
        let target = HEADER + 2;
        bytes[target] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert!(replay.records.is_empty());
        assert!(replay.torn_bytes > 0);
    }

    #[test]
    fn group_commit_is_durable_and_replayable_in_stage_order() {
        let path = tmp("group_roundtrip");
        let wal = GroupWal::open(&path, Duration::ZERO).unwrap();
        let a = wal.stage("first").unwrap();
        let b = wal.stage("second").unwrap();
        let c = wal.stage("third").unwrap();
        assert!(a < b && b < c, "commit sequence numbers follow stage order");
        assert_eq!(wal.records(), 3);
        // Committing the top record covers the whole batch in one sync…
        wal.commit(c).unwrap();
        assert_eq!(wal.group_commits(), 1);
        // …so earlier numbers return without another sync.
        wal.commit(a).unwrap();
        wal.commit(b).unwrap();
        assert_eq!(wal.group_commits(), 1);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, vec!["first", "second", "third"]);
        assert_eq!(replay.torn_bytes, 0);
    }

    #[test]
    fn lone_writer_is_delayed_at_most_the_gather_window() {
        let path = tmp("group_lone");
        let window = Duration::from_millis(200);
        let wal = GroupWal::open(&path, window).unwrap();
        let csn = wal.stage("only writer").unwrap();
        let start = Instant::now();
        wal.commit(csn).unwrap();
        let elapsed = start.elapsed();
        // The gather window is honoured in full (no second writer ever
        // arrives to cut it short)…
        assert!(elapsed >= Duration::from_millis(150), "gather window engaged: {elapsed:?}");
        // …and the commit returns once it closes — bounded, not
        // waiting for company that never comes. The slack over the
        // 200ms window absorbs scheduler noise and the fsync itself.
        assert!(elapsed < Duration::from_secs(5), "lone writer must not wait: {elapsed:?}");
        assert_eq!(Wal::replay(&path).unwrap().records, vec!["only writer"]);
    }

    #[test]
    fn concurrent_commits_share_syncs() {
        let path = tmp("group_concurrent");
        let wal = Arc::new(GroupWal::open(&path, Duration::from_millis(20)).unwrap());
        let threads = 4;
        let per_thread = 4;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let wal = Arc::clone(&wal);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let csn = wal.stage(&format!("t{t}r{i}")).unwrap();
                        wal.commit(csn).unwrap();
                    }
                });
            }
        });
        let total = (threads * per_thread) as u64;
        assert_eq!(wal.records(), total);
        assert!(
            wal.group_commits() < total,
            "grouping must engage: {} syncs for {} records",
            wal.group_commits(),
            total
        );
        assert_eq!(Wal::replay(&path).unwrap().records.len(), total as usize);
    }

    #[test]
    fn truncate_covered_releases_staged_records_and_resets() {
        let path = tmp("group_truncate");
        let wal = GroupWal::open(&path, Duration::ZERO).unwrap();
        let a = wal.stage("covered by sync").unwrap();
        wal.commit(a).unwrap();
        let b = wal.stage("covered by snapshot").unwrap();
        // The checkpoint path: the snapshot covers everything staged,
        // so truncation releases `b` without it ever hitting the file.
        wal.truncate_covered().unwrap();
        wal.commit(b).unwrap();
        assert_eq!(wal.records(), 0);
        assert!(Wal::replay(&path).unwrap().records.is_empty());
        let c = wal.stage("after checkpoint").unwrap();
        wal.commit(c).unwrap();
        assert_eq!(Wal::replay(&path).unwrap().records, vec!["after checkpoint"]);
    }

    #[test]
    fn truncate_resets_log() {
        let path = tmp("truncate");
        let mut wal = Wal::open(&path).unwrap();
        wal.append("pre-checkpoint").unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.records(), 0);
        assert!(Wal::replay(&path).unwrap().records.is_empty());
        wal.append("post-checkpoint").unwrap();
        assert_eq!(Wal::replay(&path).unwrap().records, vec!["post-checkpoint".to_string()]);
    }
}
