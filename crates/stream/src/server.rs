//! The std-only TCP front end for a shared [`DeltaSession`].
//!
//! `semandaq serve` is this module plus flag parsing: a
//! [`std::net::TcpListener`] accept loop hands connections to a fixed
//! pool of worker threads over an [`std::sync::mpsc`] channel, and every
//! worker speaks the line-delimited JSON [`protocol`](crate::protocol)
//! against one session behind an [`RwLock`] — reads (`count`, `report`)
//! take the shared lock and run concurrently; writes (`register`,
//! `append`, `delete`, `update`, `repair`) serialise on the exclusive
//! lock, where each delta is `O(|Δ|)` through the incremental
//! detectors, so the lock is held briefly even under heavy traffic.
//!
//! Shutdown is cooperative: a `shutdown` request flips an atomic flag;
//! the accept loop (non-blocking, 5 ms poll) stops handing out
//! connections, workers finish their current client and exit, and
//! [`Server::run`] joins them before returning.

use crate::protocol::{Request, Response};
use crate::session::DeltaSession;
use revival_constraints::parser::{parse_cfds, parse_cinds};
use revival_relation::{csv, Schema};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Largest accepted request line (a registered CSV payload rides in
/// one line, so the cap is generous; past it the connection drops).
const MAX_REQUEST_BYTES: usize = 64 * 1024 * 1024;

/// State shared between the accept loop and the workers.
struct Shared {
    session: RwLock<DeltaSession>,
    shutdown: AtomicBool,
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with a
    /// fresh session; `jobs` shards the session's burst rescans.
    pub fn bind(addr: &str, jobs: usize) -> std::io::Result<Server> {
        Self::bind_with_session(addr, DeltaSession::new(jobs))
    }

    /// Bind serving an existing session — the restart path: restore
    /// state with [`DeltaSession::restore_state`], hand it here, and
    /// clients resume against the tables and suites they knew.
    pub fn bind_with_session(addr: &str, session: DeltaSession) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                session: RwLock::new(session),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (read the port back after binding `:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a client sends `shutdown`. Blocks; returns once all
    /// `workers` threads have drained.
    pub fn run(self, workers: usize) -> std::io::Result<()> {
        self.run_into_session(workers).map(|_| ())
    }

    /// [`Server::run`], returning the final session state after a clean
    /// shutdown — what `semandaq serve --state DIR` snapshots to disk so
    /// the next start restores exactly what clients last saw.
    pub fn run_into_session(self, workers: usize) -> std::io::Result<DeltaSession> {
        let workers = workers.max(1);
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let conn = match rx.lock().expect("rx lock").recv() {
                        Ok(conn) => conn,
                        Err(_) => break, // accept loop gone
                    };
                    handle_connection(conn, &self.shared);
                });
            }
            while !self.shared.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((conn, _)) => {
                        if tx.send(conn).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            drop(tx);
        });
        let shared = Arc::into_inner(self.shared)
            .expect("all worker references dropped after the scope joins");
        Ok(shared.session.into_inner().expect("session lock poisoned"))
    }
}

/// Serve one client: read request lines, answer each, stop at EOF,
/// protocol error or shutdown. A read timeout keeps idle connections
/// from pinning a worker past shutdown.
fn handle_connection(conn: TcpStream, shared: &Shared) {
    let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(write_half) = conn.try_clone() else { return };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(conn);
    // Lines accumulate as bytes, not via `read_line`: on a timeout
    // `read_until` keeps whatever arrived in the buffer, whereas
    // `read_line` would *discard* a partial read that happens to end
    // mid-way through a multi-byte UTF-8 character.
    let mut line: Vec<u8> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // One line bounds one request; a client streaming newline-free
        // bytes must not grow the buffer (and the process) unboundedly.
        if line.len() > MAX_REQUEST_BYTES {
            let resp = Response::err(format!("request line exceeds {MAX_REQUEST_BYTES} bytes"));
            let _ = writer.write_all(resp.to_line().as_bytes());
            let _ = writer.flush();
            return;
        }
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return, // EOF
            // read_until returns only at the delimiter or EOF, so the
            // line is complete either way.
            Ok(_) => {
                let response = match std::str::from_utf8(&line) {
                    Ok(text) if text.trim().is_empty() => {
                        line.clear();
                        continue;
                    }
                    Ok(text) => answer(text, shared),
                    Err(_) => (Response::err("request line is not valid UTF-8"), false),
                };
                line.clear();
                let (response, stop) = response;
                if writer.write_all(response.to_line().as_bytes()).is_err()
                    || writer.flush().is_err()
                    || stop
                {
                    return;
                }
            }
            // Timeout mid-wait or mid-line; the retry resumes `line`.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => return,
        }
    }
}

/// Answer one request line; the bool asks the caller to drop the
/// connection (shutdown).
fn answer(line: &str, shared: &Shared) -> (Response, bool) {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => return (Response::err(e), false),
    };
    if matches!(request, Request::Shutdown) {
        shared.shutdown.store(true, Ordering::SeqCst);
        return (Response::ok().with_int("stopping", 1), true);
    }
    (handle_request(request, shared), false)
}

/// Execute one (non-shutdown) request against the shared session.
fn handle_request(request: Request, shared: &Shared) -> Response {
    match request {
        Request::Register { table, csv: csv_text, cfds, merged } => {
            let parsed = match csv::read_table_infer(&table, &csv_text) {
                Ok(t) => t,
                Err(e) => return Response::err(e),
            };
            let mut suite = match parse_cfds(&cfds, parsed.schema()) {
                Ok(s) => s,
                Err(e) => return Response::err(e),
            };
            if merged {
                // Engine-layer merged tableaux at the session boundary:
                // one maintained grouping state per embedded FD. The
                // response's `cfds` reports the merged suite size the
                // session's counts and report indices refer to.
                suite = revival_constraints::cfd::merge_by_embedded_fd(&suite);
            }
            let rows = parsed.len();
            let n_cfds = suite.len();
            let mut session = shared.session.write().expect("session lock");
            match session.register(parsed, suite) {
                Ok(()) => match session.violation_count() {
                    Ok(v) => Response::ok()
                        .with_int("rows", rows as i64)
                        .with_int("cfds", n_cfds as i64)
                        .with_int("violations", v as i64),
                    Err(e) => Response::err(e),
                },
                Err(e) => Response::err(e),
            }
        }
        Request::Cinds { text } => {
            let mut session = shared.session.write().expect("session lock");
            let schemas: Vec<Schema> = {
                let catalog = session.catalog();
                let mut names: Vec<String> = catalog.relation_names().map(str::to_string).collect();
                names.sort();
                names
                    .iter()
                    .filter_map(|n| catalog.get(n).ok())
                    .map(|t| t.schema().clone())
                    .collect()
            };
            let cinds = match parse_cinds(&text, &schemas) {
                Ok(c) => c,
                Err(e) => return Response::err(e),
            };
            let n = cinds.len();
            match session.add_cinds(cinds) {
                Ok(()) => Response::ok().with_int("cinds", n as i64),
                Err(e) => Response::err(e),
            }
        }
        Request::Append { table, row } => {
            let mut session = shared.session.write().expect("session lock");
            let parsed =
                match session.table(&table).and_then(|t| csv::parse_line(t.schema(), &row, 0)) {
                    Ok(r) => r,
                    Err(e) => return Response::err(e),
                };
            match session.insert(&table, parsed) {
                Ok(id) => match session.violation_count() {
                    Ok(v) => Response::ok()
                        .with_int("tuple", id.0 as i64)
                        .with_int("violations", v as i64),
                    Err(e) => Response::err(e),
                },
                Err(e) => Response::err(e),
            }
        }
        Request::Delete { table, tuple } => {
            let mut session = shared.session.write().expect("session lock");
            match session.delete(&table, revival_relation::TupleId(tuple)) {
                Ok(_) => match session.violation_count() {
                    Ok(v) => Response::ok().with_int("violations", v as i64),
                    Err(e) => Response::err(e),
                },
                Err(e) => Response::err(e),
            }
        }
        Request::Update { table, tuple, attr, value } => {
            let mut session = shared.session.write().expect("session lock");
            let parsed = match session.table(&table).and_then(|t| {
                let attr_id = t.schema().attr_id(&attr)?;
                Ok((attr_id, t.schema().attribute(attr_id).ty.parse(&value)?))
            }) {
                Ok(p) => p,
                Err(e) => return Response::err(e),
            };
            match session.update(&table, revival_relation::TupleId(tuple), parsed.0, parsed.1) {
                Ok(()) => match session.violation_count() {
                    Ok(v) => Response::ok().with_int("violations", v as i64),
                    Err(e) => Response::err(e),
                },
                Err(e) => Response::err(e),
            }
        }
        Request::Count => {
            let session = shared.session.read().expect("session lock");
            match session.violation_count() {
                Ok(v) => Response::ok().with_int("violations", v as i64),
                Err(e) => Response::err(e),
            }
        }
        Request::Report { max } => {
            let session = shared.session.read().expect("session lock");
            match session.report() {
                Ok(report) => {
                    let text = session.describe(&report, max);
                    Response::ok()
                        .with_int("violations", report.len() as i64)
                        .with_str("text", text)
                }
                Err(e) => Response::err(e),
            }
        }
        Request::Repair { table } => {
            let mut session = shared.session.write().expect("session lock");
            match session.repair(&table) {
                Ok(stats) => match session.violation_count() {
                    Ok(v) => Response::ok()
                        .with_int("tuples_edited", stats.tuples_edited as i64)
                        .with_int("cells_changed", stats.cells_changed as i64)
                        .with_int("violations", v as i64),
                    Err(e) => Response::err(e),
                },
                Err(e) => Response::err(e),
            }
        }
        Request::Discover { table, min_support, max_lhs, confidence_pct, register } => {
            use revival_discovery::{DiscoverJob, DiscoverOptions, DiscoveryEngine};
            let mine = |snapshot: &revival_relation::Table, jobs: usize| {
                let options = DiscoverOptions {
                    min_support,
                    max_lhs,
                    min_confidence: f64::from(confidence_pct) / 100.0,
                    jobs,
                    ..DiscoverOptions::default()
                };
                revival_discovery::ParallelDiscovery.run(&DiscoverJob::on_table(snapshot, options))
            };
            let respond = |d: &revival_discovery::Discovered, schema: &Schema| {
                let text: String = d
                    .vetted
                    .iter()
                    .map(|c| revival_constraints::parser::cfd_to_text(c, schema))
                    .collect();
                Response::ok()
                    .with_int("rules", d.rules.len() as i64)
                    .with_int("vetted", d.vetted.len() as i64)
                    .with_str("text", text)
                    .with_int("levels", d.stats.levels as i64)
                    .with_int("candidates_pruned", d.stats.candidates_pruned as i64)
                    .with_int("lattice_truncated", i64::from(d.stats.lattice_truncated))
                    .with_str(
                        "satisfiable",
                        match d.satisfiable {
                            revival_constraints::analysis::Outcome::Yes => "yes",
                            revival_constraints::analysis::Outcome::No => "no",
                            revival_constraints::analysis::Outcome::ResourceLimit => "unknown",
                        },
                    )
            };
            if register {
                // Hold the write lock across the mine so the vetted
                // suite installs against exactly the state it profiled;
                // `set_cfds` swaps only the constraints — the table,
                // tuple ids, pending-repair baseline, and CINDs stay.
                let mut session = shared.session.write().expect("session lock");
                let snapshot = match session.table(&table) {
                    Ok(t) => t.clone(),
                    Err(e) => return Response::err(e),
                };
                let discovered = match mine(&snapshot, session.jobs()) {
                    Ok(d) => d,
                    Err(e) => return Response::err(e),
                };
                if let Err(e) = session.set_cfds(&table, discovered.vetted.clone()) {
                    return Response::err(e);
                }
                match session.violation_count() {
                    Ok(v) => {
                        respond(&discovered, snapshot.schema()).with_int("violations", v as i64)
                    }
                    Err(e) => Response::err(e),
                }
            } else {
                // Read-only discovery mines on a snapshot *outside* any
                // lock, so a long mine never blocks other clients.
                let (snapshot, jobs) = {
                    let session = shared.session.read().expect("session lock");
                    match session.table(&table) {
                        Ok(t) => (t.clone(), session.jobs()),
                        Err(e) => return Response::err(e),
                    }
                };
                match mine(&snapshot, jobs) {
                    Ok(d) => respond(&d, snapshot.schema()),
                    Err(e) => Response::err(e),
                }
            }
        }
        Request::Shutdown => unreachable!("handled by answer()"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        req: &Request,
    ) -> Response {
        stream.write_all(req.to_line().as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(_) if line.ends_with('\n') => break,
                Ok(0) => panic!("server closed early"),
                Ok(_) => continue,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    continue
                }
                Err(e) => panic!("read: {e}"),
            }
        }
        Response::parse(&line).unwrap()
    }

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn register_append_report_repair_shutdown() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(2).unwrap());

        let (mut stream, mut reader) = connect(addr);
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Register {
                table: "customer".into(),
                csv: "cc,zip,street\n44,EH8,Crichton\n".into(),
                cfds: "customer([cc='44', zip] -> [street])".into(),
                merged: false,
            },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("rows"), Some(1));
        assert_eq!(resp.int("violations"), Some(0));

        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Append { table: "customer".into(), row: "44,EH8,Mayfield".into() },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("violations"), Some(1));

        // A second concurrent client sees the same live state.
        let (mut stream2, mut reader2) = connect(addr);
        let resp = roundtrip(&mut stream2, &mut reader2, &Request::Count);
        assert_eq!(resp.int("violations"), Some(1));

        let resp = roundtrip(&mut stream, &mut reader, &Request::Report { max: 10 });
        assert!(resp.str("text").unwrap().contains("disagree on street"), "{resp:?}");

        let resp =
            roundtrip(&mut stream, &mut reader, &Request::Repair { table: "customer".into() });
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("violations"), Some(0));
        assert_eq!(resp.int("tuples_edited"), Some(1));

        // Malformed and unknown requests answer errors, connection stays up.
        stream.write_all(b"not json\n").unwrap();
        let mut line = String::new();
        while !line.ends_with('\n') {
            match reader.read_line(&mut line) {
                Ok(0) => panic!("closed"),
                Ok(_) => {}
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) => panic!("{e}"),
            }
        }
        assert!(!Response::parse(&line).unwrap().is_ok());
        let resp = roundtrip(&mut stream, &mut reader, &Request::Repair { table: "nope".into() });
        assert!(!resp.is_ok());

        let resp = roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn discover_mines_and_optionally_registers() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(1).unwrap());
        let (mut stream, mut reader) = connect(addr);
        // Register data only — no constraints yet. zip → street holds.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Register {
                table: "customer".into(),
                csv: "cc,zip,street\n\
                      44,EH8,Crichton\n44,EH8,Crichton\n44,EH8,Crichton\n\
                      44,G1,High\n44,G1,High\n44,G1,High\n"
                    .into(),
                cfds: String::new(),
                merged: false,
            },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("violations"), Some(0));

        // Mine and auto-register the vetted suite.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Discover {
                table: "customer".into(),
                min_support: 2,
                max_lhs: 2,
                confidence_pct: 100,
                register: true,
            },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert!(resp.int("rules").unwrap() > 0, "{resp:?}");
        assert!(resp.int("vetted").unwrap() > 0, "{resp:?}");
        assert_eq!(resp.str("satisfiable"), Some("yes"));
        let text = resp.str("text").unwrap();
        assert!(text.contains("customer(["), "suite must be in parse syntax: {text}");
        // The mined suite holds on the profiled data.
        assert_eq!(resp.int("violations"), Some(0), "{resp:?}");

        // A row breaking zip → street now trips the registered suite.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Append { table: "customer".into(), row: "44,EH8,Mayfield".into() },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert!(resp.int("violations").unwrap() > 0, "{resp:?}");

        // Unknown table errors; the connection stays usable.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Discover {
                table: "nope".into(),
                min_support: 3,
                max_lhs: 2,
                confidence_pct: 100,
                register: false,
            },
        );
        assert!(!resp.is_ok());
        let resp = roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn register_merged_folds_the_suite_by_embedded_fd() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(1).unwrap());
        let (mut stream, mut reader) = connect(addr);
        // Two CFDs over the same embedded FD merge into one grouping
        // state; the response's `cfds` reports the merged size.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Register {
                table: "customer".into(),
                csv: "cc,zip,street\n44,EH8,Crichton\n44,EH8,Mayfield\n".into(),
                cfds: "customer([cc='44', zip] -> [street])\n\
                       customer([cc, zip] -> [street])"
                    .into(),
                merged: true,
            },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("cfds"), Some(1), "merged registration folds the suite");
        assert_eq!(resp.int("violations"), Some(2), "one per merged tableau row");
        let resp = roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }
}
