//! The std-only TCP front end for a [`ShardedSession`].
//!
//! `semandaq serve` is this module plus flag parsing: a
//! [`std::net::TcpListener`] accept loop hands connections to a fixed
//! pool of worker threads over an [`std::sync::mpsc`] channel, and
//! every worker speaks the line-delimited JSON
//! [`protocol`](crate::protocol) against the sharded session tier —
//! requests route to one shard by table name, reads (`count`,
//! `report`) take shared locks (or, with `"replica":true`, no session
//! lock at all), writes serialise only against their own shard.
//!
//! Fault containment, per request: [`handle_connection`] wraps every
//! request in [`std::panic::catch_unwind`], so a panicking request
//! answers a typed JSON error instead of killing its worker; every
//! lock acquisition in the stack recovers from poisoning
//! ([`crate::shard`]'s `*_recovered` helpers), so a panic that *does*
//! poison a lock cannot brick later connections either.
//!
//! Shutdown is cooperative: a `shutdown` request flips an atomic flag;
//! the accept loop (non-blocking, 5 ms poll) stops handing out
//! connections, workers finish their current client and exit, and
//! [`Server::run`] joins them, takes a final checkpoint when a state
//! directory is configured, and returns a [`RunSummary`].

use crate::protocol::{Request, Response};
use crate::shard::{lock_recovered, RestoreSummary, ServeOptions, ShardedSession};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Largest accepted request line (a registered CSV payload rides in
/// one line, so the cap is generous; past it the connection drops).
const MAX_REQUEST_BYTES: usize = 64 * 1024 * 1024;

/// Every protocol verb, for pre-registered per-verb instruments.
const VERBS: [&str; 13] = [
    "register",
    "cinds",
    "append",
    "delete",
    "update",
    "count",
    "report",
    "repair",
    "discover",
    "checkpoint",
    "metrics",
    "profile",
    "shutdown",
];

/// Requests the per-request profile ring keeps (the `profile` verb
/// reads them back, newest first).
const PROFILE_RING_CAP: usize = 64;

/// Registry snapshots the windowed-metrics ring keeps. At one
/// snapshot per windowed `metrics` request, 128 covers minutes of
/// `metrics --watch` at any sane poll interval.
const SNAPSHOT_RING_CAP: usize = 128;

/// Request phases in pipeline order. `parse` and `ack` are measured
/// here; the middle five are recorded by [`crate::shard`] through the
/// thread-local phase accumulator (`wal_append` is the in-memory
/// stage, `commit_wait` the wait for the group fsync that covers the
/// record). `ack` is the in-process residual — everything a request
/// spent outside an instrumented phase (read-path work, response
/// building) — so the seven always sum to the total.
const PHASE_NAMES: [&str; 7] =
    ["parse", "route", "lock_wait", "apply", "wal_append", "commit_wait", "ack"];

/// One verb's pre-registered instruments.
struct VerbInstruments {
    verb: &'static str,
    requests: Arc<revival_obs::Counter>,
    errors: Arc<revival_obs::Counter>,
    latency: Arc<revival_obs::Histogram>,
    /// Counter value at bind — the registry is process-global and
    /// cumulative, so per-run tallies (the shutdown summary) subtract
    /// this baseline.
    base: u64,
}

/// Instrument handles resolved once at bind time, so the request hot
/// path never formats a metric name or touches the registry map.
struct ServeObs {
    verbs: Vec<VerbInstruments>,
    phases: Vec<(&'static str, Arc<revival_obs::Histogram>)>,
    slow_total: Arc<revival_obs::Counter>,
    panics: Arc<revival_obs::Counter>,
    parse_errors: Arc<revival_obs::Counter>,
    /// Group-commit counters with their values at bind: the registry
    /// is process-global, so the shutdown summary reports this run's
    /// deltas, not the process totals.
    group_commits: Arc<revival_obs::Counter>,
    group_commits_base: u64,
    group_records: Arc<revival_obs::Counter>,
    group_records_base: u64,
    slow_log_us: Option<u64>,
}

impl ServeObs {
    fn new(slow_log_us: Option<u64>) -> ServeObs {
        let reg = revival_obs::global();
        let group_commits = reg.counter("wal_group_commits_total");
        let group_commits_base = group_commits.get();
        let group_records = reg.counter("wal_appends_total");
        let group_records_base = group_records.get();
        ServeObs {
            group_commits,
            group_commits_base,
            group_records,
            group_records_base,
            verbs: VERBS
                .iter()
                .map(|v| {
                    let requests = reg.counter(&format!("serve_requests_total{{verb=\"{v}\"}}"));
                    VerbInstruments {
                        verb: v,
                        base: requests.get(),
                        requests,
                        errors: reg.counter(&format!("serve_request_errors_total{{verb=\"{v}\"}}")),
                        latency: reg.histogram(&format!("serve_request_us{{verb=\"{v}\"}}")),
                    }
                })
                .collect(),
            phases: PHASE_NAMES
                .iter()
                .map(|p| (*p, reg.histogram(&format!("serve_phase_us{{phase=\"{p}\"}}"))))
                .collect(),
            slow_total: reg.counter("serve_slow_requests_total"),
            panics: reg.counter("serve_requests_panicked_total"),
            parse_errors: reg.counter("serve_parse_errors_total"),
            slow_log_us,
        }
    }

    /// Record one completed request: verb counter + latency, per-phase
    /// histograms, optional trace event, optional slow-log line.
    fn observe(
        &self,
        verb: &'static str,
        ok: bool,
        start: Instant,
        total_us: u64,
        phases: &[(&'static str, u64)],
    ) {
        if let Some(vi) = self.verbs.iter().find(|v| v.verb == verb) {
            vi.requests.inc();
            if !ok {
                vi.errors.inc();
            }
            vi.latency.record(total_us);
        }
        for (name, us) in phases {
            if let Some((_, hist)) = self.phases.iter().find(|(p, _)| p == name) {
                hist.record(*us);
            }
        }
        if revival_obs::trace::active() {
            revival_obs::trace::record_at(&format!("serve.{verb}"), start, total_us);
        }
        if let Some(limit) = self.slow_log_us {
            if total_us >= limit {
                self.slow_total.inc();
                let breakdown: String =
                    phases.iter().map(|(n, us)| format!(" {n}={us}us")).collect();
                eprintln!(
                    "semandaq serve: slow request verb={verb} total={total_us}us \
                     (threshold {limit}us):{breakdown}"
                );
            }
        }
    }

    /// `(group syncs, records they covered)` since bind.
    fn group_commit_tallies(&self) -> (u64, u64) {
        (
            self.group_commits.get().saturating_sub(self.group_commits_base),
            self.group_records.get().saturating_sub(self.group_records_base),
        )
    }

    /// `(verb, requests)` handled since bind, verbs seen at least once.
    fn verb_tallies(&self) -> Vec<(&'static str, u64)> {
        self.verbs
            .iter()
            .filter_map(|v| {
                let n = v.requests.get().saturating_sub(v.base);
                (n > 0).then_some((v.verb, n))
            })
            .collect()
    }
}

/// State shared between the accept loop and the workers.
struct Shared {
    tier: ShardedSession,
    shutdown: AtomicBool,
    obs: ServeObs,
    start: Instant,
    /// Per-request phase profiles of the last [`PROFILE_RING_CAP`]
    /// requests — the `profile` verb's backing store.
    profiles: revival_obs::ProfileRing,
    /// Timestamped registry snapshots; each windowed `metrics` request
    /// pushes one, and two of them bound the rates/percentiles window.
    snapshots: Mutex<revival_obs::SnapshotRing>,
}

/// What a clean shutdown did.
#[derive(Debug, Default, Clone)]
pub struct RunSummary {
    /// Relations written by the final checkpoint (0 without `--state`).
    pub saved_relations: usize,
    /// Seconds between bind and the end of shutdown.
    pub uptime_secs: u64,
    /// Requests handled per verb (verbs seen at least once, protocol
    /// order).
    pub requests_by_verb: Vec<(&'static str, u64)>,
    /// Total requests handled across all verbs.
    pub total_requests: u64,
    /// Per-shard checkpoints taken over the run (boot one included).
    pub checkpoints: u64,
    /// WAL group commits (one `fdatasync` each) over the run.
    pub wal_group_commits: u64,
    /// WAL records those group commits covered; divided by
    /// [`RunSummary::wal_group_commits`] this is the mean group size.
    pub wal_group_records: u64,
    /// Chrome-trace events written at shutdown (0 without
    /// `--trace-out`).
    pub trace_events: usize,
}

impl RunSummary {
    /// Mean records per group commit (0.0 when the WAL was off or
    /// idle).
    pub fn mean_group_size(&self) -> f64 {
        if self.wal_group_commits == 0 {
            0.0
        } else {
            self.wal_group_records as f64 / self.wal_group_commits as f64
        }
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    trace_out: Option<PathBuf>,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with a
    /// fresh single-shard session and no persistence; `jobs` shards the
    /// session's burst rescans.
    pub fn bind(addr: &str, jobs: usize) -> std::io::Result<Server> {
        Self::bind_opts(addr, &ServeOptions { jobs, ..ServeOptions::default() }).map(|(s, _)| s)
    }

    /// Bind with the full serve configuration — shards, WAL,
    /// checkpoint cadence, state directory. Restores and replays per
    /// [`ShardedSession::open`]; the returned [`RestoreSummary`] says
    /// what came back from disk.
    pub fn bind_opts(addr: &str, opts: &ServeOptions) -> std::io::Result<(Server, RestoreSummary)> {
        if opts.trace_out.is_some() {
            revival_obs::trace::enable();
        }
        let (tier, restored) =
            ShardedSession::open(opts).map_err(|e| std::io::Error::other(e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        Ok((
            Server {
                listener,
                shared: Arc::new(Shared {
                    tier,
                    shutdown: AtomicBool::new(false),
                    obs: ServeObs::new(opts.slow_log_us),
                    start: Instant::now(),
                    profiles: revival_obs::ProfileRing::new(PROFILE_RING_CAP),
                    snapshots: Mutex::new(revival_obs::SnapshotRing::new(SNAPSHOT_RING_CAP)),
                }),
                trace_out: opts.trace_out.clone(),
            },
            restored,
        ))
    }

    /// The bound address (read the port back after binding `:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a client sends `shutdown`. Blocks; returns once all
    /// `workers` threads have drained and the final checkpoint (when a
    /// state directory is configured) is durably on disk.
    pub fn run(self, workers: usize) -> std::io::Result<RunSummary> {
        let workers = workers.max(1);
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // A worker death while holding the receiver must
                    // not strand the accept loop: recover the mutex.
                    let conn = match lock_recovered(&rx).recv() {
                        Ok(conn) => conn,
                        Err(_) => break, // accept loop gone
                    };
                    handle_connection(conn, &self.shared);
                });
            }
            while !self.shared.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((conn, _)) => {
                        if tx.send(conn).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            drop(tx);
        });
        let shared = Arc::into_inner(self.shared)
            .expect("all worker references dropped after the scope joins");
        let saved = shared
            .tier
            .checkpoint()
            .map_err(|e| std::io::Error::other(format!("shutdown checkpoint: {e}")))?;
        let mut trace_events = 0;
        if let Some(path) = &self.trace_out {
            trace_events = revival_obs::trace::write_to(path).map_err(|e| {
                std::io::Error::other(format!("write trace {}: {e}", path.display()))
            })?;
        }
        let requests_by_verb = shared.obs.verb_tallies();
        let total_requests = requests_by_verb.iter().map(|(_, n)| n).sum();
        let (wal_group_commits, wal_group_records) = shared.obs.group_commit_tallies();
        Ok(RunSummary {
            saved_relations: saved,
            uptime_secs: shared.start.elapsed().as_secs(),
            requests_by_verb,
            total_requests,
            checkpoints: shared.tier.checkpoints_taken(),
            wal_group_commits,
            wal_group_records,
            trace_events,
        })
    }
}

/// Serve one client: read request lines, answer each, stop at EOF,
/// protocol error or shutdown. A read timeout keeps idle connections
/// from pinning a worker past shutdown.
fn handle_connection(conn: TcpStream, shared: &Shared) {
    let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(write_half) = conn.try_clone() else { return };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(conn);
    // Lines accumulate as bytes, not via `read_line`: on a timeout
    // `read_until` keeps whatever arrived in the buffer, whereas
    // `read_line` would *discard* a partial read that happens to end
    // mid-way through a multi-byte UTF-8 character.
    let mut line: Vec<u8> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // One line bounds one request; a client streaming newline-free
        // bytes must not grow the buffer (and the process) unboundedly.
        if line.len() > MAX_REQUEST_BYTES {
            let resp = Response::err(format!("request line exceeds {MAX_REQUEST_BYTES} bytes"));
            let _ = writer.write_all(resp.to_line().as_bytes());
            let _ = writer.flush();
            return;
        }
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return, // EOF
            // read_until returns only at the delimiter or EOF, so the
            // line is complete either way.
            Ok(_) => {
                let response = match std::str::from_utf8(&line) {
                    Ok(text) if text.trim().is_empty() => {
                        line.clear();
                        continue;
                    }
                    Ok(text) => answer_contained(text, shared),
                    Err(_) => (Response::err("request line is not valid UTF-8"), false),
                };
                line.clear();
                let (response, stop) = response;
                if writer.write_all(response.to_line().as_bytes()).is_err()
                    || writer.flush().is_err()
                    || stop
                {
                    return;
                }
            }
            // Timeout mid-wait or mid-line; the retry resumes `line`.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => return,
        }
    }
}

/// [`answer`] behind a panic boundary: a request that panics (bad
/// input tripping an assertion deep in the stack) answers a typed
/// error on this connection and leaves the worker — and, thanks to
/// poison recovery at every lock, the whole server — serving.
fn answer_contained(line: &str, shared: &Shared) -> (Response, bool) {
    std::panic::catch_unwind(AssertUnwindSafe(|| answer(line, shared))).unwrap_or_else(|payload| {
        shared.obs.panics.inc();
        let what = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        (Response::err(format!("request panicked: {what}")), false)
    })
}

/// Answer one request line; the bool asks the caller to drop the
/// connection (shutdown).
fn answer(line: &str, shared: &Shared) -> (Response, bool) {
    if !revival_obs::enabled() {
        let request = match Request::parse(line) {
            Ok(r) => r,
            Err(e) => return (Response::err(e), false),
        };
        return dispatch(&request, shared);
    }
    let start = Instant::now();
    revival_obs::phases_reset();
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            shared.obs.parse_errors.inc();
            return (Response::err(e), false);
        }
    };
    let parse_us = start.elapsed().as_micros() as u64;
    let verb = request.verb();
    let (response, stop) = dispatch(&request, shared);
    let total_us = start.elapsed().as_micros() as u64;
    let mut phases = revival_obs::phases_take();
    phases.insert(0, ("parse", parse_us));
    // A shard-recorded phase outside PHASE_NAMES would be subtracted
    // from `ack` yet dropped from the `serve_phase_us` histograms —
    // exactly the drift the phase-accounting tests exist to prevent.
    debug_assert!(
        phases.iter().all(|(n, _)| PHASE_NAMES.contains(n)),
        "phase outside PHASE_NAMES: {phases:?}"
    );
    let accounted: u64 = phases.iter().map(|(_, us)| *us).sum();
    // Phase timers truncate to µs independently of the outer timer, so
    // their sum can exceed the measured total by a µs or two; clamp the
    // total up so the phases always sum to it *exactly*.
    let total_us = total_us.max(accounted);
    phases.push(("ack", total_us - accounted));
    shared.obs.observe(verb, response.is_ok(), start, total_us, &phases);
    shared.profiles.push(verb, response.is_ok(), total_us, &phases);
    (response, stop)
}

/// Route one parsed request to the tier (or handle the two verbs the
/// server answers itself: `shutdown` and `metrics`).
fn dispatch(request: &Request, shared: &Shared) -> (Response, bool) {
    match request {
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (Response::ok().with_int("stopping", 1), true)
        }
        Request::Metrics { window_secs } => {
            let reg = revival_obs::global();
            let mut response = Response::ok()
                .with_int("uptime_secs", shared.start.elapsed().as_secs() as i64)
                .with_int("shards", shared.tier.shards() as i64)
                .with_str("json", reg.to_json())
                .with_str("text", reg.render_text());
            if *window_secs > 0 {
                // Each windowed request pushes one snapshot; the window
                // renders against the oldest snapshot still inside it,
                // so a polling client (`metrics --watch`) sees rates
                // over its own poll cadence. One snapshot held means no
                // window yet — the field appears from the second poll.
                let mut ring = lock_recovered(&shared.snapshots);
                ring.record(reg);
                if let Some(windowed) = ring.render_window(*window_secs) {
                    response = response.with_str("windowed", windowed);
                }
            }
            (response, false)
        }
        Request::Profile { last } => {
            let n = (*last).min(PROFILE_RING_CAP as u64) as usize;
            (
                Response::ok()
                    .with_int("count", shared.profiles.last(n).len() as i64)
                    .with_str("json", shared.profiles.to_json(n))
                    .with_str("text", shared.profiles.render_text(n)),
                false,
            )
        }
        _ => (shared.tier.handle(request), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        req: &Request,
    ) -> Response {
        send_raw(stream, reader, &req.to_line())
    }

    fn send_raw(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Response {
        stream.write_all(line.as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(_) if line.ends_with('\n') => break,
                Ok(0) => panic!("server closed early"),
                Ok(_) => continue,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    continue
                }
                Err(e) => panic!("read: {e}"),
            }
        }
        Response::parse(&line).unwrap()
    }

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn register_append_report_repair_shutdown() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(2).unwrap());

        let (mut stream, mut reader) = connect(addr);
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Register {
                table: "customer".into(),
                csv: "cc,zip,street\n44,EH8,Crichton\n".into(),
                cfds: "customer([cc='44', zip] -> [street])".into(),
                merged: false,
            },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("rows"), Some(1));
        assert_eq!(resp.int("violations"), Some(0));

        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Append { table: "customer".into(), row: "44,EH8,Mayfield".into() },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("violations"), Some(1));

        // A second concurrent client sees the same live state.
        let (mut stream2, mut reader2) = connect(addr);
        let resp = roundtrip(&mut stream2, &mut reader2, &Request::Count { replica: false });
        assert_eq!(resp.int("violations"), Some(1));

        let resp =
            roundtrip(&mut stream, &mut reader, &Request::Report { max: 10, replica: false });
        assert!(resp.str("text").unwrap().contains("disagree on street"), "{resp:?}");

        let resp =
            roundtrip(&mut stream, &mut reader, &Request::Repair { table: "customer".into() });
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("violations"), Some(0));
        assert_eq!(resp.int("tuples_edited"), Some(1));

        // Malformed and unknown requests answer errors, connection stays up.
        stream.write_all(b"not json\n").unwrap();
        let mut line = String::new();
        while !line.ends_with('\n') {
            match reader.read_line(&mut line) {
                Ok(0) => panic!("closed"),
                Ok(_) => {}
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) => panic!("{e}"),
            }
        }
        assert!(!Response::parse(&line).unwrap().is_ok());
        let resp = roundtrip(&mut stream, &mut reader, &Request::Repair { table: "nope".into() });
        assert!(!resp.is_ok());

        let resp = roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn panicking_request_answers_error_and_server_survives() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(2).unwrap());

        // A duplicate CSV header trips an assertion inside schema
        // construction — a genuine panic, not a typed error — while the
        // worker holds the shard's write lock.
        let (mut stream, mut reader) = connect(addr);
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Register {
                table: "dup".into(),
                csv: "a,a\n1,2\n".into(),
                cfds: String::new(),
                merged: false,
            },
        );
        assert!(!resp.is_ok(), "panicking request must answer an error: {resp:?}");
        assert!(resp.str("error").unwrap().contains("panicked"), "{resp:?}");

        // Same connection keeps working…
        let resp = roundtrip(&mut stream, &mut reader, &Request::Count { replica: false });
        assert!(resp.is_ok(), "connection after panic: {resp:?}");

        // …and so does a *fresh* connection doing real work, despite
        // the poisoned shard lock the panic left behind.
        let (mut stream2, mut reader2) = connect(addr);
        let resp = roundtrip(
            &mut stream2,
            &mut reader2,
            &Request::Register {
                table: "customer".into(),
                csv: "cc,zip,street\n44,EH8,Crichton\n".into(),
                cfds: "customer([cc, zip] -> [street])".into(),
                merged: false,
            },
        );
        assert!(resp.is_ok(), "healthy op after panic: {resp:?}");
        let resp = roundtrip(
            &mut stream2,
            &mut reader2,
            &Request::Append { table: "customer".into(), row: "44,EH8,Mayfield".into() },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("violations"), Some(1));

        let resp = roundtrip(&mut stream2, &mut reader2, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn sharded_server_with_replica_reads_and_checkpoint() {
        let (server, restored) = Server::bind_opts(
            "127.0.0.1:0",
            &ServeOptions { shards: 4, ..ServeOptions::default() },
        )
        .unwrap();
        assert_eq!(restored, RestoreSummary::default());
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(2).unwrap());
        let (mut stream, mut reader) = connect(addr);
        for i in 0..4 {
            let resp = roundtrip(
                &mut stream,
                &mut reader,
                &Request::Register {
                    table: format!("t{i}"),
                    csv: "a,b\n1,x\n1,y\n".into(),
                    cfds: format!("t{i}([a] -> [b])"),
                    merged: false,
                },
            );
            assert!(resp.is_ok(), "{resp:?}");
        }
        let resp = roundtrip(&mut stream, &mut reader, &Request::Count { replica: false });
        assert_eq!(resp.int("violations"), Some(4), "one violated group per table");
        // Replicas predate the registers until a checkpoint publishes.
        let resp = roundtrip(&mut stream, &mut reader, &Request::Count { replica: true });
        assert_eq!(resp.int("violations"), Some(0));
        assert_eq!(resp.int("stale_ops"), Some(4));
        let resp = roundtrip(&mut stream, &mut reader, &Request::Checkpoint);
        assert!(resp.is_ok(), "{resp:?}");
        let resp = roundtrip(&mut stream, &mut reader, &Request::Count { replica: true });
        assert_eq!(resp.int("violations"), Some(4));
        assert_eq!(resp.int("stale_ops"), Some(0));
        let resp = roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn discover_mines_and_optionally_registers() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(1).unwrap());
        let (mut stream, mut reader) = connect(addr);
        // Register data only — no constraints yet. zip → street holds.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Register {
                table: "customer".into(),
                csv: "cc,zip,street\n\
                      44,EH8,Crichton\n44,EH8,Crichton\n44,EH8,Crichton\n\
                      44,G1,High\n44,G1,High\n44,G1,High\n"
                    .into(),
                cfds: String::new(),
                merged: false,
            },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("violations"), Some(0));

        // Mine and auto-register the vetted suite.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Discover {
                table: "customer".into(),
                min_support: 2,
                max_lhs: 2,
                confidence_pct: 100,
                register: true,
            },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert!(resp.int("rules").unwrap() > 0, "{resp:?}");
        assert!(resp.int("vetted").unwrap() > 0, "{resp:?}");
        assert_eq!(resp.str("satisfiable"), Some("yes"));
        let text = resp.str("text").unwrap();
        assert!(text.contains("customer(["), "suite must be in parse syntax: {text}");
        // The mined suite holds on the profiled data.
        assert_eq!(resp.int("violations"), Some(0), "{resp:?}");

        // A row breaking zip → street now trips the registered suite.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Append { table: "customer".into(), row: "44,EH8,Mayfield".into() },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert!(resp.int("violations").unwrap() > 0, "{resp:?}");

        // Unknown table errors; the connection stays usable.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Discover {
                table: "nope".into(),
                min_support: 3,
                max_lhs: 2,
                confidence_pct: 100,
                register: false,
            },
        );
        assert!(!resp.is_ok());
        let resp = roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn register_merged_folds_the_suite_by_embedded_fd() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(1).unwrap());
        let (mut stream, mut reader) = connect(addr);
        // Two CFDs over the same embedded FD merge into one grouping
        // state; the response's `cfds` reports the merged size.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Register {
                table: "customer".into(),
                csv: "cc,zip,street\n44,EH8,Crichton\n44,EH8,Mayfield\n".into(),
                cfds: "customer([cc='44', zip] -> [street])\n\
                       customer([cc, zip] -> [street])"
                    .into(),
                merged: true,
            },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("cfds"), Some(1), "merged registration folds the suite");
        assert_eq!(resp.int("violations"), Some(2), "one per merged tableau row");
        let resp = roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn metrics_verb_round_trips_over_the_protocol() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(1).unwrap());
        let (mut stream, mut reader) = connect(addr);
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Register {
                table: "m".into(),
                csv: "a,b\n1,x\n".into(),
                cfds: "m([a] -> [b])".into(),
                merged: false,
            },
        );
        assert!(resp.is_ok(), "{resp:?}");
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Append { table: "m".into(), row: "1,y".into() },
        );
        assert!(resp.is_ok(), "{resp:?}");

        let resp = roundtrip(&mut stream, &mut reader, &Request::Metrics { window_secs: 0 });
        assert!(resp.is_ok(), "{resp:?}");
        assert!(resp.int("uptime_secs").is_some());
        let json = resp.str("json").unwrap();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
        // The registry is process-global (other tests in this binary
        // contribute), so assertions are on presence, not exact counts.
        let text = resp.str("text").unwrap();
        assert!(text.contains("serve_requests_total{verb=\"append\"}"), "{text}");
        assert!(text.contains("serve_request_us_count{verb=\"append\"}"), "{text}");
        assert!(text.contains("serve_request_us{verb=\"append\",quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("serve_phase_us_count{phase=\"apply\"}"), "{text}");

        let resp = roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        assert!(resp.is_ok());
        let summary = handle.join().unwrap();
        assert!(summary.total_requests >= 4, "{summary:?}");
        assert!(
            summary.requests_by_verb.iter().any(|(v, n)| *v == "metrics" && *n >= 1),
            "{summary:?}"
        );
        assert!(summary.requests_by_verb.iter().any(|(v, n)| *v == "append" && *n == 1));
    }

    #[test]
    fn phase_names_are_parse_plus_shard_phases_plus_ack() {
        let expected: Vec<&str> = std::iter::once("parse")
            .chain(crate::shard::SHARD_PHASES)
            .chain(std::iter::once("ack"))
            .collect();
        assert_eq!(PHASE_NAMES.to_vec(), expected, "serve and shard phase lists drifted");
    }

    /// Satellite: the seven phases must sum *exactly* to the recorded
    /// request total for every verb — including the replica read path,
    /// which takes no session lock and used to report its whole cost
    /// as the `ack` residual.
    #[test]
    fn phases_sum_exactly_to_total_for_every_verb() {
        let (server, _) = Server::bind_opts(
            "127.0.0.1:0",
            &ServeOptions { shards: 2, ..ServeOptions::default() },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(1).unwrap());
        let (mut stream, mut reader) = connect(addr);
        let requests = vec![
            Request::Register {
                table: "p".into(),
                csv: "a,b\n1,x\n1,y\n".into(),
                cfds: "p([a] -> [b])".into(),
                merged: false,
            },
            Request::Append { table: "p".into(), row: "1,z".into() },
            Request::Count { replica: false },
            Request::Count { replica: true },
            Request::Report { max: 10, replica: false },
            Request::Report { max: 10, replica: true },
            Request::Checkpoint,
            Request::Count { replica: true },
            Request::Metrics { window_secs: 0 },
        ];
        let n_requests = requests.len();
        for req in &requests {
            let resp = roundtrip(&mut stream, &mut reader, req);
            assert!(resp.is_ok(), "{req:?} -> {resp:?}");
        }
        let resp = roundtrip(&mut stream, &mut reader, &Request::Profile { last: 64 });
        assert!(resp.is_ok(), "{resp:?}");
        assert!(resp.int("count").unwrap() >= n_requests as i64, "{resp:?}");
        // Text lines look like `#3 count ok 123us: parse=1us ... ack=2us`.
        let text = resp.str("text").unwrap();
        let mut verbs_seen = Vec::new();
        for line in text.lines() {
            let (head, tail) = line.split_once(':').unwrap_or_else(|| panic!("bad line: {line}"));
            let mut parts = head.split_whitespace();
            let _seq = parts.next().unwrap();
            let verb = parts.next().unwrap();
            let _ok = parts.next().unwrap();
            let total: u64 = parts.next().unwrap().strip_suffix("us").unwrap().parse().unwrap();
            let mut sum = 0u64;
            for kv in tail.split_whitespace() {
                let (name, us) = kv.split_once('=').unwrap();
                assert!(PHASE_NAMES.contains(&name), "phase `{name}` not in PHASE_NAMES: {line}");
                sum += us.strip_suffix("us").unwrap().parse::<u64>().unwrap();
            }
            assert_eq!(sum, total, "phase drift on `{verb}`: {line}");
            verbs_seen.push(verb.to_string());
        }
        for verb in ["register", "append", "count", "report", "checkpoint", "metrics"] {
            assert!(verbs_seen.iter().any(|v| v == verb), "no profile for `{verb}`: {text}");
        }
        // The replica reads must attribute work to `apply`, not lump
        // everything into `ack` — count appears 3×, two of them replica.
        assert_eq!(verbs_seen.iter().filter(|v| *v == "count").count(), 3);
        let resp = roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn windowed_metrics_appear_from_the_second_poll() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(1).unwrap());
        let (mut stream, mut reader) = connect(addr);
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Register {
                table: "w".into(),
                csv: "a,b\n1,x\n".into(),
                cfds: "w([a] -> [b])".into(),
                merged: false,
            },
        );
        assert!(resp.is_ok(), "{resp:?}");
        // First windowed poll holds one snapshot: no window yet.
        let resp = roundtrip(&mut stream, &mut reader, &Request::Metrics { window_secs: 60 });
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.str("windowed"), None, "{resp:?}");
        // Traffic between polls...
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Append { table: "w".into(), row: "1,y".into() },
        );
        assert!(resp.is_ok(), "{resp:?}");
        // ...shows up as a windowed delta on the second poll.
        let resp = roundtrip(&mut stream, &mut reader, &Request::Metrics { window_secs: 60 });
        assert!(resp.is_ok(), "{resp:?}");
        let windowed = resp.str("windowed").unwrap();
        assert!(windowed.starts_with("window:"), "{windowed}");
        assert!(
            windowed.contains("serve_requests_total{verb=\"append\"} +1"),
            "append delta missing: {windowed}"
        );
        let resp = roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }
}
