//! The std-only TCP front end for a [`ShardedSession`].
//!
//! `semandaq serve` is this module plus flag parsing: a
//! [`std::net::TcpListener`] accept loop hands connections to a fixed
//! pool of worker threads over an [`std::sync::mpsc`] channel, and
//! every worker speaks the line-delimited JSON
//! [`protocol`](crate::protocol) against the sharded session tier —
//! requests route to one shard by table name, reads (`count`,
//! `report`) take shared locks (or, with `"replica":true`, no session
//! lock at all), writes serialise only against their own shard.
//!
//! Fault containment, per request: [`handle_connection`] wraps every
//! request in [`std::panic::catch_unwind`], so a panicking request
//! answers a typed JSON error instead of killing its worker; every
//! lock acquisition in the stack recovers from poisoning
//! ([`crate::shard`]'s `*_recovered` helpers), so a panic that *does*
//! poison a lock cannot brick later connections either.
//!
//! Shutdown is cooperative: a `shutdown` request flips an atomic flag;
//! the accept loop (non-blocking, 5 ms poll) stops handing out
//! connections, workers finish their current client and exit, and
//! [`Server::run`] joins them, takes a final checkpoint when a state
//! directory is configured, and returns a [`RunSummary`].

use crate::protocol::{Request, Response};
use crate::shard::{lock_recovered, RestoreSummary, ServeOptions, ShardedSession};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Largest accepted request line (a registered CSV payload rides in
/// one line, so the cap is generous; past it the connection drops).
const MAX_REQUEST_BYTES: usize = 64 * 1024 * 1024;

/// State shared between the accept loop and the workers.
struct Shared {
    tier: ShardedSession,
    shutdown: AtomicBool,
}

/// What a clean shutdown did.
#[derive(Debug, Default, Clone, Copy)]
pub struct RunSummary {
    /// Relations written by the final checkpoint (0 without `--state`).
    pub saved_relations: usize,
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with a
    /// fresh single-shard session and no persistence; `jobs` shards the
    /// session's burst rescans.
    pub fn bind(addr: &str, jobs: usize) -> std::io::Result<Server> {
        Self::bind_opts(addr, &ServeOptions { jobs, ..ServeOptions::default() }).map(|(s, _)| s)
    }

    /// Bind with the full serve configuration — shards, WAL,
    /// checkpoint cadence, state directory. Restores and replays per
    /// [`ShardedSession::open`]; the returned [`RestoreSummary`] says
    /// what came back from disk.
    pub fn bind_opts(addr: &str, opts: &ServeOptions) -> std::io::Result<(Server, RestoreSummary)> {
        let (tier, restored) =
            ShardedSession::open(opts).map_err(|e| std::io::Error::other(e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        Ok((
            Server {
                listener,
                shared: Arc::new(Shared { tier, shutdown: AtomicBool::new(false) }),
            },
            restored,
        ))
    }

    /// The bound address (read the port back after binding `:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a client sends `shutdown`. Blocks; returns once all
    /// `workers` threads have drained and the final checkpoint (when a
    /// state directory is configured) is durably on disk.
    pub fn run(self, workers: usize) -> std::io::Result<RunSummary> {
        let workers = workers.max(1);
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // A worker death while holding the receiver must
                    // not strand the accept loop: recover the mutex.
                    let conn = match lock_recovered(&rx).recv() {
                        Ok(conn) => conn,
                        Err(_) => break, // accept loop gone
                    };
                    handle_connection(conn, &self.shared);
                });
            }
            while !self.shared.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((conn, _)) => {
                        if tx.send(conn).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            drop(tx);
        });
        let shared = Arc::into_inner(self.shared)
            .expect("all worker references dropped after the scope joins");
        let saved = shared
            .tier
            .checkpoint()
            .map_err(|e| std::io::Error::other(format!("shutdown checkpoint: {e}")))?;
        Ok(RunSummary { saved_relations: saved })
    }
}

/// Serve one client: read request lines, answer each, stop at EOF,
/// protocol error or shutdown. A read timeout keeps idle connections
/// from pinning a worker past shutdown.
fn handle_connection(conn: TcpStream, shared: &Shared) {
    let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(write_half) = conn.try_clone() else { return };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(conn);
    // Lines accumulate as bytes, not via `read_line`: on a timeout
    // `read_until` keeps whatever arrived in the buffer, whereas
    // `read_line` would *discard* a partial read that happens to end
    // mid-way through a multi-byte UTF-8 character.
    let mut line: Vec<u8> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // One line bounds one request; a client streaming newline-free
        // bytes must not grow the buffer (and the process) unboundedly.
        if line.len() > MAX_REQUEST_BYTES {
            let resp = Response::err(format!("request line exceeds {MAX_REQUEST_BYTES} bytes"));
            let _ = writer.write_all(resp.to_line().as_bytes());
            let _ = writer.flush();
            return;
        }
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return, // EOF
            // read_until returns only at the delimiter or EOF, so the
            // line is complete either way.
            Ok(_) => {
                let response = match std::str::from_utf8(&line) {
                    Ok(text) if text.trim().is_empty() => {
                        line.clear();
                        continue;
                    }
                    Ok(text) => answer_contained(text, shared),
                    Err(_) => (Response::err("request line is not valid UTF-8"), false),
                };
                line.clear();
                let (response, stop) = response;
                if writer.write_all(response.to_line().as_bytes()).is_err()
                    || writer.flush().is_err()
                    || stop
                {
                    return;
                }
            }
            // Timeout mid-wait or mid-line; the retry resumes `line`.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => return,
        }
    }
}

/// [`answer`] behind a panic boundary: a request that panics (bad
/// input tripping an assertion deep in the stack) answers a typed
/// error on this connection and leaves the worker — and, thanks to
/// poison recovery at every lock, the whole server — serving.
fn answer_contained(line: &str, shared: &Shared) -> (Response, bool) {
    std::panic::catch_unwind(AssertUnwindSafe(|| answer(line, shared))).unwrap_or_else(|payload| {
        let what = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        (Response::err(format!("request panicked: {what}")), false)
    })
}

/// Answer one request line; the bool asks the caller to drop the
/// connection (shutdown).
fn answer(line: &str, shared: &Shared) -> (Response, bool) {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => return (Response::err(e), false),
    };
    if matches!(request, Request::Shutdown) {
        shared.shutdown.store(true, Ordering::SeqCst);
        return (Response::ok().with_int("stopping", 1), true);
    }
    (shared.tier.handle(&request), false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        req: &Request,
    ) -> Response {
        send_raw(stream, reader, &req.to_line())
    }

    fn send_raw(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Response {
        stream.write_all(line.as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(_) if line.ends_with('\n') => break,
                Ok(0) => panic!("server closed early"),
                Ok(_) => continue,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    continue
                }
                Err(e) => panic!("read: {e}"),
            }
        }
        Response::parse(&line).unwrap()
    }

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn register_append_report_repair_shutdown() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(2).unwrap());

        let (mut stream, mut reader) = connect(addr);
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Register {
                table: "customer".into(),
                csv: "cc,zip,street\n44,EH8,Crichton\n".into(),
                cfds: "customer([cc='44', zip] -> [street])".into(),
                merged: false,
            },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("rows"), Some(1));
        assert_eq!(resp.int("violations"), Some(0));

        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Append { table: "customer".into(), row: "44,EH8,Mayfield".into() },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("violations"), Some(1));

        // A second concurrent client sees the same live state.
        let (mut stream2, mut reader2) = connect(addr);
        let resp = roundtrip(&mut stream2, &mut reader2, &Request::Count { replica: false });
        assert_eq!(resp.int("violations"), Some(1));

        let resp =
            roundtrip(&mut stream, &mut reader, &Request::Report { max: 10, replica: false });
        assert!(resp.str("text").unwrap().contains("disagree on street"), "{resp:?}");

        let resp =
            roundtrip(&mut stream, &mut reader, &Request::Repair { table: "customer".into() });
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("violations"), Some(0));
        assert_eq!(resp.int("tuples_edited"), Some(1));

        // Malformed and unknown requests answer errors, connection stays up.
        stream.write_all(b"not json\n").unwrap();
        let mut line = String::new();
        while !line.ends_with('\n') {
            match reader.read_line(&mut line) {
                Ok(0) => panic!("closed"),
                Ok(_) => {}
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) => panic!("{e}"),
            }
        }
        assert!(!Response::parse(&line).unwrap().is_ok());
        let resp = roundtrip(&mut stream, &mut reader, &Request::Repair { table: "nope".into() });
        assert!(!resp.is_ok());

        let resp = roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn panicking_request_answers_error_and_server_survives() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(2).unwrap());

        // A duplicate CSV header trips an assertion inside schema
        // construction — a genuine panic, not a typed error — while the
        // worker holds the shard's write lock.
        let (mut stream, mut reader) = connect(addr);
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Register {
                table: "dup".into(),
                csv: "a,a\n1,2\n".into(),
                cfds: String::new(),
                merged: false,
            },
        );
        assert!(!resp.is_ok(), "panicking request must answer an error: {resp:?}");
        assert!(resp.str("error").unwrap().contains("panicked"), "{resp:?}");

        // Same connection keeps working…
        let resp = roundtrip(&mut stream, &mut reader, &Request::Count { replica: false });
        assert!(resp.is_ok(), "connection after panic: {resp:?}");

        // …and so does a *fresh* connection doing real work, despite
        // the poisoned shard lock the panic left behind.
        let (mut stream2, mut reader2) = connect(addr);
        let resp = roundtrip(
            &mut stream2,
            &mut reader2,
            &Request::Register {
                table: "customer".into(),
                csv: "cc,zip,street\n44,EH8,Crichton\n".into(),
                cfds: "customer([cc, zip] -> [street])".into(),
                merged: false,
            },
        );
        assert!(resp.is_ok(), "healthy op after panic: {resp:?}");
        let resp = roundtrip(
            &mut stream2,
            &mut reader2,
            &Request::Append { table: "customer".into(), row: "44,EH8,Mayfield".into() },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("violations"), Some(1));

        let resp = roundtrip(&mut stream2, &mut reader2, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn sharded_server_with_replica_reads_and_checkpoint() {
        let (server, restored) = Server::bind_opts(
            "127.0.0.1:0",
            &ServeOptions { shards: 4, ..ServeOptions::default() },
        )
        .unwrap();
        assert_eq!(restored, RestoreSummary::default());
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(2).unwrap());
        let (mut stream, mut reader) = connect(addr);
        for i in 0..4 {
            let resp = roundtrip(
                &mut stream,
                &mut reader,
                &Request::Register {
                    table: format!("t{i}"),
                    csv: "a,b\n1,x\n1,y\n".into(),
                    cfds: format!("t{i}([a] -> [b])"),
                    merged: false,
                },
            );
            assert!(resp.is_ok(), "{resp:?}");
        }
        let resp = roundtrip(&mut stream, &mut reader, &Request::Count { replica: false });
        assert_eq!(resp.int("violations"), Some(4), "one violated group per table");
        // Replicas predate the registers until a checkpoint publishes.
        let resp = roundtrip(&mut stream, &mut reader, &Request::Count { replica: true });
        assert_eq!(resp.int("violations"), Some(0));
        assert_eq!(resp.int("stale_ops"), Some(4));
        let resp = roundtrip(&mut stream, &mut reader, &Request::Checkpoint);
        assert!(resp.is_ok(), "{resp:?}");
        let resp = roundtrip(&mut stream, &mut reader, &Request::Count { replica: true });
        assert_eq!(resp.int("violations"), Some(4));
        assert_eq!(resp.int("stale_ops"), Some(0));
        let resp = roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn discover_mines_and_optionally_registers() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(1).unwrap());
        let (mut stream, mut reader) = connect(addr);
        // Register data only — no constraints yet. zip → street holds.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Register {
                table: "customer".into(),
                csv: "cc,zip,street\n\
                      44,EH8,Crichton\n44,EH8,Crichton\n44,EH8,Crichton\n\
                      44,G1,High\n44,G1,High\n44,G1,High\n"
                    .into(),
                cfds: String::new(),
                merged: false,
            },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("violations"), Some(0));

        // Mine and auto-register the vetted suite.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Discover {
                table: "customer".into(),
                min_support: 2,
                max_lhs: 2,
                confidence_pct: 100,
                register: true,
            },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert!(resp.int("rules").unwrap() > 0, "{resp:?}");
        assert!(resp.int("vetted").unwrap() > 0, "{resp:?}");
        assert_eq!(resp.str("satisfiable"), Some("yes"));
        let text = resp.str("text").unwrap();
        assert!(text.contains("customer(["), "suite must be in parse syntax: {text}");
        // The mined suite holds on the profiled data.
        assert_eq!(resp.int("violations"), Some(0), "{resp:?}");

        // A row breaking zip → street now trips the registered suite.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Append { table: "customer".into(), row: "44,EH8,Mayfield".into() },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert!(resp.int("violations").unwrap() > 0, "{resp:?}");

        // Unknown table errors; the connection stays usable.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Discover {
                table: "nope".into(),
                min_support: 3,
                max_lhs: 2,
                confidence_pct: 100,
                register: false,
            },
        );
        assert!(!resp.is_ok());
        let resp = roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn register_merged_folds_the_suite_by_embedded_fd() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run(1).unwrap());
        let (mut stream, mut reader) = connect(addr);
        // Two CFDs over the same embedded FD merge into one grouping
        // state; the response's `cfds` reports the merged size.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Request::Register {
                table: "customer".into(),
                csv: "cc,zip,street\n44,EH8,Crichton\n44,EH8,Mayfield\n".into(),
                cfds: "customer([cc='44', zip] -> [street])\n\
                       customer([cc, zip] -> [street])"
                    .into(),
                merged: true,
            },
        );
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("cfds"), Some(1), "merged registration folds the suite");
        assert_eq!(resp.int("violations"), Some(2), "one per merged tableau row");
        let resp = roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        assert!(resp.is_ok());
        handle.join().unwrap();
    }
}
