//! Tailing a growing CSV file: turn appended byte chunks into rows.
//!
//! `semandaq watch` polls a file's length and feeds whatever grew to a
//! [`CsvTail`], which buffers the trailing partial line (writers rarely
//! append in whole-line units) and parses every completed line against
//! the schema via [`csv::parse_line`]. Like
//! [`csv::read_table_stream`], tail mode is line-oriented: quoting is
//! honoured within a line, but embedded newlines inside quotes are not
//! supported — a quoted field left open at a chunk boundary stays
//! buffered until its line completes.

use revival_relation::{csv, Result, Schema, Value};

/// Incremental line-oriented CSV parser for appended file chunks.
pub struct CsvTail {
    schema: Schema,
    /// Trailing bytes of the last chunk that did not end in `\n`.
    partial: String,
    /// 1-based line number of the next completed line (for errors).
    line: usize,
}

impl CsvTail {
    /// A tail starting *after* the header — the caller has already
    /// loaded the base table, so every completed line is a row.
    /// `next_line` is the 1-based file line the tail starts at.
    pub fn new(schema: Schema, next_line: usize) -> Self {
        CsvTail { schema, partial: String::new(), line: next_line }
    }

    /// Bytes currently buffered waiting for their newline.
    pub fn pending(&self) -> &str {
        &self.partial
    }

    /// Feed an appended chunk; returns the rows of every line the chunk
    /// completed. Blank lines are skipped.
    pub fn feed(&mut self, chunk: &str) -> Result<Vec<Vec<Value>>> {
        self.partial.push_str(chunk);
        let mut rows = Vec::new();
        while let Some(nl) = self.partial.find('\n') {
            let line: String = self.partial.drain(..=nl).collect();
            let line = line.trim_end_matches(['\n', '\r']);
            if !line.is_empty() {
                rows.push(csv::parse_line(&self.schema, line, self.line)?);
            }
            self.line += 1;
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_relation::Type;

    fn schema() -> Schema {
        Schema::builder("r").attr("name", Type::Str).attr("age", Type::Int).build()
    }

    #[test]
    fn whole_and_partial_lines() {
        let mut tail = CsvTail::new(schema(), 2);
        let rows = tail.feed("alice,30\nbo").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::from("alice"));
        assert_eq!(tail.pending(), "bo");
        let rows = tail.feed("b,41\n").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], vec![Value::from("bob"), Value::Int(41)]);
        assert!(tail.pending().is_empty());
    }

    #[test]
    fn quoted_fields_and_crlf() {
        let mut tail = CsvTail::new(schema(), 2);
        let rows = tail.feed("\"smith, jane\",50\r\n\n").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::from("smith, jane"));
    }

    #[test]
    fn bad_rows_error_with_line_number() {
        let mut tail = CsvTail::new(schema(), 7);
        let err = tail.feed("alice,notanint\n").unwrap_err();
        assert!(err.to_string().contains('7'), "{err}");
        // Arity errors too.
        let mut tail = CsvTail::new(schema(), 2);
        assert!(tail.feed("only-one-field\n").is_err());
    }

    #[test]
    fn many_lines_in_one_chunk() {
        let mut tail = CsvTail::new(schema(), 2);
        let rows = tail.feed("a,1\nb,2\nc,3\n").unwrap();
        assert_eq!(rows.len(), 3);
    }
}
