//! Delta sessions: live violation state under streaming edits.
//!
//! A [`DeltaSession`] is the long-running counterpart of the one-shot
//! `DetectJob`: it registers tables together with the CFDs that
//! constrain them (plus optional CINDs across them), bulk-loads each
//! table into an [`IncrementalDetector`], and then maintains the
//! violation state under insert/delete/update deltas at `O(|Δ|)`
//! expected cost per operation — the E11 trade-off of the TODS paper,
//! kept warm instead of re-derived per request.
//!
//! Two regimes, mirroring [`IncRepair::repair_delta_auto`]:
//!
//! * **trickle** — each delta flows through the per-relation
//!   [`IncrementalDetector`]s; violation counts stay exact without
//!   touching the base;
//! * **burst** — when one [`DeltaSession::apply`] batch has at least as
//!   many operations as there are live tuples, per-tuple maintenance
//!   stops paying for itself and the session instead applies the batch
//!   raw and re-derives the report with the sharded
//!   [`ParallelEngine`]. The incremental detectors are rebuilt lazily
//!   on the next trickle operation, so a long burst phase never pays
//!   for state it does not read.

use revival_constraints::{Cfd, Cind};
use revival_detect::native::describe_violation;
use revival_detect::{
    CindDetector, DetectJob, Detector, IncrementalDetector, ParallelEngine, Violation,
    ViolationReport,
};
use revival_relation::{Catalog, Error, Result, Schema, Table, TupleId, Value};
use revival_repair::{BatchRepair, CostModel, IncRepair, IncStats};
use std::collections::HashMap;

/// One streaming edit against a registered relation.
#[derive(Clone, Debug)]
pub enum DeltaOp {
    /// Append a row (arity/types validated against the schema).
    Insert { relation: String, row: Vec<Value> },
    /// Delete a live tuple.
    Delete { relation: String, tuple: TupleId },
    /// Overwrite one cell of a live tuple.
    Update { relation: String, tuple: TupleId, attr: usize, value: Value },
}

/// Which path a [`DeltaSession::apply`] batch took.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyPath {
    /// Per-operation incremental maintenance (`O(|Δ|)`).
    Incremental,
    /// Raw application plus one sharded rescan (`O(n)` once).
    Rescan,
}

/// Counters proving which regime the session ran in — `semandaq watch`
/// prints them so "no base rescans" is observable, not asserted.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionStats {
    /// Delta operations accepted.
    pub ops: usize,
    /// Operations that went through incremental maintenance.
    pub incremental_ops: usize,
    /// Full sharded rescans (burst fallbacks + lazy rebuilds).
    pub rescans: usize,
    /// On-demand repair passes.
    pub repairs: usize,
}

/// Per-relation incremental state: the detector over the relation's
/// sub-suite, plus each sub-suite position's index in the session's
/// global CFD suite (reports are remapped through it).
struct RelationState {
    name: String,
    detector: IncrementalDetector,
    idxs: Vec<usize>,
}

/// How the session currently knows its violations.
enum LiveState {
    /// The per-relation detectors are loaded and exact.
    Maintained,
    /// A burst rescan produced this report; detectors are stale and
    /// rebuilt lazily on the next trickle operation.
    Scanned(ViolationReport),
}

/// A long-running data-quality session over a catalog of relations.
pub struct DeltaSession {
    catalog: Catalog,
    cfds: Vec<Cfd>,
    cinds: Vec<Cind>,
    jobs: usize,
    relations: Vec<RelationState>,
    live: LiveState,
    /// Tuples appended since registration (or since the last repair),
    /// per relation — the delta that [`DeltaSession::repair`] fixes.
    pending: HashMap<String, Vec<TupleId>>,
    stats: SessionStats,
}

impl DeltaSession {
    /// Empty session; `jobs` shards burst rescans and on-demand batch
    /// repairs (0 = one shard per available core, 1 = sequential).
    pub fn new(jobs: usize) -> Self {
        DeltaSession {
            catalog: Catalog::new(),
            cfds: Vec::new(),
            cinds: Vec::new(),
            jobs,
            relations: Vec::new(),
            live: LiveState::Maintained,
            pending: HashMap::new(),
            stats: SessionStats::default(),
        }
    }

    /// Register a table together with the CFDs constraining it, and
    /// bulk-load it into a fresh incremental detector. Re-registering a
    /// relation replaces its table, its CFDs, *and* drops any CINDs
    /// touching it (their attribute indices were resolved against the
    /// old schema and may not fit the new one — re-attach them after).
    pub fn register(&mut self, table: Table, cfds: Vec<Cfd>) -> Result<()> {
        let name = table.schema().name().to_string();
        for cfd in &cfds {
            cfd.validate()?;
            if cfd.relation != name {
                return Err(Error::Io(format!(
                    "cannot register CFD over `{}` with table `{name}`",
                    cfd.relation
                )));
            }
        }
        self.ensure_maintained();
        // Drop any previous registration of this relation.
        self.cfds.retain(|c| c.relation != name);
        self.cinds.retain(|c| c.from_relation != name && c.to_relation != name);
        self.relations.retain(|r| r.name != name);
        self.pending.remove(&name);
        self.cfds.extend(cfds);
        let mut state = RelationState {
            name: name.clone(),
            detector: IncrementalDetector::new(
                self.cfds.iter().filter(|c| c.relation == name).cloned().collect(),
            ),
            idxs: Vec::new(),
        };
        state.detector.load(&table);
        self.catalog.register(table);
        self.relations.push(state);
        self.reindex();
        Ok(())
    }

    /// Replace one registered relation's CFD suite *in place*: unlike
    /// [`DeltaSession::register`], the table, its tuple ids, the
    /// pending-repair baseline (tuples appended since registration or
    /// the last repair), and any attached CINDs all survive — only the
    /// constraints change. The relation's incremental detector is
    /// rebuilt from the current table (one `O(n)` load). This is what
    /// the serve protocol's `discover {"register":true}` installs a
    /// mined suite through.
    pub fn set_cfds(&mut self, relation: &str, cfds: Vec<Cfd>) -> Result<()> {
        for cfd in &cfds {
            cfd.validate()?;
            if cfd.relation != relation {
                return Err(Error::Io(format!(
                    "cannot install CFD over `{}` as relation `{relation}`'s suite",
                    cfd.relation
                )));
            }
        }
        self.ensure_maintained();
        let ri = self.relation_state(relation)?;
        self.cfds.retain(|c| c.relation != relation);
        self.cfds.extend(cfds);
        let sub: Vec<Cfd> = self.cfds.iter().filter(|c| c.relation == relation).cloned().collect();
        let mut detector = IncrementalDetector::new(sub);
        detector.load(self.catalog.get(relation)?);
        self.relations[ri].detector = detector;
        self.reindex();
        Ok(())
    }

    /// Attach CINDs; both relations of each CIND must be registered.
    /// CINDs are checked by witness probe at [`DeltaSession::report`]
    /// time, not maintained per delta (their state is an index over the
    /// *target* relation, which deltas on the source never touch).
    pub fn add_cinds(&mut self, cinds: Vec<Cind>) -> Result<()> {
        for cind in &cinds {
            self.catalog.get(&cind.from_relation)?;
            self.catalog.get(&cind.to_relation)?;
        }
        // A cached burst report predates the new CINDs — drop it so the
        // next read probes them.
        self.ensure_maintained();
        self.cinds.extend(cinds);
        Ok(())
    }

    /// Recompute each relation's sub-suite → global-suite index map.
    fn reindex(&mut self) {
        for rel in &mut self.relations {
            rel.idxs = self
                .cfds
                .iter()
                .enumerate()
                .filter(|(_, c)| c.relation == rel.name)
                .map(|(i, _)| i)
                .collect();
        }
    }

    /// The registered catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// A registered table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.catalog.get(name)
    }

    /// The global CFD suite (reports index into it).
    pub fn cfds(&self) -> &[Cfd] {
        &self.cfds
    }

    /// The attached CIND suite.
    pub fn cinds(&self) -> &[Cind] {
        &self.cinds
    }

    /// Regime counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The session's shard count (what burst rescans and on-demand
    /// repairs run with; 0 = one shard per available core).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Total live tuples across all registered relations.
    pub fn live_rows(&self) -> usize {
        self.relations.iter().filter_map(|r| self.catalog.get(&r.name).ok()).map(Table::len).sum()
    }

    /// Rebuild the incremental detectors from the current tables — the
    /// lazy exit from the burst regime. Counted as a rescan: it is one
    /// `O(n)` pass per relation.
    fn ensure_maintained(&mut self) {
        if matches!(self.live, LiveState::Maintained) {
            return;
        }
        for rel in &mut self.relations {
            let sub: Vec<Cfd> = rel.idxs.iter().map(|&i| self.cfds[i].clone()).collect();
            rel.detector = IncrementalDetector::new(sub);
            if let Ok(table) = self.catalog.get(&rel.name) {
                rel.detector.load(table);
            }
        }
        self.live = LiveState::Maintained;
        self.stats.rescans += 1;
    }

    fn relation_state(&mut self, name: &str) -> Result<usize> {
        self.relations
            .iter()
            .position(|r| r.name == name)
            .ok_or_else(|| Error::UnknownRelation(name.into()))
    }

    /// Append a row, maintaining violation state incrementally.
    pub fn insert(&mut self, relation: &str, row: Vec<Value>) -> Result<TupleId> {
        self.ensure_maintained();
        let ri = self.relation_state(relation)?;
        let id = self.catalog.get_mut(relation)?.push(row)?;
        let row = self.catalog.get(relation)?.get(id)?;
        self.relations[ri].detector.insert(id, &row);
        self.pending.entry(relation.to_string()).or_default().push(id);
        self.stats.ops += 1;
        self.stats.incremental_ops += 1;
        Ok(id)
    }

    /// Delete a live tuple, returning its former row.
    pub fn delete(&mut self, relation: &str, tuple: TupleId) -> Result<Vec<Value>> {
        self.ensure_maintained();
        let ri = self.relation_state(relation)?;
        let row = self.catalog.get_mut(relation)?.delete(tuple)?;
        self.relations[ri].detector.delete(tuple, &row);
        if let Some(p) = self.pending.get_mut(relation) {
            p.retain(|&t| t != tuple);
        }
        self.stats.ops += 1;
        self.stats.incremental_ops += 1;
        Ok(row)
    }

    /// Overwrite one cell of a live tuple.
    pub fn update(
        &mut self,
        relation: &str,
        tuple: TupleId,
        attr: usize,
        value: Value,
    ) -> Result<()> {
        self.ensure_maintained();
        let ri = self.relation_state(relation)?;
        let old = self.catalog.get(relation)?.get(tuple)?;
        self.catalog.get_mut(relation)?.set_cell(tuple, attr, value)?;
        let new = self.catalog.get(relation)?.get(tuple)?;
        self.relations[ri].detector.update(tuple, &old, &new);
        self.stats.ops += 1;
        self.stats.incremental_ops += 1;
        Ok(())
    }

    /// Apply a batch of deltas, choosing the regime automatically: a
    /// batch smaller than the live base flows through the incremental
    /// detectors; a batch that outweighs the base is applied raw and
    /// followed by one sharded [`ParallelEngine`] rescan (mirroring
    /// [`IncRepair::repair_delta_auto`]'s crossover).
    pub fn apply(&mut self, ops: Vec<DeltaOp>) -> Result<ApplyPath> {
        if ops.len() < self.live_rows().max(1) {
            for op in ops {
                match op {
                    DeltaOp::Insert { relation, row } => {
                        self.insert(&relation, row)?;
                    }
                    DeltaOp::Delete { relation, tuple } => {
                        self.delete(&relation, tuple)?;
                    }
                    DeltaOp::Update { relation, tuple, attr, value } => {
                        self.update(&relation, tuple, attr, value)?;
                    }
                }
            }
            return Ok(ApplyPath::Incremental);
        }
        // Burst: raw application (bypassing the detectors), then one
        // sharded rescan. The rescan runs even when an op fails
        // part-way — earlier ops already mutated the tables, so the
        // session must resynchronise before surfacing the error.
        let mut first_err = None;
        for op in &ops {
            let applied = match op {
                DeltaOp::Insert { relation, row } => {
                    self.catalog.get_mut(relation).and_then(|t| t.push(row.clone())).map(|id| {
                        self.pending.entry(relation.clone()).or_default().push(id);
                    })
                }
                DeltaOp::Delete { relation, tuple } => {
                    self.catalog.get_mut(relation).and_then(|t| t.delete(*tuple)).map(|_| {
                        if let Some(p) = self.pending.get_mut(relation) {
                            p.retain(|t| t != tuple);
                        }
                    })
                }
                DeltaOp::Update { relation, tuple, attr, value } => self
                    .catalog
                    .get_mut(relation)
                    .and_then(|t| t.set_cell(*tuple, *attr, value.clone())),
            };
            match applied {
                Ok(()) => self.stats.ops += 1,
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        let report = ParallelEngine::new(self.jobs)
            .run(&DetectJob::on_catalog(&self.catalog, &self.cfds).with_cinds(&self.cinds))?;
        self.live = LiveState::Scanned(report);
        self.stats.rescans += 1;
        match first_err {
            Some(e) => Err(e),
            None => Ok(ApplyPath::Rescan),
        }
    }

    /// Current number of violations. In the trickle regime this is
    /// `O(#CFDs)` from the maintained counters (plus one witness-probe
    /// pass when CINDs are attached); after a burst it reads the cached
    /// scan.
    pub fn violation_count(&self) -> Result<usize> {
        match &self.live {
            LiveState::Scanned(report) => Ok(report.len()),
            LiveState::Maintained => {
                let cfd: usize = self.relations.iter().map(|r| r.detector.violation_count()).sum();
                Ok(cfd + self.cind_violations()?.len())
            }
        }
    }

    /// Live violation count per constraint: positions `0..cfds.len()`
    /// index the CFD suite, the remainder the CIND suite.
    pub fn constraint_counts(&self) -> Result<Vec<usize>> {
        let mut counts = vec![0usize; self.cfds.len() + self.cinds.len()];
        match &self.live {
            LiveState::Scanned(report) => {
                for v in &report.violations {
                    match v {
                        Violation::CfdConstant { cfd, .. } | Violation::CfdVariable { cfd, .. } => {
                            counts[*cfd] += 1
                        }
                        Violation::CindMissingWitness { cind, .. } => {
                            counts[self.cfds.len() + *cind] += 1
                        }
                    }
                }
            }
            LiveState::Maintained => {
                for rel in &self.relations {
                    let rel_counts = rel.detector.per_cfd_counts();
                    for (sub, &global) in rel.idxs.iter().enumerate() {
                        counts[global] = rel_counts[sub];
                    }
                }
                for v in self.cind_violations()? {
                    if let Violation::CindMissingWitness { cind, .. } = v {
                        counts[self.cfds.len() + cind] += 1;
                    }
                }
            }
        }
        Ok(counts)
    }

    fn cind_violations(&self) -> Result<Vec<Violation>> {
        if self.cinds.is_empty() {
            return Ok(Vec::new());
        }
        Ok(CindDetector::detect_all(&self.cinds, &self.catalog)?.violations)
    }

    /// Materialise the full live report. Violation indices refer to
    /// [`DeltaSession::cfds`] / [`DeltaSession::cinds`].
    pub fn report(&self) -> Result<ViolationReport> {
        match &self.live {
            LiveState::Scanned(report) => Ok(report.clone()),
            LiveState::Maintained => {
                let mut report = ViolationReport::default();
                for rel in &self.relations {
                    for mut v in rel.detector.report().violations {
                        match &mut v {
                            Violation::CfdConstant { cfd, .. }
                            | Violation::CfdVariable { cfd, .. } => *cfd = rel.idxs[*cfd],
                            Violation::CindMissingWitness { .. } => {}
                        }
                        report.violations.push(v);
                    }
                }
                report.violations.extend(self.cind_violations()?);
                Ok(report)
            }
        }
    }

    /// Human-readable listing of a report from this session (capped).
    pub fn describe(&self, report: &ViolationReport, max: usize) -> String {
        describe_report(report, &self.cfds, &self.cinds, max, |name| {
            self.catalog.get(name).ok().map(|t| t.schema())
        })
    }

    /// Repair the tuples appended since registration (or since the last
    /// repair) against the rest of the relation, in place: the
    /// incremental [`IncRepair`] path treats the non-pending rows as the
    /// authoritative base and edits only pending cells, keeping tuple
    /// ids stable and feeding every edit back through the incremental
    /// detector. When the pending delta outweighs the base (the same
    /// crossover as [`DeltaSession::apply`]), the whole relation goes
    /// through one sharded [`BatchRepair`] pass instead — which may also
    /// edit base cells — and the detector reloads.
    pub fn repair(&mut self, relation: &str) -> Result<IncStats> {
        self.ensure_maintained();
        let ri = self.relation_state(relation)?;
        let mut pending = self.pending.remove(relation).unwrap_or_default();
        {
            let table = self.catalog.get(relation)?;
            pending.retain(|&t| table.contains(t));
        }
        self.stats.repairs += 1;
        let arity = self.catalog.get(relation)?.schema().arity();
        let sub: Vec<Cfd> = self.relations[ri].idxs.iter().map(|&i| self.cfds[i].clone()).collect();
        let mut stats = IncStats::default();
        if pending.is_empty() {
            return Ok(stats);
        }
        let base_len = self.catalog.get(relation)?.len() - pending.len();
        if pending.len() < base_len.max(1) {
            let exclude: std::collections::HashSet<TupleId> = pending.iter().copied().collect();
            let mut inc = {
                let table = self.catalog.get(relation)?;
                IncRepair::new_excluding(&sub, table, CostModel::uniform(arity), &exclude)
            };
            for id in pending {
                let old = self.catalog.get(relation)?.get(id)?;
                let mut row = old.clone();
                inc.repair_tuple(id, &mut row, &mut stats);
                if row != old {
                    let table = self.catalog.get_mut(relation)?;
                    for (attr, v) in row.iter().enumerate() {
                        if *v != old[attr] {
                            table.set_cell(id, attr, v.clone())?;
                        }
                    }
                    self.relations[ri].detector.update(id, &old, &row);
                }
            }
        } else {
            let repairer =
                BatchRepair::new(&sub, CostModel::uniform(arity)).with_jobs(self.jobs.max(1));
            let (fixed, batch) = repairer.repair(self.catalog.get(relation)?)?;
            stats.cells_changed = batch.cells_changed;
            stats.cost = batch.cost;
            {
                let table = self.catalog.get(relation)?;
                stats.tuples_edited = table
                    .rows()
                    .filter(|(id, row)| fixed.get(*id).is_ok_and(|f| f != *row))
                    .count();
            }
            self.catalog.register(fixed);
            let table = self.catalog.get(relation)?;
            let mut det = IncrementalDetector::new(sub);
            det.load(table);
            self.relations[ri].detector = det;
            self.stats.rescans += 1;
        }
        Ok(stats)
    }

    /// Persist the session's registered state into `dir`: one `.sdq`
    /// snapshot per relation (columns + tombstones + a value pool
    /// *compacted* on the way out, so long-lived sessions shed the
    /// append-only pool growth their incremental detectors accumulated),
    /// a sibling `<relation>.cfds` suite file, and `cinds.txt` when
    /// CINDs are attached. Returns the number of relations written.
    /// Regime counters and the pending-repair baseline are ephemeral
    /// and not persisted.
    ///
    /// Every file goes down durably (write-to-temp + fsync + rename +
    /// parent-dir fsync via [`revival_relation::durable`]), and stale
    /// `.sdq`/`.cfds` files from relations this session no longer
    /// holds are removed — otherwise a restore after a rename or a
    /// shard-layout change would resurrect them.
    pub fn save_state(&self, dir: &std::path::Path) -> Result<usize> {
        use revival_constraints::parser::{cfd_to_text, cind_to_text};
        use revival_relation::durable;
        std::fs::create_dir_all(dir)?;
        let mut names: Vec<&str> = self.relations.iter().map(|r| r.name.as_str()).collect();
        names.sort_unstable();
        for name in &names {
            let table = self.catalog.get(name)?;
            table.save_snapshot(dir.join(format!("{name}.sdq")))?;
            let suite: String = self
                .cfds
                .iter()
                .filter(|c| c.relation == *name)
                .map(|c| cfd_to_text(c, table.schema()))
                .collect();
            durable::write_atomic(&dir.join(format!("{name}.cfds")), suite.as_bytes())?;
        }
        // Anything snapshot-shaped that no current relation owns is a
        // leftover from an earlier save; a later restore would load it.
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let ext = path.extension().and_then(|x| x.to_str());
            if !matches!(ext, Some("sdq") | Some("cfds")) {
                continue;
            }
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            if !names.contains(&stem) {
                std::fs::remove_file(&path)?;
            }
        }
        let cind_path = dir.join("cinds.txt");
        if self.cinds.is_empty() {
            // A stale suite from a previous save must not resurrect.
            match std::fs::remove_file(&cind_path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        } else {
            let mut text = String::new();
            for cind in &self.cinds {
                let from = self.catalog.get(&cind.from_relation)?;
                let to = self.catalog.get(&cind.to_relation)?;
                text.push_str(&cind_to_text(cind, from.schema(), to.schema()));
            }
            durable::write_atomic(&cind_path, text.as_bytes())?;
        }
        durable::sync_dir(dir)?;
        Ok(names.len())
    }

    /// Rebuild a session from a [`DeltaSession::save_state`] directory:
    /// every `<relation>.sdq` is opened (memory-mapped where the
    /// platform allows), its `<relation>.cfds` suite re-parsed against
    /// the snapshot's schema, and the pair re-registered — which reloads
    /// each incremental detector from the compacted table, so the
    /// restored detectors start with dense pools regardless of how much
    /// churn the saved session had seen. Tuple ids survive (snapshots
    /// keep tombstoned slots), so clients may keep using ids they
    /// learned before the restart.
    pub fn restore_state(dir: &std::path::Path, jobs: usize) -> Result<DeltaSession> {
        use revival_constraints::parser::{parse_cfds, parse_cinds};
        let mut session = DeltaSession::new(jobs);
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "sdq"))
            .collect();
        paths.sort();
        let mut schemas = Vec::new();
        for path in &paths {
            let table = Table::open_snapshot(path)?;
            let suite_path = path.with_extension("cfds");
            let cfds = match std::fs::read_to_string(&suite_path) {
                Ok(text) => parse_cfds(&text, table.schema())?,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(e.into()),
            };
            schemas.push(table.schema().clone());
            session.register(table, cfds)?;
        }
        match std::fs::read_to_string(dir.join("cinds.txt")) {
            Ok(text) => session.add_cinds(parse_cinds(&text, &schemas)?)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Ok(session)
    }
}

/// Human-readable listing of a violation report against a CFD/CIND
/// suite. Factored out of [`DeltaSession::describe`] so read replicas
/// (which hold a detached report + suite + schemas, no catalog) render
/// byte-identical text; `schema_of` resolves a relation name to its
/// schema in whichever store the caller has.
pub fn describe_report<'a>(
    report: &ViolationReport,
    cfds: &[Cfd],
    cinds: &[Cind],
    max: usize,
    schema_of: impl Fn(&str) -> Option<&'a Schema>,
) -> String {
    let mut out = format!(
        "{} violation(s); {} tuple(s) involved\n",
        report.len(),
        report.violating_tuples().len()
    );
    for v in report.violations.iter().take(max) {
        let line = match v {
            Violation::CfdConstant { cfd, .. } | Violation::CfdVariable { cfd, .. } => {
                match schema_of(&cfds[*cfd].relation) {
                    Some(schema) => describe_violation(v, cfds, schema),
                    None => format!("{v:?}"),
                }
            }
            Violation::CindMissingWitness { cind, tuple } => {
                let c = &cinds[*cind];
                format!(
                    "tuple {tuple} of {} has no witness in {} (cind#{cind})",
                    c.from_relation, c.to_relation
                )
            }
        };
        out.push_str("  ");
        out.push_str(&line);
        out.push('\n');
    }
    if report.len() > max {
        out.push_str(&format!("  … and {} more\n", report.len() - max));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_constraints::parser::{parse_cfds, parse_cinds};
    use revival_detect::NativeEngine;
    use revival_relation::{Schema, Type};

    fn schema() -> Schema {
        Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("zip", Type::Str)
            .attr("street", Type::Str)
            .attr("city", Type::Str)
            .build()
    }

    fn suite(s: &Schema) -> Vec<Cfd> {
        parse_cfds(
            "customer([cc='44', zip] -> [street])\n\
             customer([cc='01', zip='07974'] -> [city='mh'])",
            s,
        )
        .unwrap()
    }

    fn table(rows: &[[&str; 4]]) -> Table {
        let mut t = Table::new(schema());
        for r in rows {
            t.push(r.iter().map(|s| Value::from(*s)).collect()).unwrap();
        }
        t
    }

    fn row(r: [&str; 4]) -> Vec<Value> {
        r.iter().map(|s| Value::from(*s)).collect()
    }

    #[test]
    fn set_cfds_swaps_the_suite_but_keeps_the_repair_baseline() {
        let s = schema();
        let mut sess = DeltaSession::new(1);
        sess.register(table(&[["44", "EH8", "Crichton", "edi"]]), suite(&s)).unwrap();
        // Append a row that violates the *new* suite but not the old.
        let appended = sess.insert("customer", row(["44", "EH8", "Crichton", "gla"])).unwrap();
        assert_eq!(sess.violation_count().unwrap(), 0);
        let new_suite = parse_cfds("customer([zip] -> [city])", &s).unwrap();
        sess.set_cfds("customer", new_suite).unwrap();
        // The swapped suite detects against the current table…
        assert_eq!(sess.violation_count().unwrap(), 1);
        // …tuple ids survive, and — unlike register — the appended row
        // is still pending, so repair fixes it (register would have
        // re-baselined it as an authoritative base row).
        assert!(sess.table("customer").unwrap().get(appended).is_ok());
        let stats = sess.repair("customer").unwrap();
        assert!(stats.tuples_edited > 0, "{stats:?}");
        assert_eq!(sess.violation_count().unwrap(), 0);
        // Installing a suite over the wrong relation is refused.
        let foreign = parse_cfds("customer([zip] -> [city])", &s).unwrap();
        assert!(sess.set_cfds("orders", foreign).is_err());
    }

    #[test]
    fn trickle_inserts_maintain_counts_without_rescans() {
        let s = schema();
        let mut sess = DeltaSession::new(1);
        sess.register(table(&[["44", "EH8", "Crichton", "edi"]]), suite(&s)).unwrap();
        assert_eq!(sess.violation_count().unwrap(), 0);
        let id = sess.insert("customer", row(["44", "EH8", "Mayfield", "edi"])).unwrap();
        assert_eq!(sess.violation_count().unwrap(), 1);
        assert_eq!(sess.constraint_counts().unwrap(), vec![1, 0]);
        sess.delete("customer", id).unwrap();
        assert_eq!(sess.violation_count().unwrap(), 0);
        assert_eq!(sess.stats().rescans, 0);
        assert_eq!(sess.stats().incremental_ops, 2);
    }

    #[test]
    fn update_moves_groups() {
        let s = schema();
        let mut sess = DeltaSession::new(1);
        sess.register(
            table(&[["44", "EH8", "Crichton", "edi"], ["44", "G1", "Mayfield", "gla"]]),
            suite(&s),
        )
        .unwrap();
        assert_eq!(sess.violation_count().unwrap(), 0);
        // Move t1 into t0's zip group with a different street.
        sess.update("customer", TupleId(1), 1, "EH8".into()).unwrap();
        assert_eq!(sess.violation_count().unwrap(), 1);
        sess.update("customer", TupleId(1), 2, "Crichton".into()).unwrap();
        assert_eq!(sess.violation_count().unwrap(), 0);
    }

    #[test]
    fn burst_batches_fall_back_to_sharded_rescan() {
        let s = schema();
        let mut sess = DeltaSession::new(2);
        sess.register(table(&[["44", "EH8", "Crichton", "edi"]]), suite(&s)).unwrap();
        let ops: Vec<DeltaOp> = (0..5)
            .map(|i| DeltaOp::Insert {
                relation: "customer".into(),
                row: row(["44", "EH8", if i % 2 == 0 { "A" } else { "B" }, "edi"]),
            })
            .collect();
        let path = sess.apply(ops).unwrap();
        assert_eq!(path, ApplyPath::Rescan);
        assert_eq!(sess.stats().rescans, 1);
        assert_eq!(sess.violation_count().unwrap(), 1);
        // The next trickle op rebuilds the detectors (one more rescan)
        // and stays exact.
        sess.insert("customer", row(["01", "07974", "Mtn", "nyc"])).unwrap();
        assert_eq!(sess.stats().rescans, 2);
        assert_eq!(sess.violation_count().unwrap(), 2);
        // Parity with a batch engine on the final table.
        let t = sess.table("customer").unwrap();
        let job = DetectJob::on_table(t, sess.cfds());
        let mut want = NativeEngine.run(&job).unwrap();
        let mut got = sess.report().unwrap();
        want.normalize();
        got.normalize();
        assert_eq!(got, want);
    }

    #[test]
    fn failing_burst_op_still_resynchronises() {
        let s = schema();
        let mut sess = DeltaSession::new(1);
        sess.register(table(&[["44", "EH8", "Crichton", "edi"]]), suite(&s)).unwrap();
        // Burst batch: a valid violating insert followed by a bad op.
        let ops = vec![
            DeltaOp::Insert {
                relation: "customer".into(),
                row: row(["44", "EH8", "Mayfield", "edi"]),
            },
            DeltaOp::Delete { relation: "customer".into(), tuple: TupleId(999) },
        ];
        assert!(sess.apply(ops).is_err());
        // The insert landed before the failure; the session must still
        // see its violation (not a stale pre-batch state).
        assert_eq!(sess.violation_count().unwrap(), 1);
        let t = sess.table("customer").unwrap();
        assert_eq!(t.len(), 2);
        let mut got = sess.report().unwrap();
        let mut want = NativeEngine.run(&DetectJob::on_table(t, sess.cfds())).unwrap();
        got.normalize();
        want.normalize();
        assert_eq!(got, want);
    }

    #[test]
    fn cinds_added_after_burst_are_visible_immediately() {
        let cd_s = Schema::builder("cd").attr("album", Type::Str).attr("genre", Type::Str).build();
        let book_s = Schema::builder("book").attr("title", Type::Str).build();
        let mut cd = Table::new(cd_s.clone());
        cd.push(vec!["Dune".into(), "a-book".into()]).unwrap();
        let mut sess = DeltaSession::new(1);
        sess.register(cd, Vec::new()).unwrap();
        sess.register(Table::new(book_s.clone()), Vec::new()).unwrap();
        // Burst → cached scan (no CINDs yet, so it is empty).
        let path = sess
            .apply(vec![
                DeltaOp::Insert {
                    relation: "cd".into(),
                    row: vec!["Foundation".into(), "a-book".into()],
                },
                DeltaOp::Insert { relation: "cd".into(), row: vec!["Hype".into(), "pop".into()] },
            ])
            .unwrap();
        assert_eq!(path, ApplyPath::Rescan);
        assert_eq!(sess.violation_count().unwrap(), 0);
        let cinds =
            parse_cinds("cd(album; genre='a-book') <= book(title)", &[cd_s, book_s]).unwrap();
        sess.add_cinds(cinds).unwrap();
        // Both a-book cds lack witnesses — visible without any further op.
        assert_eq!(sess.violation_count().unwrap(), 2);
    }

    #[test]
    fn small_batches_stay_incremental() {
        let s = schema();
        let mut sess = DeltaSession::new(1);
        sess.register(
            table(&[
                ["44", "EH8", "Crichton", "edi"],
                ["44", "G1", "High", "gla"],
                ["01", "10001", "5th", "nyc"],
            ]),
            suite(&s),
        )
        .unwrap();
        let path = sess
            .apply(vec![DeltaOp::Insert {
                relation: "customer".into(),
                row: row(["44", "EH8", "Mayfield", "edi"]),
            }])
            .unwrap();
        assert_eq!(path, ApplyPath::Incremental);
        assert_eq!(sess.stats().rescans, 0);
        assert_eq!(sess.violation_count().unwrap(), 1);
    }

    #[test]
    fn cinds_checked_at_report_time() {
        let cd_s = Schema::builder("cd")
            .attr("album", Type::Str)
            .attr("price", Type::Int)
            .attr("genre", Type::Str)
            .build();
        let book_s = Schema::builder("book")
            .attr("title", Type::Str)
            .attr("price", Type::Int)
            .attr("format", Type::Str)
            .build();
        let mut cd = Table::new(cd_s.clone());
        cd.push(vec!["Dune".into(), Value::Int(20), "a-book".into()]).unwrap();
        let mut book = Table::new(book_s.clone());
        book.push(vec!["Dune".into(), Value::Int(20), "audio".into()]).unwrap();
        let mut sess = DeltaSession::new(1);
        sess.register(cd, Vec::new()).unwrap();
        sess.register(book, Vec::new()).unwrap();
        let cinds = parse_cinds(
            "cd(album, price; genre='a-book') <= book(title, price; format='audio')",
            &[cd_s, book_s],
        )
        .unwrap();
        sess.add_cinds(cinds).unwrap();
        assert_eq!(sess.violation_count().unwrap(), 0);
        sess.insert("cd", vec!["Foundation".into(), Value::Int(15), "a-book".into()]).unwrap();
        assert_eq!(sess.violation_count().unwrap(), 1);
        assert_eq!(sess.constraint_counts().unwrap(), vec![1]);
        let text = sess.describe(&sess.report().unwrap(), 10);
        assert!(text.contains("no witness in book"), "got: {text}");
    }

    #[test]
    fn repair_fixes_pending_delta_in_place() {
        let s = schema();
        let mut sess = DeltaSession::new(1);
        sess.register(
            table(&[
                ["44", "EH8", "Crichton", "edi"],
                ["44", "G1", "High", "gla"],
                ["01", "10001", "5th", "nyc"],
            ]),
            suite(&s),
        )
        .unwrap();
        let id = sess.insert("customer", row(["44", "EH8", "Mayfield", "edi"])).unwrap();
        assert_eq!(sess.violation_count().unwrap(), 1);
        let stats = sess.repair("customer").unwrap();
        assert_eq!(stats.tuples_edited, 1);
        assert_eq!(sess.violation_count().unwrap(), 0);
        // The pending tuple conformed to the base street; id unchanged.
        assert_eq!(sess.table("customer").unwrap().get(id).unwrap()[2], Value::from("Crichton"));
        // Second repair is a no-op (nothing pending).
        let stats = sess.repair("customer").unwrap();
        assert_eq!(stats.cells_changed, 0);
    }

    #[test]
    fn repair_falls_back_to_batch_when_delta_dominates() {
        let s = schema();
        let mut sess = DeltaSession::new(2);
        sess.register(table(&[["44", "EH8", "Crichton", "edi"]]), suite(&s)).unwrap();
        for i in 0..4 {
            sess.insert("customer", row(["44", "G9", ["A", "B", "C", "D"][i], "edi"])).unwrap();
        }
        assert_eq!(sess.violation_count().unwrap(), 1);
        let stats = sess.repair("customer").unwrap();
        assert!(stats.tuples_edited >= 3, "{stats:?}");
        assert_eq!(sess.violation_count().unwrap(), 0);
    }

    #[test]
    fn register_rejects_foreign_cfds_and_unknown_relations() {
        let s = schema();
        let mut sess = DeltaSession::new(1);
        let err = sess.register(
            Table::new(Schema::builder("orders").attr("id", Type::Int).build()),
            suite(&s),
        );
        assert!(err.is_err());
        assert!(sess.insert("customer", row(["44", "EH8", "x", "y"])).is_err());
        assert!(sess.repair("customer").is_err());
    }

    #[test]
    fn reregistering_drops_cinds_resolved_against_the_old_schema() {
        let cd_s = Schema::builder("cd").attr("album", Type::Str).attr("genre", Type::Str).build();
        let book3_s = Schema::builder("book")
            .attr("title", Type::Str)
            .attr("price", Type::Int)
            .attr("format", Type::Str)
            .build();
        let mut cd = Table::new(cd_s.clone());
        cd.push(vec!["Dune".into(), "a-book".into()]).unwrap();
        let mut sess = DeltaSession::new(1);
        sess.register(cd, Vec::new()).unwrap();
        sess.register(Table::new(book3_s.clone()), Vec::new()).unwrap();
        let cinds = parse_cinds(
            "cd(album; genre='a-book') <= book(title; format='audio')",
            &[cd_s, book3_s],
        )
        .unwrap();
        sess.add_cinds(cinds).unwrap();
        assert_eq!(sess.cinds().len(), 1);
        // Replace `book` with a narrower schema: the CIND's resolved
        // attribute ids no longer fit — it must be dropped, and reads
        // must not panic.
        let book1_s = Schema::builder("book").attr("title", Type::Str).build();
        sess.register(Table::new(book1_s), Vec::new()).unwrap();
        assert!(sess.cinds().is_empty());
        assert_eq!(sess.violation_count().unwrap(), 0);
    }

    #[test]
    fn reregistering_replaces_table_and_suite() {
        let s = schema();
        let mut sess = DeltaSession::new(1);
        sess.register(
            table(&[["44", "EH8", "Crichton", "edi"], ["44", "EH8", "Mayfield", "edi"]]),
            suite(&s),
        )
        .unwrap();
        assert_eq!(sess.violation_count().unwrap(), 1);
        sess.register(table(&[["44", "EH8", "Crichton", "edi"]]), suite(&s)).unwrap();
        assert_eq!(sess.violation_count().unwrap(), 0);
        assert_eq!(sess.cfds().len(), 2);
    }

    #[test]
    fn save_restore_round_trips_tables_suites_and_cinds() {
        let s = schema();
        let mut sess = DeltaSession::new(2);
        sess.register(
            table(&[["44", "EH8", "Crichton", "edi"], ["44", "EH8", "Mayfield", "edi"]]),
            suite(&s),
        )
        .unwrap();
        let order_s =
            Schema::builder("orders").attr("cust_cc", Type::Str).attr("item", Type::Str).build();
        let mut orders = Table::new(order_s.clone());
        orders.push(row2(["44", "tea"])).unwrap();
        let gone = orders.push(row2(["99", "gin"])).unwrap();
        orders.delete(gone).unwrap();
        sess.register(orders, Vec::new()).unwrap();
        sess.add_cinds(parse_cinds("orders(cust_cc) <= customer(cc)", &[order_s, s]).unwrap())
            .unwrap();
        // One violating append so pending churn exists at save time.
        sess.insert("orders", row2(["07", "rum"])).unwrap();
        let want_violations = sess.violation_count().unwrap();
        assert_eq!(want_violations, 2, "variable CFD + missing CIND witness");

        let dir = std::env::temp_dir().join(format!("revival_state_{}", std::process::id()));
        let saved = sess.save_state(&dir).unwrap();
        assert_eq!(saved, 2);
        let mut back = DeltaSession::restore_state(&dir, 2).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();

        assert_eq!(back.cfds().len(), sess.cfds().len());
        assert_eq!(back.cinds().len(), 1);
        assert_eq!(back.violation_count().unwrap(), want_violations);
        for name in ["customer", "orders"] {
            let orig: Vec<_> = sess.table(name).unwrap().rows().collect();
            let rest: Vec<_> = back.table(name).unwrap().rows().collect();
            assert_eq!(rest, orig, "{name} must survive the round trip");
        }
        // The restored session is live: appends and repair still work.
        back.insert("customer", row(["01", "07974", "Niddry", "edi"])).unwrap();
        assert_eq!(back.violation_count().unwrap(), want_violations + 1);
        let stats = back.repair("customer").unwrap();
        assert!(stats.tuples_edited > 0, "{stats:?}");
    }

    fn row2(r: [&str; 2]) -> Vec<Value> {
        r.iter().map(|s| Value::from(*s)).collect()
    }
}
