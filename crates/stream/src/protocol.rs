//! The `semandaq serve` wire protocol: line-delimited JSON over TCP.
//!
//! One request per line, one response per line, both flat JSON objects
//! whose values are strings, integers or booleans. The workspace is
//! offline (no serde), so this module carries its own ~150-line JSON
//! subset: objects, strings with the standard escapes, 64-bit integers,
//! booleans and null — exactly what the flat protocol needs, and small
//! enough to audit.
//!
//! ```text
//! → {"cmd":"register","table":"customer","csv":"cc,zip\n44,EH8\n","cfds":"customer([zip] -> [cc])"}
//! ← {"ok":true,"rows":1,"cfds":1,"violations":0}
//! → {"cmd":"append","table":"customer","row":"44,G1"}
//! ← {"ok":true,"tuple":1,"violations":1}
//! → {"cmd":"report","max":10}
//! ← {"ok":true,"violations":1,"text":"1 violation(s); ..."}
//! ```
//!
//! `register` accepts an optional `"merged":true`: the suite is merged
//! by embedded FD before registration (the engine-layer merged-tableau
//! option), so the session maintains one grouping state per embedded FD
//! instead of one per CFD. Counts and report indices then refer to the
//! merged suite — the response's `cfds` field tells the client its
//! size.
//!
//! `discover` mines a CFD suite from a registered table's *current*
//! state through the parallel discovery engine and answers it in
//! `parse_cfds` syntax; `"register":true` additionally installs the
//! vetted suite as the table's constraints — the profiling loop of the
//! paper (discover → vet → detect) without leaving the session.

use std::fmt::Write as _;

/// A flat JSON scalar.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
}

impl JsonValue {
    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Str(s) => write_json_string(out, s),
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one flat JSON object (`{"k": scalar, ...}`).
pub fn parse_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after JSON object".into());
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected `{}`, got {other:?}", want as char)),
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_int(),
            other => Err(format!("unsupported JSON value starting with {other:?}")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal, expected `{lit}`"))
        }
    }

    fn parse_int(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        // Floats are outside the protocol subset — reject rather than
        // silently truncate.
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err("floats are not part of the protocol subset".into());
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(JsonValue::Int)
            .ok_or_else(|| "bad integer".into())
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.next().ok_or("unterminated string")?;
            match b {
                b'"' => return Ok(out),
                b'\\' => match self.next().ok_or("unterminated escape")? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let code = self.parse_hex4()?;
                        let scalar = match code {
                            // High surrogate: a `\uDC00..` low surrogate
                            // must follow (the JSON astral-plane encoding
                            // standard clients emit).
                            0xd800..=0xdbff => {
                                if self.next() != Some(b'\\') || self.next() != Some(b'u') {
                                    return Err("unpaired high surrogate".into());
                                }
                                let low = self.parse_hex4()?;
                                if !(0xdc00..=0xdfff).contains(&low) {
                                    return Err("unpaired high surrogate".into());
                                }
                                0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                            }
                            0xdc00..=0xdfff => return Err("unpaired low surrogate".into()),
                            c => c,
                        };
                        out.push(
                            char::from_u32(scalar).ok_or_else(|| "bad \\u escape".to_string())?,
                        );
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                },
                // Multi-byte UTF-8 sequences pass through verbatim; the
                // input came from a &str, so they are well-formed.
                b if b < 0x80 => out.push(b as char),
                b => {
                    let len = match b {
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }
}

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register (or replace) a table from CSV text plus the CFD suite
    /// constraining it. With `merged`, the suite is merged by embedded
    /// FD first (fewer grouping states; counts refer to the merged
    /// suite).
    Register { table: String, csv: String, cfds: String, merged: bool },
    /// Attach CINDs over already-registered relations.
    Cinds { text: String },
    /// Append one CSV-encoded row to a relation.
    Append { table: String, row: String },
    /// Delete a live tuple.
    Delete { table: String, tuple: u64 },
    /// Overwrite one cell (`value` is parsed by the attribute's type).
    Update { table: String, tuple: u64, attr: String, value: String },
    /// Live violation count only (cheap). With `replica`, answered
    /// from each shard's last checkpoint replica instead of the live
    /// session — never blocks behind writers, may lag by the ops
    /// logged since that checkpoint (returned as `stale_ops`).
    Count { replica: bool },
    /// Full report, described (capped at `max` lines). `replica` as
    /// on [`Request::Count`].
    Report { max: usize, replica: bool },
    /// Incrementally repair the tuples appended to `table` since
    /// registration or the last repair.
    Repair { table: String },
    /// Mine a CFD suite from the session's current state of `table`
    /// (the discovery engine layer): level-wise FDs and conditional
    /// CFDs at `confidence_pct`/100 minimum confidence, constant rules,
    /// vetting. With `register`, the vetted suite replaces the table's
    /// registered CFDs (the discover → vet → detect loop, in place).
    /// `confidence_pct` is an integer percentage because the protocol
    /// subset carries no floats.
    Discover {
        table: String,
        min_support: usize,
        max_lhs: usize,
        confidence_pct: u8,
        register: bool,
    },
    /// Checkpoint now: durably snapshot every shard to the state
    /// directory, truncate the WALs, and refresh the read replicas.
    /// Without a state directory only the replicas refresh.
    Checkpoint,
    /// Fetch the server's observability registry: uptime, plus the
    /// full metric set as a JSON string (`json`) and Prometheus-style
    /// text exposition (`text`). Integer-valued throughout — the
    /// protocol subset carries no floats. With `window_secs > 0` the
    /// response additionally carries a `windowed` field: counter rates
    /// and histogram percentiles computed over roughly the last
    /// `window_secs` seconds (from the server's snapshot ring) instead
    /// of since process start.
    Metrics { window_secs: u64 },
    /// Fetch the per-request profiles of the last `last` requests the
    /// server answered (newest first) from its in-memory profile ring.
    Profile { last: u64 },
    /// Stop the server after answering.
    Shutdown,
}

fn get<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str(fields: &[(String, JsonValue)], key: &str) -> Result<String, String> {
    match get(fields, key) {
        Some(JsonValue::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("field `{key}` must be a string")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn get_bool(fields: &[(String, JsonValue)], key: &str) -> Result<bool, String> {
    match get(fields, key) {
        None => Ok(false),
        Some(JsonValue::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("field `{key}` must be a boolean")),
    }
}

fn get_int(fields: &[(String, JsonValue)], key: &str) -> Result<i64, String> {
    match get(fields, key) {
        Some(JsonValue::Int(i)) => Ok(*i),
        Some(_) => Err(format!("field `{key}` must be an integer")),
        None => Err(format!("missing field `{key}`")),
    }
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let fields = parse_object(line.trim_end())?;
        let cmd = get_str(&fields, "cmd")?;
        match cmd.as_str() {
            "register" => Ok(Request::Register {
                table: get_str(&fields, "table")?,
                csv: get_str(&fields, "csv")?,
                // Only a *missing* suite defaults to empty; a wrong-typed
                // one must error, not silently register unconstrained.
                cfds: match get(&fields, "cfds") {
                    None => String::new(),
                    Some(_) => get_str(&fields, "cfds")?,
                },
                merged: get_bool(&fields, "merged")?,
            }),
            "cinds" => Ok(Request::Cinds { text: get_str(&fields, "text")? }),
            "append" => Ok(Request::Append {
                table: get_str(&fields, "table")?,
                row: get_str(&fields, "row")?,
            }),
            "delete" => Ok(Request::Delete {
                table: get_str(&fields, "table")?,
                tuple: get_int(&fields, "tuple")? as u64,
            }),
            "update" => Ok(Request::Update {
                table: get_str(&fields, "table")?,
                tuple: get_int(&fields, "tuple")? as u64,
                attr: get_str(&fields, "attr")?,
                value: get_str(&fields, "value")?,
            }),
            "count" => Ok(Request::Count { replica: get_bool(&fields, "replica")? }),
            "report" => Ok(Request::Report {
                max: get_int(&fields, "max").unwrap_or(25).max(0) as usize,
                replica: get_bool(&fields, "replica")?,
            }),
            "repair" => Ok(Request::Repair { table: get_str(&fields, "table")? }),
            "discover" => {
                let int_or = |key: &str, default: i64| match get(&fields, key) {
                    None => Ok(default),
                    Some(_) => get_int(&fields, key),
                };
                let pct = int_or("confidence_pct", 100)?;
                if !(0..=100).contains(&pct) {
                    return Err("field `confidence_pct` must be 0..=100".into());
                }
                Ok(Request::Discover {
                    table: get_str(&fields, "table")?,
                    min_support: int_or("min_support", 3)?.max(0) as usize,
                    max_lhs: int_or("max_lhs", 2)?.max(0) as usize,
                    confidence_pct: pct as u8,
                    register: get_bool(&fields, "register")?,
                })
            }
            "checkpoint" => Ok(Request::Checkpoint),
            "metrics" => Ok(Request::Metrics {
                // Absent field means "totals since start" — keeps the
                // bare `{"cmd":"metrics"}` form every existing client
                // sends valid.
                window_secs: match get(&fields, "window_secs") {
                    None => 0,
                    Some(_) => get_int(&fields, "window_secs")?.max(0) as u64,
                },
            }),
            "profile" => Ok(Request::Profile {
                last: match get(&fields, "last") {
                    None => 8,
                    Some(_) => get_int(&fields, "last")?.max(0) as u64,
                },
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown cmd `{other}` (register|cinds|append|delete|update|count|report\
                 |repair|discover|checkpoint|metrics|profile|shutdown)"
            )),
        }
    }

    /// Serialise — the test client and `watch` remote mode use this.
    pub fn to_line(&self) -> String {
        let mut fields: Vec<(&str, JsonValue)> = Vec::new();
        let cmd = match self {
            Request::Register { table, csv, cfds, merged } => {
                fields.push(("table", JsonValue::Str(table.clone())));
                fields.push(("csv", JsonValue::Str(csv.clone())));
                fields.push(("cfds", JsonValue::Str(cfds.clone())));
                if *merged {
                    fields.push(("merged", JsonValue::Bool(true)));
                }
                "register"
            }
            Request::Cinds { text } => {
                fields.push(("text", JsonValue::Str(text.clone())));
                "cinds"
            }
            Request::Append { table, row } => {
                fields.push(("table", JsonValue::Str(table.clone())));
                fields.push(("row", JsonValue::Str(row.clone())));
                "append"
            }
            Request::Delete { table, tuple } => {
                fields.push(("table", JsonValue::Str(table.clone())));
                fields.push(("tuple", JsonValue::Int(*tuple as i64)));
                "delete"
            }
            Request::Update { table, tuple, attr, value } => {
                fields.push(("table", JsonValue::Str(table.clone())));
                fields.push(("tuple", JsonValue::Int(*tuple as i64)));
                fields.push(("attr", JsonValue::Str(attr.clone())));
                fields.push(("value", JsonValue::Str(value.clone())));
                "update"
            }
            Request::Count { replica } => {
                if *replica {
                    fields.push(("replica", JsonValue::Bool(true)));
                }
                "count"
            }
            Request::Report { max, replica } => {
                fields.push(("max", JsonValue::Int(*max as i64)));
                if *replica {
                    fields.push(("replica", JsonValue::Bool(true)));
                }
                "report"
            }
            Request::Repair { table } => {
                fields.push(("table", JsonValue::Str(table.clone())));
                "repair"
            }
            Request::Discover { table, min_support, max_lhs, confidence_pct, register } => {
                fields.push(("table", JsonValue::Str(table.clone())));
                fields.push(("min_support", JsonValue::Int(*min_support as i64)));
                fields.push(("max_lhs", JsonValue::Int(*max_lhs as i64)));
                fields.push(("confidence_pct", JsonValue::Int(*confidence_pct as i64)));
                if *register {
                    fields.push(("register", JsonValue::Bool(true)));
                }
                "discover"
            }
            Request::Checkpoint => "checkpoint",
            Request::Metrics { window_secs } => {
                if *window_secs > 0 {
                    fields.push(("window_secs", JsonValue::Int(*window_secs as i64)));
                }
                "metrics"
            }
            Request::Profile { last } => {
                fields.push(("last", JsonValue::Int(*last as i64)));
                "profile"
            }
            Request::Shutdown => "shutdown",
        };
        let mut out = String::from("{");
        write_json_string(&mut out, "cmd");
        out.push(':');
        write_json_string(&mut out, cmd);
        for (k, v) in fields {
            out.push(',');
            write_json_string(&mut out, k);
            out.push(':');
            v.write(&mut out);
        }
        out.push_str("}\n");
        out
    }

    /// The request's verb name — the `verb="..."` label on the serve
    /// tier's per-request metrics.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Register { .. } => "register",
            Request::Cinds { .. } => "cinds",
            Request::Append { .. } => "append",
            Request::Delete { .. } => "delete",
            Request::Update { .. } => "update",
            Request::Count { .. } => "count",
            Request::Report { .. } => "report",
            Request::Repair { .. } => "repair",
            Request::Discover { .. } => "discover",
            Request::Checkpoint => "checkpoint",
            Request::Metrics { .. } => "metrics",
            Request::Profile { .. } => "profile",
            Request::Shutdown => "shutdown",
        }
    }
}

/// One server response (`{"ok":true,...}` / `{"ok":false,"error":..}`).
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    fields: Vec<(String, JsonValue)>,
}

impl Response {
    /// A success response.
    pub fn ok() -> Response {
        Response { fields: vec![("ok".into(), JsonValue::Bool(true))] }
    }

    /// An error response.
    pub fn err(message: impl std::fmt::Display) -> Response {
        Response {
            fields: vec![
                ("ok".into(), JsonValue::Bool(false)),
                ("error".into(), JsonValue::Str(message.to_string())),
            ],
        }
    }

    /// Attach an integer field.
    pub fn with_int(mut self, key: &str, value: i64) -> Response {
        self.fields.push((key.into(), JsonValue::Int(value)));
        self
    }

    /// Attach a string field.
    pub fn with_str(mut self, key: &str, value: impl Into<String>) -> Response {
        self.fields.push((key.into(), JsonValue::Str(value.into())));
        self
    }

    /// Did the request succeed?
    pub fn is_ok(&self) -> bool {
        matches!(get(&self.fields, "ok"), Some(JsonValue::Bool(true)))
    }

    /// Read back an integer field.
    pub fn int(&self, key: &str) -> Option<i64> {
        match get(&self.fields, key) {
            Some(JsonValue::Int(i)) => Some(*i),
            _ => None,
        }
    }

    /// Read back a string field.
    pub fn str(&self, key: &str) -> Option<&str> {
        match get(&self.fields, key) {
            Some(JsonValue::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Parse a response line (the test client side).
    pub fn parse(line: &str) -> Result<Response, String> {
        Ok(Response { fields: parse_object(line.trim_end())? })
    }

    /// Serialise as one newline-terminated line.
    pub fn to_line(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, k);
            out.push(':');
            v.write(&mut out);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Register {
                table: "customer".into(),
                csv: "cc,zip\n44,\"EH8, 9AB\"\n".into(),
                cfds: "customer([zip] -> [cc])".into(),
                merged: false,
            },
            Request::Register {
                table: "customer".into(),
                csv: "cc,zip\n44,EH8\n".into(),
                cfds: "customer([zip] -> [cc])".into(),
                merged: true,
            },
            Request::Cinds { text: "a(x;) <= b(y;)".into() },
            Request::Append { table: "customer".into(), row: "44,G1".into() },
            Request::Delete { table: "customer".into(), tuple: 3 },
            Request::Update {
                table: "customer".into(),
                tuple: 3,
                attr: "zip".into(),
                value: "EH8".into(),
            },
            Request::Count { replica: false },
            Request::Count { replica: true },
            Request::Report { max: 10, replica: false },
            Request::Report { max: 10, replica: true },
            Request::Checkpoint,
            Request::Repair { table: "customer".into() },
            Request::Discover {
                table: "customer".into(),
                min_support: 4,
                max_lhs: 3,
                confidence_pct: 90,
                register: true,
            },
            Request::Metrics { window_secs: 0 },
            Request::Metrics { window_secs: 30 },
            Request::Profile { last: 5 },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.to_line();
            assert!(line.ends_with('\n'));
            assert_eq!(Request::parse(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resp = Response::ok().with_int("violations", 3).with_str("text", "a\nb\t\"c\"");
        let line = resp.to_line();
        let back = Response::parse(&line).unwrap();
        assert!(back.is_ok());
        assert_eq!(back.int("violations"), Some(3));
        assert_eq!(back.str("text"), Some("a\nb\t\"c\""));
        let err = Response::parse(&Response::err("boom").to_line()).unwrap();
        assert!(!err.is_ok());
        assert_eq!(err.str("error"), Some("boom"));
    }

    #[test]
    fn escapes_and_unicode() {
        let fields = parse_object(r#"{"a":"müller","b":-12,"c":true,"d":null}"#).unwrap();
        assert_eq!(fields[0].1, JsonValue::Str("müller".into()));
        assert_eq!(fields[1].1, JsonValue::Int(-12));
        assert_eq!(fields[2].1, JsonValue::Bool(true));
        assert_eq!(fields[3].1, JsonValue::Null);
        // Raw multi-byte characters survive without escaping.
        let fields = parse_object("{\"k\":\"müller\"}").unwrap();
        assert_eq!(fields[0].1, JsonValue::Str("müller".into()));
    }

    #[test]
    fn surrogate_pairs_decode_and_unpaired_reject() {
        let fields = parse_object(r#"{"k":"😀"}"#).unwrap();
        assert_eq!(fields[0].1, JsonValue::Str("😀".into()));
        assert!(parse_object(r#"{"k":"\ud83d"}"#).is_err());
        assert!(parse_object(r#"{"k":"\ud83dx"}"#).is_err());
        assert!(parse_object(r#"{"k":"\ude00"}"#).is_err());
    }

    #[test]
    fn register_cfds_missing_defaults_but_wrong_type_errors() {
        let ok = Request::parse(r#"{"cmd":"register","table":"t","csv":"a\n1\n"}"#).unwrap();
        assert_eq!(
            ok,
            Request::Register {
                table: "t".into(),
                csv: "a\n1\n".into(),
                cfds: String::new(),
                merged: false,
            }
        );
        assert!(Request::parse(r#"{"cmd":"register","table":"t","csv":"a\n","cfds":123}"#).is_err());
        // `merged` defaults false, accepts booleans, rejects others.
        let m = Request::parse(r#"{"cmd":"register","table":"t","csv":"a\n","merged":true}"#);
        assert!(matches!(m, Ok(Request::Register { merged: true, .. })), "{m:?}");
        assert!(
            Request::parse(r#"{"cmd":"register","table":"t","csv":"a\n","merged":"yes"}"#).is_err()
        );
    }

    #[test]
    fn discover_defaults_and_bounds() {
        let d = Request::parse(r#"{"cmd":"discover","table":"t"}"#).unwrap();
        assert_eq!(
            d,
            Request::Discover {
                table: "t".into(),
                min_support: 3,
                max_lhs: 2,
                confidence_pct: 100,
                register: false,
            }
        );
        assert!(Request::parse(r#"{"cmd":"discover","table":"t","confidence_pct":101}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"discover","table":"t","register":"yes"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"discover"}"#).is_err());
    }

    #[test]
    fn metrics_and_profile_defaults() {
        // The bare form every pre-windowing client sends still parses.
        let m = Request::parse(r#"{"cmd":"metrics"}"#).unwrap();
        assert_eq!(m, Request::Metrics { window_secs: 0 });
        // And serialises back without the field.
        assert_eq!(m.to_line(), "{\"cmd\":\"metrics\"}\n");
        let m = Request::parse(r#"{"cmd":"metrics","window_secs":10}"#).unwrap();
        assert_eq!(m, Request::Metrics { window_secs: 10 });
        let p = Request::parse(r#"{"cmd":"profile"}"#).unwrap();
        assert_eq!(p, Request::Profile { last: 8 });
        assert!(Request::parse(r#"{"cmd":"metrics","window_secs":"x"}"#).is_err());
    }

    #[test]
    fn malformed_lines_rejected() {
        for bad in [
            "",
            "{",
            "{\"cmd\"}",
            "{\"cmd\":\"count\"} trailing",
            "{\"cmd\":\"count\",}",
            "{\"cmd\":3.5}",
            "{\"cmd\":\"nope\"}",
            "{\"cmd\":\"append\"}",
            "[1,2]",
        ] {
            assert!(Request::parse(bad).is_err(), "accepted: {bad}");
        }
    }
}
