//! # revival-stream
//!
//! The streaming data-quality service layer: where `revival_detect`
//! answers "what violates, right now?" for one table handed to it,
//! this crate keeps that answer *standing* while the data moves.
//!
//! The Semandaq demo (Fan–Geerts–Jia, VLDB'08) is pitched as an
//! interactive system, and the TODS incremental-detection technique
//! (kept warm here by [`revival_detect::IncrementalDetector`]) exists
//! precisely so a service does not rescan its base per edit. This crate
//! assembles that into a subsystem sitting between detection and
//! repair:
//!
//! * [`session::DeltaSession`] — registers tables + CFD/CIND suites,
//!   applies insert/delete/update deltas at `O(|Δ|)`, keeps live
//!   violation counters, falls back to one sharded
//!   [`revival_detect::ParallelEngine`] rescan when a batch outweighs
//!   the base, and triggers incremental repair on demand;
//! * [`protocol`] — the line-delimited JSON wire format of
//!   `semandaq serve` (self-contained JSON subset; the workspace is
//!   offline and carries no serde);
//! * [`shard::ShardedSession`] — the serve tier proper: a
//!   consistent-hash ring of per-relation session shards (one lock
//!   each), per-shard write-ahead logs replayed over `.sdq`
//!   checkpoints on restart, and checkpoint-published read
//!   [`shard::Replica`]s behind an arc-swap-style cell;
//! * [`wal::Wal`] — the fsync'd, FNV-checksummed, length-prefixed
//!   operation log each shard appends to before acking, and
//!   [`wal::GroupWal`] — leader/follower group commit over it, so one
//!   `fdatasync` acks every concurrent writer it covered;
//! * [`server::Server`] — a `std::net::TcpListener` front end with a
//!   worker-thread pool over one [`shard::ShardedSession`];
//! * [`tail::CsvTail`] — turns appended chunks of a growing CSV file
//!   into parsed rows for `semandaq watch`.

pub mod protocol;
pub mod server;
pub mod session;
pub mod shard;
pub mod tail;
pub mod wal;

pub use protocol::{Request, Response};
pub use server::{RunSummary, Server};
pub use session::{ApplyPath, DeltaOp, DeltaSession, SessionStats};
pub use shard::{Replica, RestoreSummary, ServeOptions, Shard, ShardRing, ShardedSession};
pub use tail::CsvTail;
pub use wal::{GroupWal, Wal, WalReplay};
