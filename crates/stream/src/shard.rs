//! Sharded, WAL-durable, replica-serving session tier.
//!
//! One [`crate::session::DeltaSession`] behind one `RwLock` (PR 6's
//! serve tier) serialises every hot table behind every other. This
//! module splits the session by *relation*:
//!
//! * **Shards** — a consistent-hash ring over table names routes every
//!   request to one of `--shards` independent `DeltaSession`s, each
//!   behind its own lock, so edits to unrelated tables proceed in
//!   parallel. The ring (64 virtual points per shard) keeps the
//!   assignment stable as names come and go.
//! * **WAL** — with `--wal`, each shard appends the canonical protocol
//!   line of every successful mutation to its own fsync'd
//!   [`crate::wal::Wal`] *before* the ack leaves the server. Restart =
//!   restore `.sdq` checkpoints + replay the per-shard logs, so
//!   `kill -9` loses nothing acked.
//! * **Read replicas** — each shard publishes an immutable
//!   [`Replica`] (report + suite + schemas) at every checkpoint
//!   behind an arc-swap-style cell; `count`/`report` with
//!   `"replica":true` read it without ever touching a session lock,
//!   lagging by at most the ops logged since the last checkpoint
//!   (returned as `stale_ops`).
//!
//! Constraint scope: CFDs are single-relation, so sharding by relation
//! never splits one. CINDs span two relations; they are accepted only
//! when both relations hash to the same shard (the error says so), and
//! dropped with a warning if a shard-count change separates them on
//! restore.
//!
//! Every lock acquisition recovers from poisoning
//! ([`std::sync::PoisonError::into_inner`]): a panicking request must
//! not brick the shard for every later connection. Panics in this
//! stack happen during input validation (e.g. a CSV with a duplicate
//! header inside `register`), before the session mutates, so the
//! recovered state is consistent.

use crate::protocol::{Request, Response};
use crate::session::{describe_report, DeltaSession};
use crate::wal::{GroupWal, Wal};
use revival_constraints::parser::{parse_cfds, parse_cinds};
use revival_constraints::{Cfd, Cind};
use revival_detect::ViolationReport;
use revival_relation::{csv, durable, Error, Result, Schema, Table};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Arc, Condvar, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Duration;

/// Virtual points per shard on the hash ring — enough that table names
/// spread evenly even at small shard counts.
const VNODES: usize = 64;

/// Record one poison recovery: bump `lock_poison_recovered_total` so real
/// panics never pass invisibly, and log the first recovery (the panic itself
/// was already reported to the offending client by the containment layer;
/// repeating the notice for every later lock acquisition would be noise).
fn note_poison_recovery(kind: &str) {
    revival_obs::global().counter("lock_poison_recovered_total").inc();
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "semandaq serve: recovered a poisoned {kind} lock after a panicking request; \
             state is pre-panic consistent (further recoveries counted in \
             lock_poison_recovered_total)"
        );
    });
}

/// Take a read lock, recovering (and accounting) for poisoning.
pub(crate) fn read_recovered<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| {
        note_poison_recovery("read");
        poisoned.into_inner()
    })
}

/// Take a write lock, recovering (and accounting) for poisoning.
pub(crate) fn write_recovered<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|poisoned| {
        note_poison_recovery("write");
        poisoned.into_inner()
    })
}

/// Take a mutex, recovering (and accounting) for poisoning.
pub(crate) fn lock_recovered<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| {
        note_poison_recovery("mutex");
        poisoned.into_inner()
    })
}

/// FNV-1a with a murmur-style avalanche finalizer. Raw FNV barely
/// diffuses the final bytes into the high bits, so short names that
/// differ only at the tail (`table_0`…`table_9`, `shard-0#0`…) land in
/// one narrow band and the ring's arcs come out grossly uneven — bad
/// enough that every table can route to a single shard. The finalizer
/// restores uniform point placement; both vnode points and routed
/// names go through it, so routing stays a pure function of the name.
fn ring_hash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// Consistent-hash ring over table names: `route` is a pure function
/// of the name and the shard count, so the same table always lands on
/// the same shard within a run, and restores re-route deterministically
/// even if `--shards` changed across restarts.
#[derive(Debug, Clone)]
pub struct ShardRing {
    points: Vec<(u64, usize)>,
}

impl ShardRing {
    /// A ring of `shards` shards (at least one).
    pub fn new(shards: usize) -> ShardRing {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * VNODES);
        for si in 0..shards {
            for v in 0..VNODES {
                points.push((ring_hash(&format!("shard-{si}#{v}")), si));
            }
        }
        points.sort_unstable();
        ShardRing { points }
    }

    /// The shard index serving `table`: the first ring point at or
    /// after the name's hash, wrapping.
    pub fn route(&self, table: &str) -> usize {
        let h = ring_hash(table);
        let at = self.points.partition_point(|&(p, _)| p < h);
        self.points[if at == self.points.len() { 0 } else { at }].1
    }
}

/// An immutable read snapshot of one shard, published at checkpoints.
/// Holds everything `count`/`report` need — no catalog, no locks.
#[derive(Debug)]
pub struct Replica {
    /// The shard's full violation report as of the checkpoint.
    pub report: ViolationReport,
    cfds: Vec<Cfd>,
    cinds: Vec<Cind>,
    schemas: Vec<Schema>,
    /// The shard's mutation sequence number the snapshot covers.
    pub seq: u64,
    /// Live rows across the shard's relations at the checkpoint.
    pub rows: usize,
}

impl Replica {
    fn empty() -> Replica {
        Replica {
            report: ViolationReport::default(),
            cfds: Vec::new(),
            cinds: Vec::new(),
            schemas: Vec::new(),
            seq: 0,
            rows: 0,
        }
    }

    fn of(session: &DeltaSession, seq: u64) -> Result<Replica> {
        let mut names: Vec<String> =
            session.catalog().relation_names().map(str::to_string).collect();
        names.sort();
        Ok(Replica {
            report: session.report()?,
            cfds: session.cfds().to_vec(),
            cinds: session.cinds().to_vec(),
            schemas: names
                .iter()
                .filter_map(|n| session.catalog().get(n).ok())
                .map(|t| t.schema().clone())
                .collect(),
            seq,
            rows: session.live_rows(),
        })
    }

    /// Same rendering as [`DeltaSession::describe`], off the snapshot.
    pub fn describe(&self, max: usize) -> String {
        describe_report(&self.report, &self.cfds, &self.cinds, max, |name| {
            self.schemas.iter().find(|s| s.name() == name)
        })
    }
}

/// The arc-swap-style publication cell: readers clone an `Arc` under a
/// briefly-held read lock; the (rare) writer swaps the pointer under a
/// briefly-held write lock, *after* building the new `Replica` outside
/// any lock. A true lock-free `AtomicPtr` swap needs hazard-pointer
/// reclamation the std library does not provide, so this is the
/// std-only equivalent: the critical sections are O(1) pointer
/// operations, and replica reads never touch a session lock at all.
#[derive(Debug)]
struct ReplicaCell {
    slot: RwLock<Arc<Replica>>,
}

impl ReplicaCell {
    fn new(replica: Replica) -> ReplicaCell {
        ReplicaCell { slot: RwLock::new(Arc::new(replica)) }
    }

    fn load(&self) -> Arc<Replica> {
        read_recovered(&self.slot).clone()
    }

    fn store(&self, replica: Arc<Replica>) {
        *write_recovered(&self.slot) = replica;
    }
}

/// Doorbell for one shard's background checkpointer thread: the write
/// path rings it (and acks immediately) when the WAL crosses
/// `--checkpoint-ops`; the thread sleeps on the condvar between rings.
#[derive(Debug, Default)]
struct CheckpointSignal {
    flags: Mutex<CheckpointFlags>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct CheckpointFlags {
    due: bool,
    stop: bool,
}

impl CheckpointSignal {
    /// Ask for a checkpoint soon; cheap and non-blocking.
    fn nudge(&self) {
        lock_recovered(&self.flags).due = true;
        self.cond.notify_all();
    }

    /// Ask the checkpointer thread to exit.
    fn stop(&self) {
        lock_recovered(&self.flags).stop = true;
        self.cond.notify_all();
    }
}

/// One shard: an independent session, its WAL, and its published
/// replica. `seq` counts acknowledged mutations (bumped under the
/// session write lock, so a checkpoint's read lock observes it
/// stably).
pub struct Shard {
    session: RwLock<DeltaSession>,
    wal: OnceLock<GroupWal>,
    replica: ReplicaCell,
    seq: AtomicU64,
    ckpt: CheckpointSignal,
    /// One checkpoint of this shard at a time: the background
    /// checkpointer and an explicit `checkpoint` verb must not
    /// interleave snapshot writes into the same directory.
    ckpt_serial: Mutex<()>,
}

impl Shard {
    fn new(jobs: usize) -> Shard {
        Shard {
            session: RwLock::new(DeltaSession::new(jobs)),
            wal: OnceLock::new(),
            replica: ReplicaCell::new(Replica::empty()),
            seq: AtomicU64::new(0),
            ckpt: CheckpointSignal::default(),
            ckpt_serial: Mutex::new(()),
        }
    }

    /// The shard's session lock (tests and the shutdown path).
    pub fn session(&self) -> &RwLock<DeltaSession> {
        &self.session
    }

    /// The currently published replica.
    pub fn replica(&self) -> Arc<Replica> {
        self.replica.load()
    }
}

/// How to open a [`ShardedSession`] — mirrors the `semandaq serve`
/// flags.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Worker shards for each session's burst rescans (`--jobs`).
    pub jobs: usize,
    /// Session shard count (`--shards`); clamped to at least 1.
    pub shards: usize,
    /// Write-ahead-log every mutation before acking (`--wal`;
    /// requires `state`).
    pub wal: bool,
    /// Auto-checkpoint a shard once its WAL holds this many records
    /// (`--checkpoint-ops`; 0 disables, checkpoints then happen only
    /// on the `checkpoint` verb and at clean shutdown). Auto
    /// checkpoints run on a per-shard background thread; the request
    /// that crossed the threshold acks immediately.
    pub checkpoint_ops: u64,
    /// Group-commit gather window in microseconds
    /// (`--wal-group-max-wait`): a freshly elected commit leader waits
    /// this long for more writers to stage into its batch before
    /// paying the batch's one `fdatasync`. Bounds the extra latency a
    /// lone writer can see; 0 (the default) syncs immediately, and
    /// batching then comes only from writers that staged while a
    /// previous sync was in flight.
    pub wal_group_max_wait_us: u64,
    /// State directory (`--state`): restored on open, checkpointed
    /// into `shard-<i>/` subdirectories plus `wal-<i>.log` files.
    pub state: Option<PathBuf>,
    /// Log any request slower than this many microseconds, with its
    /// per-phase breakdown (`--slow-log`; `None` disables).
    pub slow_log_us: Option<u64>,
    /// Write Chrome-trace-format events here at shutdown
    /// (`--trace-out`; enables trace collection for the run).
    pub trace_out: Option<PathBuf>,
}

/// What [`ShardedSession::open`] found on disk.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RestoreSummary {
    /// Relations restored from `.sdq` checkpoint snapshots.
    pub relations: usize,
    /// WAL records replayed on top of the checkpoints.
    pub replayed: usize,
    /// WAL records that failed to re-execute (should be zero: only
    /// acked — successful — mutations are ever logged).
    pub replay_errors: usize,
    /// Bytes of torn (never-acked) WAL tail discarded.
    pub torn_bytes: usize,
    /// CINDs dropped because a shard-count change split their two
    /// relations across shards.
    pub dropped_cinds: usize,
}

/// The sharded serve tier: routing, per-shard locking, WAL, replicas,
/// checkpoints. [`crate::server::Server`] is this plus TCP.
///
/// A thin handle over the shared [`Tier`]: background checkpointer
/// threads hold their own `Arc` to the same tier, and dropping the
/// handle stops and joins them *without* checkpointing — a plain drop
/// stays a faithful crash simulation for the recovery tests.
pub struct ShardedSession {
    tier: Arc<Tier>,
    checkpointers: Vec<std::thread::JoinHandle<()>>,
}

/// The tier state proper, shared between request threads and the
/// background checkpointers.
struct Tier {
    shards: Vec<Shard>,
    ring: ShardRing,
    state: Option<PathBuf>,
    checkpoint_ops: u64,
    /// Per-shard checkpoints taken by *this* tier (the registry's
    /// `serve_checkpoints_total` is process-global and would mix tiers
    /// when tests or benches run several servers in one process).
    checkpoints_taken: AtomicU64,
}

impl Drop for ShardedSession {
    fn drop(&mut self) {
        for shard in &self.tier.shards {
            shard.ckpt.stop();
        }
        for handle in self.checkpointers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One shard's background checkpointer: sleep until nudged (or told to
/// stop), then checkpoint the shard off the request path. Errors are
/// counted and logged, never surfaced to a client — the triggering
/// request was acked long ago, and the next nudge retries.
fn checkpointer_loop(tier: &Tier, i: usize) {
    loop {
        {
            let signal = &tier.shards[i].ckpt;
            let mut flags = lock_recovered(&signal.flags);
            while !flags.due && !flags.stop {
                flags = signal.cond.wait(flags).unwrap_or_else(|p| p.into_inner());
            }
            if flags.stop {
                return;
            }
            flags.due = false;
        }
        if let Err(e) = tier.checkpoint_shard(i) {
            revival_obs::global().counter("serve_checkpoint_errors_total").inc();
            eprintln!("semandaq serve: background checkpoint of shard {i} failed: {e}");
        }
    }
}

impl ShardedSession {
    /// Open a session tier: restore `.sdq` checkpoints from the state
    /// directory (both the sharded `shard-<i>/` layout and the legacy
    /// flat layout of PR 6), replay any WAL tails on top, take a boot
    /// checkpoint (which truncates the logs and publishes fresh
    /// replicas), and open the per-shard WALs for appending.
    pub fn open(opts: &ServeOptions) -> Result<(ShardedSession, RestoreSummary)> {
        if opts.wal && opts.state.is_none() {
            return Err(Error::Io("the WAL needs a state directory to live in".into()));
        }
        let n = opts.shards.max(1);
        let this = Tier {
            shards: (0..n).map(|_| Shard::new(opts.jobs)).collect(),
            ring: ShardRing::new(n),
            state: opts.state.clone(),
            checkpoint_ops: opts.checkpoint_ops,
            checkpoints_taken: AtomicU64::new(0),
        };
        let mut summary = RestoreSummary::default();
        let Some(dir) = this.state.clone() else {
            return Ok((
                ShardedSession { tier: Arc::new(this), checkpointers: Vec::new() },
                summary,
            ));
        };
        std::fs::create_dir_all(&dir)?;

        // Snapshot sources: shard subdirectories, else the flat layout.
        let mut shard_dirs: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.is_dir()
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("shard-"))
            })
            .collect();
        shard_dirs.sort();
        let legacy = shard_dirs.is_empty();
        let sources = if legacy { vec![dir.clone()] } else { shard_dirs };

        let mut schemas: Vec<Schema> = Vec::new();
        let mut cind_texts: Vec<String> = Vec::new();
        for source in &sources {
            let mut paths: Vec<PathBuf> = std::fs::read_dir(source)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "sdq"))
                .collect();
            paths.sort();
            for path in &paths {
                let table = Table::open_snapshot(path)?;
                let cfds = match std::fs::read_to_string(path.with_extension("cfds")) {
                    Ok(text) => parse_cfds(&text, table.schema())?,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                    Err(e) => return Err(e.into()),
                };
                schemas.push(table.schema().clone());
                let si = this.ring.route(table.schema().name());
                write_recovered(&this.shards[si].session).register(table, cfds)?;
                summary.relations += 1;
            }
            match std::fs::read_to_string(source.join("cinds.txt")) {
                Ok(text) => cind_texts.push(text),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        for text in &cind_texts {
            for cind in parse_cinds(text, &schemas)? {
                let si = this.ring.route(&cind.from_relation);
                if this.ring.route(&cind.to_relation) != si {
                    summary.dropped_cinds += 1;
                    continue;
                }
                write_recovered(&this.shards[si].session).add_cinds(vec![cind])?;
            }
        }

        // Replay WAL tails. Each record routes by the *current* ring
        // (shard counts may differ across restarts); per-table order is
        // preserved because within one run a table logs to one file.
        let mut wal_paths: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
            })
            .collect();
        wal_paths.sort();
        for path in &wal_paths {
            let replay = Wal::replay(path)?;
            summary.torn_bytes += replay.torn_bytes;
            for line in &replay.records {
                let ok = match Request::parse(line) {
                    Ok(req) => self::mutation_table(&req).is_ok() && this.mutate(&req).is_ok(),
                    Err(_) => false,
                };
                if ok {
                    summary.replayed += 1;
                } else {
                    summary.replay_errors += 1;
                }
            }
        }

        if opts.wal {
            let window = Duration::from_micros(opts.wal_group_max_wait_us);
            for (i, shard) in this.shards.iter().enumerate() {
                let wal = GroupWal::open(&dir.join(format!("wal-{i}.log")), window)?;
                shard.wal.set(wal).expect("each shard's wal is opened exactly once");
            }
        }
        // Boot checkpoint: the snapshots now cover everything replayed,
        // the logs truncate, and the replicas publish.
        this.checkpoint()?;
        if !opts.wal {
            // Replayed into the checkpoint above; a later restore must
            // not replay these again.
            for path in &wal_paths {
                std::fs::remove_file(path)?;
            }
        }
        if legacy && summary.relations > 0 {
            // The flat PR 6 files just migrated into shard-<i>/; left
            // in place they would be restored *twice* next boot.
            for entry in std::fs::read_dir(&dir)? {
                let path = entry?.path();
                let ext = path.extension().and_then(|x| x.to_str());
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if matches!(ext, Some("sdq") | Some("cfds")) || name == "cinds.txt" {
                    std::fs::remove_file(&path)?;
                }
            }
        }
        durable::sync_dir(&dir)?;
        let tier = Arc::new(this);
        let mut checkpointers = Vec::new();
        if opts.wal && opts.checkpoint_ops > 0 {
            for i in 0..n {
                let tier = Arc::clone(&tier);
                let handle = std::thread::Builder::new()
                    .name(format!("semandaq-ckpt-{i}"))
                    .spawn(move || checkpointer_loop(&tier, i))
                    .map_err(|e| Error::Io(format!("spawn checkpointer {i}: {e}")))?;
                checkpointers.push(handle);
            }
        }
        Ok((ShardedSession { tier, checkpointers }, summary))
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.tier.shards.len()
    }

    /// Per-shard checkpoints this tier has taken (boot checkpoint
    /// included) — feeds the serve shutdown summary.
    pub fn checkpoints_taken(&self) -> u64 {
        self.tier.checkpoints_taken.load(Ordering::Relaxed)
    }

    /// A shard by index (tests and the shutdown path).
    pub fn shard(&self, i: usize) -> &Shard {
        &self.tier.shards[i]
    }

    /// The shard index serving `table`.
    pub fn route(&self, table: &str) -> usize {
        self.tier.ring.route(table)
    }

    /// Execute one request (everything except `shutdown`, which is the
    /// server's to answer). The single entry point shared by the TCP
    /// workers, the WAL replayer, and the tests.
    pub fn handle(&self, request: &Request) -> Response {
        self.tier.handle(request)
    }

    /// Checkpoint every shard now, on the calling thread.
    pub fn checkpoint(&self) -> Result<usize> {
        self.tier.checkpoint()
    }
}

impl Tier {
    /// See [`ShardedSession::handle`].
    fn handle(&self, request: &Request) -> Response {
        match request {
            Request::Count { replica } => self.count(*replica),
            Request::Report { max, replica } => self.report(*max, *replica),
            Request::Checkpoint => revival_obs::time_phase("apply", || match self.checkpoint() {
                Ok(saved) => Response::ok()
                    .with_int("relations", saved as i64)
                    .with_int("shards", self.shards.len() as i64),
                Err(e) => Response::err(e),
            }),
            Request::Discover { register: false, .. } => self.discover_unlocked(request),
            Request::Shutdown => Response::err("shutdown is handled by the server"),
            _ => self.mutate(request),
        }
    }

    /// Route, apply, stage, group-commit, ack — the write path. The
    /// WAL *stage* happens under the shard's session write lock (log
    /// order = apply order), but the fsync does not: the lock drops
    /// first, then [`GroupWal::commit`] blocks until one group sync
    /// covers the staged record — so reads and further writes to the
    /// shard proceed while a batch syncs, and one `fdatasync` acks
    /// every writer it covered. A stage or commit failure turns the
    /// ack into an error, because "applied but not durable" must not
    /// look like success to a client counting on `--wal`.
    fn mutate(&self, request: &Request) -> Response {
        let table = match revival_obs::time_phase("route", || mutation_table(request)) {
            Ok(t) => t,
            Err(e) => return Response::err(e),
        };
        let si = self.ring.route(table);
        let shard = &self.shards[si];
        let (response, staged) = {
            let mut session =
                revival_obs::time_phase("lock_wait", || write_recovered(&shard.session));
            let response = revival_obs::time_phase("apply", || self.apply(&mut session, request));
            let mut staged = None;
            if response.is_ok() {
                shard.seq.fetch_add(1, Ordering::SeqCst);
                if let Some(wal) = shard.wal.get() {
                    match revival_obs::time_phase("wal_append", || {
                        wal.stage(request.to_line().trim_end())
                    }) {
                        Ok(csn) => staged = Some(csn),
                        Err(e) => return Response::err(format!("applied but not durable: {e}")),
                    }
                }
            }
            (response, staged)
        };
        if let Some(csn) = staged {
            let wal = shard.wal.get().expect("record was staged into this wal");
            if let Err(e) = revival_obs::time_phase("commit_wait", || wal.commit(csn)) {
                return Response::err(format!("applied but not durable: {e}"));
            }
            // Durable and about to ack; a crossed checkpoint threshold
            // only rings the background checkpointer's doorbell.
            if self.checkpoint_ops > 0 && wal.records() >= self.checkpoint_ops {
                shard.ckpt.nudge();
            }
        }
        response
    }

    /// Apply one mutating request to one shard's session — ported
    /// verb-by-verb from the PR 6 single-session server.
    fn apply(&self, session: &mut DeltaSession, request: &Request) -> Response {
        match request {
            Request::Register { table, csv: csv_text, cfds, merged } => {
                let parsed = match csv::read_table_infer(table, csv_text) {
                    Ok(t) => t,
                    Err(e) => return Response::err(e),
                };
                let mut suite = match parse_cfds(cfds, parsed.schema()) {
                    Ok(s) => s,
                    Err(e) => return Response::err(e),
                };
                if *merged {
                    // Engine-layer merged tableaux at the session
                    // boundary: one maintained grouping state per
                    // embedded FD; `cfds` reports the merged size the
                    // counts and report indices refer to.
                    suite = revival_constraints::cfd::merge_by_embedded_fd(&suite);
                }
                let rows = parsed.len();
                let n_cfds = suite.len();
                match session.register(parsed, suite) {
                    Ok(()) => match session.violation_count() {
                        Ok(v) => Response::ok()
                            .with_int("rows", rows as i64)
                            .with_int("cfds", n_cfds as i64)
                            .with_int("violations", v as i64),
                        Err(e) => Response::err(e),
                    },
                    Err(e) => Response::err(e),
                }
            }
            Request::Cinds { text } => {
                let schemas: Vec<Schema> = {
                    let catalog = session.catalog();
                    let mut names: Vec<String> =
                        catalog.relation_names().map(str::to_string).collect();
                    names.sort();
                    names
                        .iter()
                        .filter_map(|n| catalog.get(n).ok())
                        .map(|t| t.schema().clone())
                        .collect()
                };
                let cinds = match parse_cinds(text, &schemas) {
                    Ok(c) => c,
                    Err(e) if self.shards.len() > 1 => {
                        return Response::err(format!(
                            "{e} (with --shards, a cind's two relations must hash to the \
                             same shard; these schemas live on the routed shard: {:?})",
                            schemas.iter().map(|s| s.name()).collect::<Vec<_>>()
                        ))
                    }
                    Err(e) => return Response::err(e),
                };
                let n = cinds.len();
                match session.add_cinds(cinds) {
                    Ok(()) => Response::ok().with_int("cinds", n as i64),
                    Err(e) => Response::err(e),
                }
            }
            Request::Append { table, row } => {
                let parsed =
                    match session.table(table).and_then(|t| csv::parse_line(t.schema(), row, 0)) {
                        Ok(r) => r,
                        Err(e) => return Response::err(e),
                    };
                match session.insert(table, parsed) {
                    Ok(id) => match session.violation_count() {
                        Ok(v) => Response::ok()
                            .with_int("tuple", id.0 as i64)
                            .with_int("violations", v as i64),
                        Err(e) => Response::err(e),
                    },
                    Err(e) => Response::err(e),
                }
            }
            Request::Delete { table, tuple } => {
                match session.delete(table, revival_relation::TupleId(*tuple)) {
                    Ok(_) => match session.violation_count() {
                        Ok(v) => Response::ok().with_int("violations", v as i64),
                        Err(e) => Response::err(e),
                    },
                    Err(e) => Response::err(e),
                }
            }
            Request::Update { table, tuple, attr, value } => {
                let parsed = match session.table(table).and_then(|t| {
                    let attr_id = t.schema().attr_id(attr)?;
                    Ok((attr_id, t.schema().attribute(attr_id).ty.parse(value)?))
                }) {
                    Ok(p) => p,
                    Err(e) => return Response::err(e),
                };
                match session.update(table, revival_relation::TupleId(*tuple), parsed.0, parsed.1) {
                    Ok(()) => match session.violation_count() {
                        Ok(v) => Response::ok().with_int("violations", v as i64),
                        Err(e) => Response::err(e),
                    },
                    Err(e) => Response::err(e),
                }
            }
            Request::Repair { table } => match session.repair(table) {
                Ok(stats) => match session.violation_count() {
                    Ok(v) => Response::ok()
                        .with_int("tuples_edited", stats.tuples_edited as i64)
                        .with_int("cells_changed", stats.cells_changed as i64)
                        .with_int("violations", v as i64),
                    Err(e) => Response::err(e),
                },
                Err(e) => Response::err(e),
            },
            Request::Discover { table, register: true, .. } => {
                // Hold the write lock across the mine so the vetted
                // suite installs against exactly the state it profiled;
                // `set_cfds` swaps only the constraints — the table,
                // tuple ids, pending-repair baseline, and CINDs stay.
                let snapshot = match session.table(table) {
                    Ok(t) => t.clone(),
                    Err(e) => return Response::err(e),
                };
                let discovered = match mine(request, &snapshot, session.jobs()) {
                    Ok(d) => d,
                    Err(e) => return Response::err(e),
                };
                if let Err(e) = session.set_cfds(table, discovered.vetted.clone()) {
                    return Response::err(e);
                }
                match session.violation_count() {
                    Ok(v) => discover_response(&discovered, snapshot.schema())
                        .with_int("violations", v as i64),
                    Err(e) => Response::err(e),
                }
            }
            _ => Response::err("not a mutating request"),
        }
    }

    /// Read-only discovery mines on a snapshot *outside* any lock, so
    /// a long mine never blocks the shard's writers.
    fn discover_unlocked(&self, request: &Request) -> Response {
        let Request::Discover { table, .. } = request else {
            return Response::err("not a discover request");
        };
        let si = revival_obs::time_phase("route", || self.ring.route(table));
        let (snapshot, jobs) = {
            let session =
                revival_obs::time_phase("lock_wait", || read_recovered(&self.shards[si].session));
            match session.table(table) {
                Ok(t) => (t.clone(), session.jobs()),
                Err(e) => return Response::err(e),
            }
        };
        revival_obs::time_phase("apply", || match mine(request, &snapshot, jobs) {
            Ok(d) => discover_response(&d, snapshot.schema()),
            Err(e) => Response::err(e),
        })
    }

    /// `count`, live or from the replicas. Live aggregates each
    /// shard's counter under its read lock in turn — cheap, but not a
    /// consistent cut across shards (a write may land between visits);
    /// the replica path *is* a consistent-per-shard cut and reports
    /// its staleness.
    fn count(&self, replica: bool) -> Response {
        note_read_path(replica);
        if replica {
            // No session lock on this path, so the whole aggregate is
            // `apply` — otherwise replica reads would report their
            // entire cost as the `ack` residual.
            return revival_obs::time_phase("apply", || {
                let (mut total, mut stale, mut rows) = (0i64, 0i64, 0i64);
                for shard in &self.shards {
                    let rep = shard.replica.load();
                    total += rep.report.len() as i64;
                    stale += shard.seq.load(Ordering::SeqCst).saturating_sub(rep.seq) as i64;
                    rows += rep.rows as i64;
                }
                revival_obs::global().gauge("serve_stale_ops").set(stale);
                Response::ok()
                    .with_int("violations", total)
                    .with_int("stale_ops", stale)
                    .with_int("rows", rows)
            });
        }
        let mut total = 0i64;
        for shard in &self.shards {
            let session = revival_obs::time_phase("lock_wait", || read_recovered(&shard.session));
            match revival_obs::time_phase("apply", || session.violation_count()) {
                Ok(v) => total += v as i64,
                Err(e) => return Response::err(e),
            }
        }
        Response::ok().with_int("violations", total)
    }

    /// `report`, live or from the replicas. With several shards the
    /// text concatenates one described block per non-clean shard,
    /// `max` lines spread across them in shard order.
    fn report(&self, max: usize, replica: bool) -> Response {
        note_read_path(replica);
        let mut total = 0usize;
        let mut stale = 0i64;
        let mut text = String::new();
        let mut remaining = max;
        for shard in &self.shards {
            let (len, block) = if replica {
                let rep = shard.replica.load();
                stale += shard.seq.load(Ordering::SeqCst).saturating_sub(rep.seq) as i64;
                revival_obs::time_phase("apply", || (rep.report.len(), rep.describe(remaining)))
            } else {
                let session =
                    revival_obs::time_phase("lock_wait", || read_recovered(&shard.session));
                let described = revival_obs::time_phase("apply", || {
                    session.report().map(|r| (r.len(), session.describe(&r, remaining)))
                });
                match described {
                    Ok(pair) => pair,
                    Err(e) => return Response::err(e),
                }
            };
            total += len;
            if self.shards.len() == 1 || len > 0 {
                text.push_str(&block);
                remaining = remaining.saturating_sub(len);
            }
        }
        if text.is_empty() {
            text = "0 violation(s); 0 tuple(s) involved\n".into();
        }
        let response = Response::ok().with_int("violations", total as i64).with_str("text", text);
        if replica {
            revival_obs::global().gauge("serve_stale_ops").set(stale);
            response.with_int("stale_ops", stale)
        } else {
            response
        }
    }

    /// Checkpoint every shard: durably snapshot to
    /// `state/shard-<i>/`, truncate its WAL, publish a fresh replica.
    /// Returns relations written (0 without a state directory, where
    /// only the replicas refresh).
    fn checkpoint(&self) -> Result<usize> {
        let mut saved = 0;
        for i in 0..self.shards.len() {
            saved += self.checkpoint_shard(i)?;
        }
        if let Some(dir) = &self.state {
            durable::sync_dir(dir)?;
        }
        Ok(saved)
    }

    /// Checkpoint one shard. Order matters for crash safety: snapshot
    /// durably *first*, truncate the log second — a crash in between
    /// merely replays ops onto a state that already contains them
    /// (replay is idempotent for register, and the snapshot+log pair
    /// is re-checkpointed at the next boot before new ops land).
    fn checkpoint_shard(&self, i: usize) -> Result<usize> {
        let shard = &self.shards[i];
        let _serial = lock_recovered(&shard.ckpt_serial);
        let span = revival_obs::Span::traced(
            "serve.checkpoint",
            revival_obs::global().histogram("serve_checkpoint_us"),
        );
        // Read lock: writers to *this shard* pause, other shards don't.
        let session = read_recovered(&shard.session);
        let mut saved = 0;
        if let Some(dir) = &self.state {
            saved = session.save_state(&dir.join(format!("shard-{i}")))?;
            if let Some(wal) = shard.wal.get() {
                // Waits out any in-flight group sync, then drops even
                // staged-but-unsynced frames: staging happens under the
                // session write lock, so everything staged was applied
                // before this read lock was granted and is in the
                // snapshot just written.
                wal.truncate_covered()?;
            }
        }
        let seq = shard.seq.load(Ordering::SeqCst);
        shard.replica.store(Arc::new(Replica::of(&session, seq)?));
        revival_obs::global().counter("serve_checkpoints_total").inc();
        self.checkpoints_taken.fetch_add(1, Ordering::Relaxed);
        drop(span);
        Ok(saved)
    }
}

/// Every phase name this module records through the thread-local
/// phase accumulator, pipeline order. The serve front end's phase
/// histogram list is exactly `parse` + these + `ack`; tests on both
/// sides keep the lists from drifting, because a name recorded here
/// but missing there would silently drop out of `serve_phase_us`
/// while still being subtracted from the `ack` residual.
pub const SHARD_PHASES: [&str; 5] = ["route", "lock_wait", "apply", "wal_append", "commit_wait"];

/// Count one read-path request as replica-served or session-locked.
fn note_read_path(replica: bool) {
    let name = if replica { "serve_replica_reads_total" } else { "serve_locked_reads_total" };
    revival_obs::global().counter(name).inc();
}

/// The table name a mutating request routes by. CINDs route by their
/// first relation (lexed ahead of the full parse, which needs the
/// routed shard's schemas).
fn mutation_table(request: &Request) -> std::result::Result<&str, String> {
    match request {
        Request::Register { table, .. }
        | Request::Append { table, .. }
        | Request::Delete { table, .. }
        | Request::Update { table, .. }
        | Request::Repair { table, .. }
        | Request::Discover { table, .. } => Ok(table),
        Request::Cinds { text } => text
            .lines()
            .find(|l| !l.trim().is_empty())
            .and_then(|l| l.split('(').next())
            .map(str::trim)
            .filter(|n| !n.is_empty())
            .ok_or_else(|| "cannot route cinds: no `relation(...)` head found".to_string()),
        _ => Err("not a mutating request".to_string()),
    }
}

fn mine(request: &Request, snapshot: &Table, jobs: usize) -> Result<revival_discovery::Discovered> {
    use revival_discovery::{DiscoverJob, DiscoverOptions, DiscoveryEngine};
    let Request::Discover { min_support, max_lhs, confidence_pct, .. } = request else {
        return Err(Error::Io("not a discover request".into()));
    };
    let options = DiscoverOptions {
        min_support: *min_support,
        max_lhs: *max_lhs,
        min_confidence: f64::from(*confidence_pct) / 100.0,
        jobs,
        ..DiscoverOptions::default()
    };
    revival_discovery::ParallelDiscovery.run(&DiscoverJob::on_table(snapshot, options))
}

fn discover_response(d: &revival_discovery::Discovered, schema: &Schema) -> Response {
    let text: String =
        d.vetted.iter().map(|c| revival_constraints::parser::cfd_to_text(c, schema)).collect();
    Response::ok()
        .with_int("rules", d.rules.len() as i64)
        .with_int("vetted", d.vetted.len() as i64)
        .with_str("text", text)
        .with_int("levels", d.stats.levels as i64)
        .with_int("candidates_pruned", d.stats.candidates_pruned as i64)
        .with_int("lattice_truncated", i64::from(d.stats.lattice_truncated))
        .with_str(
            "satisfiable",
            match d.satisfiable {
                revival_constraints::analysis::Outcome::Yes => "yes",
                revival_constraints::analysis::Outcome::No => "no",
                revival_constraints::analysis::Outcome::ResourceLimit => "unknown",
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("revival_shard_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn register(table: &str, csv: &str, cfds: &str) -> Request {
        Request::Register { table: table.into(), csv: csv.into(), cfds: cfds.into(), merged: false }
    }

    fn append(table: &str, row: &str) -> Request {
        Request::Append { table: table.into(), row: row.into() }
    }

    #[test]
    fn ring_routes_stably_and_spreads() {
        let ring = ShardRing::new(4);
        let mut seen = [false; 4];
        for i in 0..64 {
            let name = format!("table_{i}");
            let si = ring.route(&name);
            assert_eq!(si, ring.route(&name), "routing must be deterministic");
            assert!(si < 4);
            seen[si] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 names should touch all 4 shards");
        assert_eq!(ShardRing::new(1).route("anything"), 0);
    }

    #[test]
    fn sharded_ops_aggregate_across_shards() {
        let (tier, _) =
            ShardedSession::open(&ServeOptions { shards: 4, ..Default::default() }).unwrap();
        for i in 0..4 {
            let resp = tier.handle(&register(
                &format!("t{i}"),
                "a,b\n1,x\n",
                &format!("t{i}([a] -> [b])"),
            ));
            assert!(resp.is_ok(), "{resp:?}");
            // A conflicting second row: one violated group per table.
            let resp = tier.handle(&append(&format!("t{i}"), "1,y"));
            assert!(resp.is_ok(), "{resp:?}");
        }
        let resp = tier.handle(&Request::Count { replica: false });
        assert_eq!(resp.int("violations"), Some(4), "{resp:?}");
        let resp = tier.handle(&Request::Report { max: 100, replica: false });
        assert_eq!(resp.int("violations"), Some(4), "{resp:?}");
        assert!(resp.str("text").unwrap().contains("disagree on b"), "{resp:?}");
    }

    #[test]
    fn replica_reads_lag_until_checkpoint() {
        let (tier, _) = ShardedSession::open(&ServeOptions::default()).unwrap();
        tier.handle(&register("t", "a,b\n1,x\n", "t([a] -> [b])"));
        tier.handle(&append("t", "1,y"));
        // The replica predates both ops: empty but honest about it.
        let resp = tier.handle(&Request::Count { replica: true });
        assert_eq!(resp.int("violations"), Some(0), "{resp:?}");
        assert_eq!(resp.int("stale_ops"), Some(2), "{resp:?}");
        // Checkpoint (stateless: replicas only) catches it up.
        let resp = tier.handle(&Request::Checkpoint);
        assert!(resp.is_ok(), "{resp:?}");
        let resp = tier.handle(&Request::Count { replica: true });
        assert_eq!(resp.int("violations"), Some(1), "{resp:?}");
        assert_eq!(resp.int("stale_ops"), Some(0), "{resp:?}");
        let resp = tier.handle(&Request::Report { max: 10, replica: true });
        assert!(resp.str("text").unwrap().contains("disagree on b"), "{resp:?}");
    }

    #[test]
    fn wal_replays_acked_ops_after_simulated_crash() {
        let dir = tmp_dir("crash");
        let opts =
            ServeOptions { shards: 2, wal: true, state: Some(dir.clone()), ..Default::default() };
        {
            let (tier, summary) = ShardedSession::open(&opts).unwrap();
            assert_eq!(summary, RestoreSummary::default());
            assert!(tier.handle(&register("t", "a,b\n1,x\n", "t([a] -> [b])")).is_ok());
            assert!(tier.handle(&append("t", "1,y")).is_ok());
            assert!(tier.handle(&append("t", "2,z")).is_ok());
            // Dropped without checkpoint: the WAL alone must carry it.
        }
        let (tier, summary) = ShardedSession::open(&opts).unwrap();
        assert_eq!(summary.replayed, 3, "{summary:?}");
        assert_eq!(summary.replay_errors, 0, "{summary:?}");
        let resp = tier.handle(&Request::Count { replica: false });
        assert_eq!(resp.int("violations"), Some(1), "{resp:?}");
        // The boot checkpoint truncated the logs: a second restore
        // leans on the snapshots alone.
        let (tier, summary) = ShardedSession::open(&opts).unwrap();
        assert_eq!(summary.replayed, 0, "{summary:?}");
        assert!(summary.relations > 0, "{summary:?}");
        let resp = tier.handle(&Request::Count { replica: false });
        assert_eq!(resp.int("violations"), Some(1), "{resp:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_count_can_change_across_restarts() {
        let dir = tmp_dir("reshard");
        let mk = |shards: usize| ServeOptions {
            shards,
            wal: true,
            state: Some(dir.clone()),
            ..Default::default()
        };
        {
            let (tier, _) = ShardedSession::open(&mk(1)).unwrap();
            for i in 0..4 {
                assert!(tier
                    .handle(&register(
                        &format!("t{i}"),
                        "a,b\n1,x\n1,y\n",
                        &format!("t{i}([a] -> [b])")
                    ))
                    .is_ok());
            }
        }
        let (tier, summary) = ShardedSession::open(&mk(4)).unwrap();
        assert_eq!(summary.replayed, 4, "{summary:?}");
        assert_eq!(tier.handle(&Request::Count { replica: false }).int("violations"), Some(4));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_flat_state_dir_migrates() {
        let dir = tmp_dir("legacy");
        // A PR 6 layout: session state saved flat into the directory.
        {
            let mut session = DeltaSession::new(1);
            let table = csv::read_table_infer("t", "a,b\n1,x\n1,y\n").unwrap();
            let cfds = parse_cfds("t([a] -> [b])", table.schema()).unwrap();
            session.register(table, cfds).unwrap();
            session.save_state(&dir).unwrap();
        }
        let opts =
            ServeOptions { shards: 2, wal: true, state: Some(dir.clone()), ..Default::default() };
        let (tier, summary) = ShardedSession::open(&opts).unwrap();
        assert_eq!(summary.relations, 1, "{summary:?}");
        assert_eq!(tier.handle(&Request::Count { replica: false }).int("violations"), Some(1));
        drop(tier);
        // The flat files migrated into shard-<i>/ and must not restore
        // twice.
        assert!(!dir.join("t.sdq").exists());
        let (tier, summary) = ShardedSession::open(&opts).unwrap();
        assert_eq!(summary.relations, 1, "{summary:?}");
        assert_eq!(tier.handle(&Request::Count { replica: false }).int("violations"), Some(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cross_shard_cind_is_rejected_with_hint() {
        let (tier, _) =
            ShardedSession::open(&ServeOptions { shards: 4, ..Default::default() }).unwrap();
        // Find two tables routed to *different* shards.
        let names: Vec<String> = (0..16).map(|i| format!("rel{i}")).collect();
        let a = &names[0];
        let b = names.iter().find(|n| tier.route(n) != tier.route(a)).unwrap();
        assert!(tier.handle(&register(a, "x,y\n1,2\n", "")).is_ok());
        assert!(tier.handle(&register(b, "x,y\n1,2\n", "")).is_ok());
        let resp = tier.handle(&Request::Cinds { text: format!("{a}(x) <= {b}(x)") });
        assert!(!resp.is_ok(), "{resp:?}");
        assert!(resp.str("error").unwrap().contains("same shard"), "{resp:?}");
        // Same-shard CINDs still attach (route a to itself).
        let resp = tier.handle(&Request::Cinds { text: format!("{a}(x) <= {a}(y)") });
        assert!(resp.is_ok(), "{resp:?}");
    }

    #[test]
    fn poisoned_shard_lock_recovers() {
        let (tier, _) = ShardedSession::open(&ServeOptions::default()).unwrap();
        assert!(tier.handle(&register("t", "a,b\n1,x\n", "t([a] -> [b])")).is_ok());
        let tier = std::sync::Arc::new(tier);
        let poisoner = std::sync::Arc::clone(&tier);
        // Panic while holding the write lock — the poisoned-lock case
        // the recovery helpers exist for.
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.shard(0).session().write().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(tier.shard(0).session().is_poisoned());
        let resp = tier.handle(&Request::Count { replica: false });
        assert!(resp.is_ok(), "poisoned lock must recover: {resp:?}");
        let resp = tier.handle(&append("t", "1,y"));
        assert!(resp.is_ok(), "{resp:?}");
        assert_eq!(resp.int("violations"), Some(1));
    }
}
