//! Per-job profiling: the `--explain` accumulator and the windowed
//! registry view behind `metrics --watch`.
//!
//! A [`JobProfile`] is a *per-job* (not process-global) accumulator an
//! engine fills while it runs: one [`ConstraintProfile`] row per
//! constraint (or lattice level), plus named phases and job metadata.
//! It is std-only, mergeable across `std::thread::scope` shards with
//! deterministic constraint-order merges, and renders hot-first as text
//! or JSON with exact totals — an explicit `(unattributed)` row makes
//! the per-row wall times sum to the job wall time, so nothing is
//! silently omitted.
//!
//! The windowed side: [`RegistrySnapshot`] copies a whole
//! [`Registry`](crate::Registry) at an instant; a [`SnapshotRing`]
//! keeps the last N timestamped snapshots and renders the delta across
//! a window as rates/sec and windowed p50/p99 (via
//! [`HistogramSnapshot::delta_since`]). [`ProfileRing`] is the serve
//! tier's per-request ring behind the `profile` verb.

use crate::registry::{json_string, HistogramSnapshot, Registry};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One constraint's (or lattice level's) accumulated work. Fields that
/// don't apply to a job kind simply stay zero; renderers skip
/// all-zero columns in text and always emit them in JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstraintProfile {
    /// Stable identity, e.g. `cfd#0 customer([cc, zip] -> [street])`.
    pub name: String,
    /// `cfd`, `cind`, `level`, … — lets consumers filter by row kind.
    pub kind: &'static str,
    /// Live rows the constraint's scan covered (detect).
    pub rows_scanned: u64,
    /// LHS groups probed by the variable pass (detect, native kernel).
    pub groups_probed: u64,
    /// Violations attributed to this constraint.
    pub violations: u64,
    /// Cells changed on this constraint's account (repair).
    pub cells_changed: u64,
    /// Candidates checked at this lattice level (discovery).
    pub candidates_checked: u64,
    /// Candidates pruned at this lattice level (discovery).
    pub candidates_pruned: u64,
    /// `g3` stripped-partition error evaluations (discovery).
    pub g3_evaluations: u64,
    /// Wall microseconds spent building partitions (discovery).
    pub partition_build_us: u64,
    /// Total wall microseconds attributed to this row.
    pub wall_us: u64,
    /// Per-shard wall microseconds, in chunk order, when the row's
    /// work was sharded (`wall_us` is the coordinator-side total; the
    /// shard times overlap in real time).
    pub shard_us: Vec<u64>,
}

impl ConstraintProfile {
    fn add(&mut self, other: &ConstraintProfile) {
        self.rows_scanned += other.rows_scanned;
        self.groups_probed += other.groups_probed;
        self.violations += other.violations;
        self.cells_changed += other.cells_changed;
        self.candidates_checked += other.candidates_checked;
        self.candidates_pruned += other.candidates_pruned;
        self.g3_evaluations += other.g3_evaluations;
        self.partition_build_us += other.partition_build_us;
        self.wall_us += other.wall_us;
        self.shard_us.extend_from_slice(&other.shard_us);
    }
}

/// Per-job profile: what one detect/repair/discover run spent, per
/// constraint and per phase. Built locally by the engine (never via the
/// process-global registry), so concurrent jobs don't bleed into each
/// other.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobProfile {
    /// Job kind: `detect`, `repair`, or `discover`.
    pub job: &'static str,
    /// Engine detail, e.g. `parallel` or `sequential`.
    pub detail: String,
    /// Shard count the job ran with.
    pub shards: u64,
    /// Total job wall time in microseconds (set by [`JobProfile::finish`]).
    pub wall_us: u64,
    /// Job-level integer facts (suite sizes, totals) in insertion order.
    pub meta: Vec<(&'static str, u64)>,
    /// Named phase wall times (repair: detect/resolve/force; discovery:
    /// lattice/constants/vetting/cinds) in insertion order.
    pub phases: Vec<(&'static str, u64)>,
    /// Per-constraint rows in first-touch order (renderers sort
    /// hot-first; merges preserve this order deterministically).
    pub constraints: Vec<ConstraintProfile>,
}

impl JobProfile {
    pub fn new(job: &'static str, detail: impl Into<String>, shards: u64) -> JobProfile {
        JobProfile { job, detail: detail.into(), shards, ..JobProfile::default() }
    }

    /// The row for `name`, created on first touch (kind set then).
    pub fn entry(&mut self, name: &str, kind: &'static str) -> &mut ConstraintProfile {
        if let Some(i) = self.constraints.iter().position(|c| c.name == name) {
            return &mut self.constraints[i];
        }
        self.constraints.push(ConstraintProfile {
            name: name.to_string(),
            kind,
            ..ConstraintProfile::default()
        });
        self.constraints.last_mut().expect("just pushed")
    }

    /// Whether a row named `name` already exists.
    pub fn has(&self, name: &str) -> bool {
        self.constraints.iter().any(|c| c.name == name)
    }

    /// Record a job-level fact (summed if the key repeats).
    pub fn meta_add(&mut self, key: &'static str, v: u64) {
        match self.meta.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => entry.1 += v,
            None => self.meta.push((key, v)),
        }
    }

    /// Look a job-level fact up.
    pub fn meta_get(&self, key: &str) -> Option<u64> {
        self.meta.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Add wall time to a named phase (summed if the phase repeats).
    pub fn phase_add(&mut self, phase: &'static str, us: u64) {
        match self.phases.iter_mut().find(|(p, _)| *p == phase) {
            Some(entry) => entry.1 += us,
            None => self.phases.push((phase, us)),
        }
    }

    /// Fold another profile in: rows merge by constraint name (this
    /// profile's order first, then `other`'s unseen rows in their
    /// order), phases and meta sum by key. Deterministic given
    /// deterministic inputs — the shard-merge primitive.
    pub fn merge(&mut self, other: &JobProfile) {
        for c in &other.constraints {
            match self.constraints.iter_mut().find(|mine| mine.name == c.name) {
                Some(mine) => mine.add(c),
                None => self.constraints.push(c.clone()),
            }
        }
        for (k, v) in &other.meta {
            self.meta_add(k, *v);
        }
        for (p, us) in &other.phases {
            self.phase_add(p, *us);
        }
    }

    /// Close the profile with the job's total wall time. The wall is
    /// clamped to at least the attributed sum: each per-row timer
    /// truncates to whole µs independently of the outer timer, so the
    /// sum may exceed the measured wall by a µs — never report
    /// constraint rows that overflow the job they sum to.
    pub fn finish(&mut self, wall_us: u64) {
        self.wall_us = wall_us.max(self.attributed_us());
    }

    /// Wall microseconds attributed to constraint rows.
    pub fn attributed_us(&self) -> u64 {
        self.constraints.iter().map(|c| c.wall_us).sum()
    }

    /// Wall microseconds not attributed to any row — setup, merging,
    /// report mapping. Reported explicitly so the per-row times plus
    /// this always sum to [`JobProfile::wall_us`] exactly.
    pub fn overhead_us(&self) -> u64 {
        self.wall_us.saturating_sub(self.attributed_us())
    }

    /// Constraint indices sorted hot-first (wall descending, original
    /// order as the deterministic tie-break).
    fn hot_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.constraints.len()).collect();
        idx.sort_by_key(|&i| (std::cmp::Reverse(self.constraints[i].wall_us), i));
        idx
    }

    /// Human-readable explain output, hot-first, totals exact.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{} profile: engine={} shards={} wall={}us\n",
            self.job, self.detail, self.shards, self.wall_us
        );
        if !self.meta.is_empty() {
            out.push_str("  ");
            for (i, (k, v)) in self.meta.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&format!("{k}={v}"));
            }
            out.push('\n');
        }
        if !self.phases.is_empty() {
            out.push_str("  phases:");
            for (p, us) in &self.phases {
                out.push_str(&format!(" {p}={us}us"));
            }
            out.push('\n');
        }
        for i in self.hot_order() {
            let c = &self.constraints[i];
            out.push_str(&format!("  {:>8}us  {}", c.wall_us, c.name));
            let mut detail: Vec<String> = Vec::new();
            for (label, v) in [
                ("rows", c.rows_scanned),
                ("groups", c.groups_probed),
                ("violations", c.violations),
                ("cells_changed", c.cells_changed),
                ("candidates", c.candidates_checked),
                ("pruned", c.candidates_pruned),
                ("g3", c.g3_evaluations),
                ("partition_us", c.partition_build_us),
            ] {
                if v > 0 {
                    detail.push(format!("{label}={v}"));
                }
            }
            if !c.shard_us.is_empty() {
                let shards: Vec<String> = c.shard_us.iter().map(|us| us.to_string()).collect();
                detail.push(format!("shard_us=[{}]", shards.join(",")));
            }
            if !detail.is_empty() {
                out.push_str(&format!("  ({})", detail.join(" ")));
            }
            out.push('\n');
        }
        out.push_str(&format!("  {:>8}us  (unattributed)\n", self.overhead_us()));
        out
    }

    /// Machine-readable explain output: one JSON object, integers only,
    /// every field always present so consumers never probe for keys.
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"job\":{},\"engine\":{},\"shards\":{},\"wall_us\":{},\
             \"attributed_us\":{},\"overhead_us\":{}",
            json_string(self.job),
            json_string(&self.detail),
            self.shards,
            self.wall_us,
            self.attributed_us(),
            self.overhead_us(),
        );
        for (k, v) in &self.meta {
            out.push_str(&format!(",{}:{v}", json_string(k)));
        }
        out.push_str(",\"phases\":[");
        for (i, (p, us)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":{},\"us\":{us}}}", json_string(p)));
        }
        out.push_str("],\"constraints\":[");
        for (n, i) in self.hot_order().into_iter().enumerate() {
            let c = &self.constraints[i];
            if n > 0 {
                out.push(',');
            }
            let shards: Vec<String> = c.shard_us.iter().map(|us| us.to_string()).collect();
            out.push_str(&format!(
                "{{\"name\":{},\"kind\":{},\"wall_us\":{},\"rows_scanned\":{},\
                 \"groups_probed\":{},\"violations\":{},\"cells_changed\":{},\
                 \"candidates_checked\":{},\"candidates_pruned\":{},\
                 \"g3_evaluations\":{},\"partition_build_us\":{},\"shard_us\":[{}]}}",
                json_string(&c.name),
                json_string(c.kind),
                c.wall_us,
                c.rows_scanned,
                c.groups_probed,
                c.violations,
                c.cells_changed,
                c.candidates_checked,
                c.candidates_pruned,
                c.g3_evaluations,
                c.partition_build_us,
                shards.join(","),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// A point-in-time copy of a whole registry, name-ordered. Cheap enough
/// to take every few seconds; two of them bound a window.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// A ring of timestamped [`RegistrySnapshot`]s: push one per poll, then
/// render the delta across a trailing window as rates/sec and windowed
/// quantiles. Drives `semandaq metrics --watch`.
pub struct SnapshotRing {
    cap: usize,
    epoch: Instant,
    entries: VecDeque<(u64, RegistrySnapshot)>,
}

impl SnapshotRing {
    /// A ring holding at most `cap` snapshots (oldest evicted first).
    pub fn new(cap: usize) -> SnapshotRing {
        SnapshotRing { cap: cap.max(2), epoch: Instant::now(), entries: VecDeque::new() }
    }

    /// Snapshot `registry` now and push it.
    pub fn record(&mut self, registry: &Registry) {
        let at_ms = self.epoch.elapsed().as_millis() as u64;
        self.entries.push_back((at_ms, registry.snapshot()));
        while self.entries.len() > self.cap {
            self.entries.pop_front();
        }
    }

    /// Snapshots currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render the delta between the newest snapshot and the oldest one
    /// inside the trailing `window_secs` window: per-counter rates/sec
    /// and per-histogram windowed count, rate, p50/p99 (exact deltas
    /// via [`HistogramSnapshot::delta_since`]). `None` until two
    /// snapshots exist.
    pub fn render_window(&self, window_secs: u64) -> Option<String> {
        let (new_ms, newest) = self.entries.back()?;
        let window_ms = window_secs.max(1) * 1000;
        let (old_ms, oldest) = self
            .entries
            .iter()
            .rev()
            .skip(1)
            .take_while(|(ms, _)| new_ms.saturating_sub(*ms) <= window_ms)
            .last()
            .or_else(|| self.entries.iter().rev().nth(1))?;
        let span_ms = new_ms.saturating_sub(*old_ms).max(1);
        let secs = span_ms as f64 / 1000.0;
        let mut out = format!("window: {:.1}s ({} snapshot(s) held)\n", secs, self.entries.len());
        for (name, now) in &newest.counters {
            let before =
                oldest.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0);
            let delta = now.saturating_sub(before);
            if delta > 0 {
                out.push_str(&format!("{name} +{delta} ({:.1}/s)\n", delta as f64 / secs));
            }
        }
        for (name, now) in &newest.gauges {
            out.push_str(&format!("{name} {now}\n"));
        }
        for (name, now) in &newest.histograms {
            let delta = match oldest.histograms.iter().find(|(n, _)| n == name) {
                Some((_, before)) => now.delta_since(before),
                None => now.clone(),
            };
            if delta.count > 0 {
                out.push_str(&format!(
                    "{name} +{} ({:.1}/s) p50={}us p99={}us\n",
                    delta.count,
                    delta.count as f64 / secs,
                    delta.percentile(0.50),
                    delta.percentile(0.99),
                ));
            }
        }
        Some(out)
    }
}

/// One served request's profile, as the serve tier records it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestProfile {
    /// Monotonic sequence number (1-based, per ring).
    pub seq: u64,
    pub verb: String,
    pub ok: bool,
    pub total_us: u64,
    /// `(phase, us)` in pipeline order; sums to `total_us`.
    pub phases: Vec<(String, u64)>,
}

/// A bounded, thread-safe ring of the last N [`RequestProfile`]s — the
/// storage behind the `profile` serve verb. Pushing is one mutex
/// acquisition per request; the lock recovers from poisoning like every
/// other serve-tier lock.
pub struct ProfileRing {
    cap: usize,
    next_seq: Mutex<u64>,
    entries: Mutex<VecDeque<RequestProfile>>,
}

impl ProfileRing {
    pub fn new(cap: usize) -> ProfileRing {
        ProfileRing {
            cap: cap.max(1),
            next_seq: Mutex::new(0),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Append one request profile (assigns its sequence number).
    pub fn push(&self, verb: &str, ok: bool, total_us: u64, phases: &[(&'static str, u64)]) {
        let seq = {
            let mut next = self.next_seq.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            *next += 1;
            *next
        };
        let profile = RequestProfile {
            seq,
            verb: verb.to_string(),
            ok,
            total_us,
            phases: phases.iter().map(|(p, us)| (p.to_string(), *us)).collect(),
        };
        let mut entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        entries.push_back(profile);
        while entries.len() > self.cap {
            entries.pop_front();
        }
    }

    /// The newest `n` profiles, newest first.
    pub fn last(&self, n: usize) -> Vec<RequestProfile> {
        let entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        entries.iter().rev().take(n).cloned().collect()
    }

    /// The newest `n` profiles as a JSON array (newest first).
    pub fn to_json(&self, n: usize) -> String {
        let mut out = String::from("[");
        for (i, p) in self.last(n).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"verb\":{},\"ok\":{},\"total_us\":{},\"phases\":[",
                p.seq,
                json_string(&p.verb),
                if p.ok { "true" } else { "false" },
                p.total_us
            ));
            for (j, (phase, us)) in p.phases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"name\":{},\"us\":{us}}}", json_string(phase)));
            }
            out.push_str("]}");
        }
        out.push(']');
        out
    }

    /// The newest `n` profiles as text, one request per line.
    pub fn render_text(&self, n: usize) -> String {
        let mut out = String::new();
        for p in self.last(n) {
            out.push_str(&format!(
                "#{} {} {} {}us:",
                p.seq,
                p.verb,
                if p.ok { "ok" } else { "err" },
                p.total_us
            ));
            for (phase, us) in &p.phases {
                out.push_str(&format!(" {phase}={us}us"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobProfile {
        let mut p = JobProfile::new("detect", "native", 1);
        let c = p.entry("cfd#0 r([a] -> [b])", "cfd");
        c.rows_scanned = 100;
        c.groups_probed = 10;
        c.violations = 2;
        c.wall_us = 40;
        let c = p.entry("cfd#1 r([b] -> [c])", "cfd");
        c.rows_scanned = 100;
        c.wall_us = 60;
        p.meta_add("suite_cfds", 2);
        p.phase_add("scan", 95);
        p.finish(120);
        p
    }

    #[test]
    fn totals_are_exact_with_explicit_overhead() {
        let p = sample();
        assert_eq!(p.attributed_us(), 100);
        assert_eq!(p.overhead_us(), 20);
        assert_eq!(p.attributed_us() + p.overhead_us(), p.wall_us);
        let text = p.render_text();
        assert!(text.contains("(unattributed)"), "{text}");
        // Hot-first: the 60us row renders before the 40us row.
        let hot = text.find("cfd#1").unwrap();
        let cold = text.find("cfd#0").unwrap();
        assert!(hot < cold, "{text}");
    }

    #[test]
    fn json_has_every_field_and_is_hot_first() {
        let p = sample();
        let json = p.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"job\":\"detect\"",
            "\"engine\":\"native\"",
            "\"wall_us\":120",
            "\"attributed_us\":100",
            "\"overhead_us\":20",
            "\"suite_cfds\":2",
            "\"rows_scanned\":100",
            "\"groups_probed\":10",
            "\"cells_changed\":0",
            "\"shard_us\":[]",
            "\"phases\":[{\"name\":\"scan\",\"us\":95}]",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.find("cfd#1").unwrap() < json.find("cfd#0").unwrap());
    }

    #[test]
    fn merge_is_deterministic_and_sums_fields() {
        let mut a = JobProfile::new("detect", "parallel", 4);
        a.entry("cfd#0", "cfd").rows_scanned = 50;
        a.entry("cfd#0", "cfd").shard_us.push(7);
        let mut b = JobProfile::new("detect", "parallel", 4);
        b.entry("cfd#0", "cfd").rows_scanned = 50;
        b.entry("cfd#0", "cfd").shard_us.push(9);
        b.entry("cind#0", "cind").rows_scanned = 30;
        b.phase_add("cinds", 5);
        a.merge(&b);
        assert_eq!(a.constraints.len(), 2);
        assert_eq!(a.constraints[0].name, "cfd#0");
        assert_eq!(a.constraints[0].rows_scanned, 100);
        assert_eq!(a.constraints[0].shard_us, vec![7, 9]);
        assert_eq!(a.constraints[1].name, "cind#0");
        assert_eq!(a.phases, vec![("cinds", 5)]);
    }

    #[test]
    fn snapshot_ring_windows_counters_and_histograms() {
        let registry = Registry::new();
        let mut ring = SnapshotRing::new(8);
        registry.counter("ops_total").add(10);
        registry.histogram("op_us").record(100);
        ring.record(&registry);
        assert!(ring.render_window(5).is_none(), "one snapshot is not a window");
        registry.counter("ops_total").add(30);
        for _ in 0..10 {
            registry.histogram("op_us").record(4000);
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        ring.record(&registry);
        let text = ring.render_window(5).expect("two snapshots bound a window");
        assert!(text.contains("ops_total +30"), "{text}");
        assert!(text.contains("op_us +10"), "{text}");
        // Windowed p50 reflects only the window's 4000us records, not
        // the pre-window 100us one.
        let p50_line = text.lines().find(|l| l.starts_with("op_us")).unwrap();
        assert!(p50_line.contains("p50="), "{p50_line}");
        let p50: u64 = p50_line
            .split("p50=")
            .nth(1)
            .and_then(|s| s.split("us").next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!((3000..=5000).contains(&p50), "windowed p50={p50}");
    }

    #[test]
    fn snapshot_ring_evicts_past_cap() {
        let registry = Registry::new();
        let mut ring = SnapshotRing::new(2);
        for _ in 0..5 {
            ring.record(&registry);
        }
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn profile_ring_keeps_last_n_newest_first() {
        let ring = ProfileRing::new(3);
        for i in 0..5u64 {
            ring.push("append", true, 10 + i, &[("parse", 1), ("apply", 9 + i)]);
        }
        let last = ring.last(10);
        assert_eq!(last.len(), 3);
        assert_eq!(last[0].seq, 5);
        assert_eq!(last[2].seq, 3);
        let json = ring.to_json(2);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"seq\":5"), "{json}");
        assert!(json.contains("\"verb\":\"append\""), "{json}");
        assert!(!json.contains("\"seq\":3"), "last(2) must cut at two entries: {json}");
        let text = ring.render_text(1);
        assert!(text.contains("#5 append ok"), "{text}");
        assert!(text.contains("apply="), "{text}");
    }
}
