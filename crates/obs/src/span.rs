//! Lightweight RAII timers and per-request phase accumulation.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use crate::registry::Histogram;
use crate::trace;

/// A scope timer: records elapsed microseconds into a histogram on drop, and
/// (when tracing is enabled and the span was created with [`Span::traced`])
/// also emits a Chrome-trace complete event. Creating a span while the
/// subsystem is disabled costs one relaxed atomic load and nothing on drop.
pub struct Span {
    hist: Option<Arc<Histogram>>,
    trace_name: Option<&'static str>,
    start: Instant,
}

impl Span {
    /// Time a scope into `hist`; no trace event.
    pub fn start(hist: Arc<Histogram>) -> Span {
        if !crate::enabled() {
            return Span::disabled();
        }
        Span { hist: Some(hist), trace_name: None, start: Instant::now() }
    }

    /// Time a scope into `hist` and emit a trace event named `name` when
    /// trace collection is active.
    pub fn traced(name: &'static str, hist: Arc<Histogram>) -> Span {
        let mut span = Span::start(hist);
        span.trace_name = Some(name);
        span
    }

    /// A span that records nothing (the disabled fast path).
    pub fn disabled() -> Span {
        Span { hist: None, trace_name: None, start: Instant::now() }
    }

    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(hist) = self.hist.take() else {
            return;
        };
        let us = self.elapsed_us();
        hist.record(us);
        if let Some(name) = self.trace_name {
            trace::record_at(name, self.start, us);
        }
    }
}

thread_local! {
    /// Per-thread phase accumulator for the serve request path. Bounded by
    /// the number of distinct phase names (each entry is summed in place).
    static PHASES: RefCell<Vec<(&'static str, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Clear the current thread's accumulated phases (start of a request).
pub fn phases_reset() {
    PHASES.with(|p| p.borrow_mut().clear());
}

/// Add `us` microseconds to the named phase on this thread.
pub fn phase_add(name: &'static str, us: u64) {
    PHASES.with(|p| {
        let mut phases = p.borrow_mut();
        if let Some(entry) = phases.iter_mut().find(|(n, _)| *n == name) {
            entry.1 += us;
        } else {
            phases.push((name, us));
        }
    });
}

/// Take (and clear) the phases accumulated on this thread.
pub fn phases_take() -> Vec<(&'static str, u64)> {
    PHASES.with(|p| std::mem::take(&mut *p.borrow_mut()))
}

/// Run `f`, attributing its wall time to the named phase. When the subsystem
/// is disabled this is a direct call with no clock reads.
pub fn time_phase<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    if !crate::enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    phase_add(name, start.elapsed().as_micros() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let _guard =
            crate::TEST_ENABLE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let hist = Arc::new(Histogram::new());
        {
            let _span = Span::start(Arc::clone(&hist));
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(hist.count(), 1);
        assert!(hist.max() >= 1000, "expected >= 1ms, got {}us", hist.max());
    }

    #[test]
    fn disabled_span_records_nothing() {
        let span = Span::disabled();
        assert!(span.hist.is_none());
        drop(span);
    }

    #[test]
    fn phases_accumulate_and_take_resets() {
        phases_reset();
        phase_add("apply", 10);
        phase_add("apply", 5);
        phase_add("wal_append", 7);
        let mut phases = phases_take();
        phases.sort();
        assert_eq!(phases, vec![("apply", 15), ("wal_append", 7)]);
        assert!(phases_take().is_empty());
    }

    #[test]
    fn time_phase_attributes_wall_time() {
        let _guard =
            crate::TEST_ENABLE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        phases_reset();
        let out = time_phase("work", || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(out, 42);
        let phases = phases_take();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].0, "work");
        assert!(phases[0].1 >= 1000);
    }
}
