//! Chrome-trace-format event collection.
//!
//! When enabled, instrumented scopes append "complete" (`"ph":"X"`) events to
//! a global buffer; [`write_to`] drains the buffer into a JSON array file
//! loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//! Each event is written as one flat JSON object per line so the file can be
//! spot-validated line-by-line with the workspace's own JSON-subset parser.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::registry::json_string;

/// Cap on buffered events; beyond this, events are counted as dropped rather
/// than growing the buffer without bound on long-lived servers.
const MAX_EVENTS: usize = 1_000_000;

struct TraceEvent {
    name: String,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Begin collecting trace events (idempotent). The first call pins the trace
/// epoch; event timestamps are microseconds since that instant.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ACTIVE.store(true, Ordering::Release);
}

/// Whether trace collection is currently active.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// Record a completed scope that started at `start` and ran for `dur_us`.
/// A no-op unless [`enable`] has been called.
pub fn record_at(name: &str, start: Instant, dur_us: u64) {
    if !active() {
        return;
    }
    let epoch = EPOCH.get_or_init(Instant::now);
    let ts_us = start.checked_duration_since(*epoch).map(|d| d.as_micros() as u64).unwrap_or(0);
    let tid = TID.with(|t| *t);
    let mut events = EVENTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if events.len() >= MAX_EVENTS {
        crate::global().counter("trace_events_dropped_total").inc();
        return;
    }
    events.push(TraceEvent { name: name.to_string(), ts_us, dur_us, tid });
}

/// Drain the buffered events into `path` as a Chrome-trace JSON array.
/// Returns the number of events written. Collection stays active.
pub fn write_to(path: &Path) -> std::io::Result<usize> {
    let events =
        std::mem::take(&mut *EVENTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "[")?;
    for (i, ev) in events.iter().enumerate() {
        let comma = if i + 1 < events.len() { "," } else { "" };
        writeln!(
            out,
            "{{\"name\":{},\"cat\":\"revival\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}{comma}",
            json_string(&ev.name),
            ev.ts_us,
            ev.dur_us,
            ev.tid
        )?;
    }
    writeln!(out, "]")?;
    out.flush()?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_a_file() {
        enable();
        assert!(active());
        record_at("unit.scope", Instant::now(), 123);
        record_at("unit.\"quoted\"", Instant::now(), 7);
        let path = std::env::temp_dir().join(format!("obs-trace-{}.json", std::process::id()));
        let written = write_to(&path).expect("write trace");
        assert!(written >= 2);
        let body = std::fs::read_to_string(&path).expect("read trace");
        let trimmed = body.trim();
        assert!(trimmed.starts_with('[') && trimmed.ends_with(']'));
        assert!(body.contains("\"ph\":\"X\""));
        assert!(body.contains("\"name\":\"unit.scope\""));
        assert!(body.contains("\\\"quoted\\\""));
        // Draining empties the buffer: a second write holds no stale events.
        let again = write_to(&path).expect("write empty trace");
        assert_eq!(again, 0);
        std::fs::remove_file(&path).ok();
    }
}
