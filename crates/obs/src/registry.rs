//! Process-global registry of named counters, gauges, and latency histograms.
//!
//! All instruments are atomic and lock-free on the hot path: the registry's
//! `RwLock<BTreeMap>` is only taken when an instrument handle is first looked
//! up (callers cache the returned `Arc`) or when the registry is exported.
//!
//! Naming convention: Prometheus-style labels are embedded in the instrument
//! name, e.g. `serve_request_us{verb="append"}`. The text exposition splits
//! the name at the first `{` so `name_count{labels}`-style lines stay valid.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge { value: AtomicI64::new(0) }
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of exact low-value buckets: values `0..LINEAR` each get their own.
const LINEAR: usize = 8;
/// Sub-buckets per octave above the linear range (log-linear layout).
const SUB: usize = 4;
const SUB_BITS: u32 = 2;
/// Octaves covered above the linear range; 38 octaves starting at 2^3 reach
/// past 2^41 microseconds (~25 days), far beyond any latency we record.
const OCTAVES: usize = 38;
/// Total bucket count.
pub const BUCKETS: usize = LINEAR + OCTAVES * SUB;

fn bucket_index(v: u64) -> usize {
    if v < LINEAR as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize;
    if octave >= 3 + OCTAVES {
        return BUCKETS - 1;
    }
    LINEAR + (octave - 3) * SUB + ((v >> (octave as u32 - SUB_BITS)) & (SUB as u64 - 1)) as usize
}

fn bucket_lower(i: usize) -> u64 {
    if i < LINEAR {
        return i as u64;
    }
    let block = (i - LINEAR) / SUB;
    let rem = ((i - LINEAR) % SUB) as u64;
    let octave = (block + 3) as u32;
    (1u64 << octave) + rem * (1u64 << (octave - SUB_BITS))
}

fn bucket_upper(i: usize) -> u64 {
    if i + 1 < BUCKETS {
        bucket_lower(i + 1) - 1
    } else {
        u64::MAX
    }
}

/// Fixed-bucket log-linear latency histogram (microsecond-valued by
/// convention). Recording is a single relaxed `fetch_add` into one of 160
/// buckets plus count/sum/max updates; the relative error of any reported
/// quantile is bounded by the sub-bucket width (< 25%).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Quantile estimate (upper bound of the containing bucket, clamped to
    /// the observed maximum). `q` is in `0.0..=1.0`.
    pub fn percentile(&self, q: f64) -> u64 {
        self.snapshot().percentile(q)
    }

    /// A point-in-time copy of the histogram state, usable for deltas.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

/// Immutable copy of a [`Histogram`]; supports quantiles and snapshot deltas
/// (used by the bench harness to isolate one run's fsync latencies from the
/// process-global cumulative state).
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    /// Bucket-wise difference `self - earlier`. Both snapshots must come from
    /// the same histogram, with `earlier` taken first.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Named instrument store. Use [`crate::global`] for the process-wide
/// instance; tests may build private registries.
pub struct Registry {
    instruments: RwLock<BTreeMap<String, Instrument>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    pub const fn new() -> Self {
        Registry { instruments: RwLock::new(BTreeMap::new()) }
    }

    fn lookup<T, F, G>(&self, name: &str, get: F, make: G) -> Arc<T>
    where
        F: Fn(&Instrument) -> Option<Arc<T>>,
        G: Fn(Arc<T>) -> Instrument,
        T: Default,
    {
        if let Some(found) = self
            .instruments
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(name)
            .and_then(&get)
        {
            return found;
        }
        let mut map = self.instruments.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(found) = map.get(name).and_then(&get) {
            return found;
        }
        let fresh = Arc::new(T::default());
        map.insert(name.to_string(), make(Arc::clone(&fresh)));
        fresh
    }

    /// Fetch or create the counter with this name. Panics only if the name is
    /// already registered as a different instrument kind (a programming bug).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.lookup(
            name,
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => panic!("metric `{name}` is not a counter"),
            },
            Instrument::Counter,
        )
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.lookup(
            name,
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => panic!("metric `{name}` is not a gauge"),
            },
            Instrument::Gauge,
        )
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.lookup(
            name,
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => panic!("metric `{name}` is not a histogram"),
            },
            Instrument::Histogram,
        )
    }

    /// Export the registry as a JSON object with integer-only values:
    /// `{"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,"sum":..,"max":..,"p50":..,"p99":..}}}`.
    pub fn to_json(&self) -> String {
        let map = self.instruments.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        for (name, inst) in map.iter() {
            match inst {
                Instrument::Counter(c) => {
                    push_sep(&mut counters);
                    counters.push_str(&format!("{}:{}", json_string(name), c.get()));
                }
                Instrument::Gauge(g) => {
                    push_sep(&mut gauges);
                    gauges.push_str(&format!("{}:{}", json_string(name), g.get()));
                }
                Instrument::Histogram(h) => {
                    push_sep(&mut hists);
                    let snap = h.snapshot();
                    hists.push_str(&format!(
                        "{}:{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
                        json_string(name),
                        snap.count,
                        snap.sum,
                        snap.max,
                        snap.percentile(0.50),
                        snap.percentile(0.99),
                    ));
                }
            }
        }
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{hists}}}}}"
        )
    }

    /// Copy every instrument's current value into a
    /// [`crate::RegistrySnapshot`] (name-ordered; histograms keep their
    /// full buckets so windowed quantiles stay exact).
    pub fn snapshot(&self) -> crate::RegistrySnapshot {
        let map = self.instruments.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut snap = crate::RegistrySnapshot::default();
        for (name, inst) in map.iter() {
            match inst {
                Instrument::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Instrument::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Instrument::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }

    /// Render Prometheus-style text exposition. Histograms are rendered as
    /// summaries: `name_count`, `name_sum`, `name_max`, and `quantile` lines;
    /// every metric family gets `# HELP` and `# TYPE` headers.
    pub fn render_text(&self) -> String {
        let map = self.instruments.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, inst) in map.iter() {
            let (base, labels) = split_labels(name);
            if base != last_base {
                let kind = match inst {
                    Instrument::Counter(_) => "counter",
                    Instrument::Gauge(_) => "gauge",
                    Instrument::Histogram(_) => "summary",
                };
                out.push_str(&format!("# HELP {base} {}\n", help_text(base, kind)));
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_base = base.to_string();
            }
            match inst {
                Instrument::Counter(c) => {
                    out.push_str(&format!("{base}{labels} {}\n", c.get()));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!("{base}{labels} {}\n", g.get()));
                }
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    out.push_str(&format!("{base}_count{labels} {}\n", snap.count));
                    out.push_str(&format!("{base}_sum{labels} {}\n", snap.sum));
                    out.push_str(&format!("{base}_max{labels} {}\n", snap.max));
                    for (q, tag) in [(0.50, "0.5"), (0.99, "0.99")] {
                        let quantile = format!("quantile=\"{tag}\"");
                        let labelled = if labels.is_empty() {
                            format!("{{{quantile}}}")
                        } else {
                            format!("{},{quantile}}}", &labels[..labels.len() - 1])
                        };
                        out.push_str(&format!("{base}{labelled} {}\n", snap.percentile(q)));
                    }
                }
            }
        }
        out
    }
}

fn push_sep(buf: &mut String) {
    if !buf.is_empty() {
        buf.push(',');
    }
}

/// One-line `# HELP` text for a metric family, derived from the naming
/// convention (`*_total` counters, `*_us` microsecond latencies): there
/// is no side-channel help registry, so the name is the documentation.
fn help_text(base: &str, kind: &str) -> String {
    if let Some(stem) = base.strip_suffix("_total") {
        format!("Cumulative count of {} events.", stem.replace('_', " "))
    } else if let Some(stem) = base.strip_suffix("_us") {
        format!("Latency of {} in microseconds.", stem.replace('_', " "))
    } else {
        format!("Current {} value of {}.", kind, base.replace('_', " "))
    }
}

/// Split `name{labels}` into `("name", "{labels}")`; labels may be empty.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Minimal JSON string encoder (the workspace has no serde).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_maths_are_continuous_and_monotone() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(7), 7);
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(16), 12);
        let mut last = 0usize;
        for v in 0..100_000u64 {
            let i = bucket_index(v);
            assert!(i >= last, "index must be monotone at {v}");
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v={v} i={i}");
            last = i;
        }
        // Overflow values clamp to the last bucket rather than indexing out.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let registry = Registry::new();
        let counter = registry.counter("t_total");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
        assert_eq!(registry.counter("t_total").get(), 80_000);
    }

    #[test]
    fn concurrent_histogram_records_count_exactly() {
        let hist = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &hist;
                scope.spawn(move || {
                    for i in 0..25_000u64 {
                        h.record(t * 7 + i % 100);
                    }
                });
            }
        });
        assert_eq!(hist.count(), 100_000);
    }

    #[test]
    fn histogram_percentile_bounds() {
        let hist = Histogram::new();
        for v in 1..=1000u64 {
            hist.record(v);
        }
        assert_eq!(hist.count(), 1000);
        assert_eq!(hist.sum(), 500_500);
        assert_eq!(hist.max(), 1000);
        let p50 = hist.percentile(0.50);
        let p99 = hist.percentile(0.99);
        // True p50 = 500, p99 = 990; bucket error is bounded by 25%.
        assert!((375..=625).contains(&p50), "p50={p50}");
        assert!((743..=1238).contains(&p99), "p99={p99}");
        assert!(p50 <= p99);
        // p100 is clamped to the observed max, never a bucket bound above it.
        assert_eq!(hist.percentile(1.0), 1000);
    }

    #[test]
    fn snapshot_delta_isolates_a_window() {
        let hist = Histogram::new();
        for _ in 0..100 {
            hist.record(5);
        }
        let before = hist.snapshot();
        for _ in 0..50 {
            hist.record(4000);
        }
        let delta = hist.snapshot().delta_since(&before);
        assert_eq!(delta.count, 50);
        assert_eq!(delta.sum, 50 * 4000);
        let p50 = delta.percentile(0.5);
        assert!((3000..=5000).contains(&p50), "delta p50={p50}");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let registry = Registry::new();
        let gauge = registry.gauge("g");
        gauge.set(7);
        gauge.add(-10);
        assert_eq!(gauge.get(), -3);
    }

    #[test]
    fn json_and_text_exposition_render() {
        let registry = Registry::new();
        registry.counter("req_total{verb=\"append\"}").add(3);
        registry.gauge("stale_ops").set(2);
        let hist = registry.histogram("req_us{verb=\"append\"}");
        hist.record(100);
        hist.record(200);

        let json = registry.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"req_total{verb=\\\"append\\\"}\":3"));
        assert!(json.contains("\"stale_ops\":2"));
        assert!(json.contains("\"count\":2"));
        assert!(json.contains("\"p50\":"));

        let text = registry.render_text();
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{verb=\"append\"} 3"));
        assert!(text.contains("# TYPE req_us summary"));
        assert!(text.contains("req_us_count{verb=\"append\"} 2"));
        assert!(text.contains("req_us_sum{verb=\"append\"} 300"));
        assert!(text.contains("req_us{verb=\"append\",quantile=\"0.5\"}"));
        assert!(text.contains("# TYPE stale_ops gauge"));
        assert!(text.contains("stale_ops 2"));
        // Every family gets exactly one HELP line, directly above TYPE.
        assert!(text.contains("# HELP req_total Cumulative count of req events.\n# TYPE"));
        assert!(text.contains("# HELP req_us Latency of req in microseconds.\n# TYPE"));
        assert!(text.contains("# HELP stale_ops Current gauge value of stale ops.\n# TYPE"));
    }

    #[test]
    fn snapshot_copies_every_instrument() {
        let registry = Registry::new();
        registry.counter("snap_total").add(4);
        registry.gauge("snap_gauge").set(-2);
        registry.histogram("snap_us").record(99);
        let snap = registry.snapshot();
        assert_eq!(snap.counters, vec![("snap_total".to_string(), 4)]);
        assert_eq!(snap.gauges, vec![("snap_gauge".to_string(), -2)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].0, "snap_us");
        assert_eq!(snap.histograms[0].1.count, 1);
        assert_eq!(snap.histograms[0].1.sum, 99);
    }

    #[test]
    fn unlabelled_histogram_quantile_lines_are_well_formed() {
        let registry = Registry::new();
        registry.histogram("solo_us").record(42);
        let text = registry.render_text();
        assert!(text.contains("solo_us_count 1"));
        assert!(text.contains("solo_us{quantile=\"0.5\"} "));
    }
}
