//! `revival_obs` — std-only observability for the revival workspace.
//!
//! Three pieces, all dependency-free:
//!
//! * [`Registry`] — a process-global store of named [`Counter`]s, [`Gauge`]s,
//!   and fixed-bucket log-scale [`Histogram`]s. Instruments are atomic and
//!   lock-free on the hot path; the registry lock is only taken on first
//!   lookup (handles are cached `Arc`s) and on export. Exports as integer-only
//!   JSON ([`Registry::to_json`]) and Prometheus-style text
//!   ([`Registry::render_text`]).
//! * [`Span`] — RAII timers that record elapsed microseconds into a histogram
//!   on drop, plus a thread-local per-request phase accumulator
//!   ([`time_phase`] / [`phases_take`]) used by the serve tier to split
//!   requests into parse → route → lock-wait → apply → WAL-append → ack.
//! * [`trace`] — optional Chrome-trace-format event collection
//!   (`--trace-out FILE`), loadable in `chrome://tracing` or Perfetto.
//! * [`JobProfile`] — a per-job (not process-global) accumulator behind
//!   `--explain`: per-constraint work and wall time with deterministic
//!   shard merges and exact totals; [`SnapshotRing`] / [`ProfileRing`]
//!   are the windowed registry view (`metrics --watch`) and the serve
//!   tier's last-N request profiles (`profile` verb).
//!
//! Label convention: Prometheus labels are embedded in the instrument name,
//! e.g. `serve_request_us{verb="append"}`; the text exposition splits the
//! name at the first `{` so rendered lines stay valid Prometheus.
//!
//! The whole subsystem can be switched off with [`set_enabled`]; disabled
//! spans cost one relaxed atomic load, and engine instrumentation flushes
//! local tallies only when enabled, so parity-critical code paths stay
//! byte-identical either way.

mod profile;
mod registry;
mod span;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

pub use profile::{
    ConstraintProfile, JobProfile, ProfileRing, RegistrySnapshot, RequestProfile, SnapshotRing,
};
pub use registry::{json_string, Counter, Gauge, Histogram, HistogramSnapshot, Registry, BUCKETS};
pub use span::{phase_add, phases_reset, phases_take, time_phase, Span};

static GLOBAL: Registry = Registry::new();
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Serialises tests that read or flip the global enabled flag.
#[cfg(test)]
pub(crate) static TEST_ENABLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The process-global registry.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Whether instrumentation is currently collected (default: yes).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable collection. Disabling does not clear anything
/// already recorded; it only stops new spans/phases from reading clocks.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_hands_out_shared_instruments() {
        let a = global().counter("lib_smoke_total");
        let b = global().counter("lib_smoke_total");
        a.inc();
        b.add(2);
        assert_eq!(global().counter("lib_smoke_total").get(), 3);
    }

    #[test]
    fn disabled_spans_skip_recording() {
        let _guard = TEST_ENABLE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let hist = global().histogram("lib_disabled_us");
        set_enabled(false);
        drop(Span::start(std::sync::Arc::clone(&hist)));
        set_enabled(true);
        assert_eq!(hist.count(), 0);
        drop(Span::start(hist));
        assert_eq!(global().histogram("lib_disabled_us").count(), 1);
    }
}
