//! Property tests for the `.sdq` snapshot format: encode/decode must
//! round-trip any reachable table state — including tombstoned slots
//! and delete-then-append churn that fragments the value pool — and
//! decoding arbitrary corruption must return [`Error::Snapshot`],
//! never panic.

use proptest::prelude::*;
use revival_relation::{Error, Schema, Table, TupleId, Type, Value};

fn schema() -> Schema {
    Schema::builder("r").attr("a", Type::Str).attr("b", Type::Int).attr("c", Type::Str).build()
}

#[derive(Clone, Debug)]
enum Op {
    Push(String, i64, String),
    /// Delete the `n % live`-th live tuple (no-op on an empty table).
    Delete(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            ("[a-e]{1,3}", -5i64..6, "[x-z]{0,2}").prop_map(|(a, b, c)| Op::Push(a, b, c)),
            ("[a-e]{1,3}", -5i64..6, "[x-z]{0,2}").prop_map(|(a, b, c)| Op::Push(a, b, c)),
            ("[a-e]{1,3}", -5i64..6, "[x-z]{0,2}").prop_map(|(a, b, c)| Op::Push(a, b, c)),
            (0usize..16).prop_map(Op::Delete),
        ],
        0..40,
    )
}

/// Replay `ops` against a fresh table. Interleaved deletes and pushes
/// leave tombstoned slots and a pool holding values no live row
/// references — exactly what snapshot compaction has to cope with.
fn build(ops: &[Op]) -> Table {
    let mut t = Table::new(schema());
    for op in ops {
        match op {
            Op::Push(a, b, c) => {
                t.push(vec![a.as_str().into(), Value::Int(*b), c.as_str().into()]).unwrap();
            }
            Op::Delete(n) => {
                let live: Vec<TupleId> = t.rows().map(|(id, _)| id).collect();
                if !live.is_empty() {
                    t.delete(live[n % live.len()]).unwrap();
                }
            }
        }
    }
    t
}

proptest! {
    /// Decoding an encoded table reproduces every live row in order.
    /// Tuple ids are compared too: tombstones are kept in the file, so
    /// slot numbering survives the round trip.
    #[test]
    fn roundtrip_preserves_live_rows(ops in arb_ops()) {
        let table = build(&ops);
        let decoded = Table::decode_snapshot(&table.snapshot_bytes()).unwrap();
        prop_assert_eq!(decoded.schema(), table.schema());
        prop_assert_eq!(decoded.len(), table.len());
        let orig: Vec<(TupleId, Vec<Value>)> = table.rows().collect();
        let back: Vec<(TupleId, Vec<Value>)> = decoded.rows().collect();
        prop_assert_eq!(back, orig);
    }

    /// A decoded snapshot is a live table, not a frozen one: appending
    /// after the round trip behaves exactly like appending to the
    /// original, even when the pool was compacted on the way out.
    #[test]
    fn roundtrip_then_append(ops in arb_ops(), a in "[a-e]{1,3}", b in -5i64..6) {
        let mut table = build(&ops);
        let mut decoded = Table::decode_snapshot(&table.snapshot_bytes()).unwrap();
        let row = vec![a.as_str().into(), Value::Int(b), "q".into()];
        let id0 = table.push(row.clone()).unwrap();
        let id1 = decoded.push(row.clone()).unwrap();
        prop_assert_eq!(id1, id0);
        prop_assert_eq!(decoded.get(id1).unwrap(), row);
        let orig: Vec<Vec<Value>> = table.rows().map(|(_, r)| r).collect();
        let back: Vec<Vec<Value>> = decoded.rows().map(|(_, r)| r).collect();
        prop_assert_eq!(back, orig);
    }

    /// Flipping any single byte either still decodes (the flip may hit
    /// slack the checksum doesn't guard, e.g. itself) or fails with a
    /// typed error — it must never panic or loop.
    #[test]
    fn corrupt_byte_never_panics(ops in arb_ops(), pos in 0usize..4096, flip in 1u8..=255) {
        let mut bytes = build(&ops).snapshot_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        match Table::decode_snapshot(&bytes) {
            Ok(_) | Err(Error::Snapshot { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e:?}"),
        }
    }

    /// Every proper prefix of a valid snapshot is rejected with a typed
    /// error carrying an offset inside the file.
    #[test]
    fn truncation_is_a_typed_error(ops in arb_ops(), cut in 0usize..4096) {
        let bytes = build(&ops).snapshot_bytes();
        let cut = cut % bytes.len();
        match Table::decode_snapshot(&bytes[..cut]) {
            Err(Error::Snapshot { offset, .. }) => prop_assert!(offset <= bytes.len()),
            other => prop_assert!(false, "cut at {cut}: expected Error::Snapshot, got {other:?}"),
        }
    }
}
