//! Edge-case coverage for the SQL engine: NULL handling, empty inputs,
//! operator corner cases, and planner error reporting.

use revival_relation::sql;
use revival_relation::{Catalog, Schema, Table, Type, Value};

fn catalog_with_nulls() -> Catalog {
    let s = Schema::builder("r").attr("a", Type::Str).attr("b", Type::Int).build();
    let mut t = Table::new(s);
    t.push(vec!["x".into(), Value::Int(1)]).unwrap();
    t.push(vec![Value::Null, Value::Int(2)]).unwrap();
    t.push(vec!["y".into(), Value::Null]).unwrap();
    t.push(vec![Value::Null, Value::Null]).unwrap();
    let mut c = Catalog::new();
    c.register(t);
    c
}

#[test]
fn null_never_equals_anything_in_where() {
    let cat = catalog_with_nulls();
    // a = a is false for NULL rows (SQL-style comparison semantics).
    let rs = sql::run("SELECT * FROM r WHERE a = a", &cat).unwrap();
    assert_eq!(rs.len(), 2);
    let rs = sql::run("SELECT * FROM r WHERE a <> 'x'", &cat).unwrap();
    assert_eq!(rs.len(), 1, "NULLs don't satisfy <> either");
}

#[test]
fn is_null_and_is_not_null() {
    let cat = catalog_with_nulls();
    let rs = sql::run("SELECT * FROM r WHERE a IS NULL", &cat).unwrap();
    assert_eq!(rs.len(), 2);
    let rs = sql::run("SELECT * FROM r WHERE a IS NOT NULL AND b IS NULL", &cat).unwrap();
    assert_eq!(rs.len(), 1);
}

#[test]
fn aggregates_skip_nulls() {
    let cat = catalog_with_nulls();
    let rs =
        sql::run("SELECT COUNT(*), COUNT(b), SUM(b), MIN(b), MAX(b), AVG(b) FROM r", &cat).unwrap();
    let row = &rs.rows[0];
    assert_eq!(row[0], Value::Int(4)); // COUNT(*) counts rows
    assert_eq!(row[1], Value::Int(2)); // COUNT(b) skips NULLs
    assert_eq!(row[2], Value::Int(3)); // SUM over non-NULLs
    assert_eq!(row[3], Value::Int(1));
    assert_eq!(row[4], Value::Int(2));
    assert_eq!(row[5], Value::Float(1.5));
}

#[test]
fn aggregates_over_empty_table() {
    let s = Schema::builder("e").attr("x", Type::Int).build();
    let mut cat = Catalog::new();
    cat.register(Table::new(s));
    let rs = sql::run("SELECT COUNT(*), SUM(x), MIN(x), AVG(x) FROM e", &cat).unwrap();
    let row = &rs.rows[0];
    assert_eq!(row[0], Value::Int(0));
    assert!(row[1].is_null());
    assert!(row[2].is_null());
    assert!(row[3].is_null());
    // GROUP BY over empty input yields no groups.
    let rs = sql::run("SELECT x, COUNT(*) FROM e GROUP BY x", &cat).unwrap();
    assert!(rs.is_empty());
}

#[test]
fn join_null_keys_never_match() {
    let s1 = Schema::builder("l").attr("k", Type::Str).build();
    let s2 = Schema::builder("rr").attr("k", Type::Str).build();
    let mut l = Table::new(s1);
    l.push(vec![Value::Null]).unwrap();
    l.push(vec!["x".into()]).unwrap();
    let mut r = Table::new(s2);
    r.push(vec![Value::Null]).unwrap();
    r.push(vec!["x".into()]).unwrap();
    let mut cat = Catalog::new();
    cat.register(l);
    cat.register(r);
    let rs = sql::run("SELECT COUNT(*) FROM l JOIN rr ON l.k = rr.k", &cat).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(1)), "NULL join keys must not match");
}

#[test]
fn limit_zero_and_large() {
    let cat = catalog_with_nulls();
    assert!(sql::run("SELECT * FROM r LIMIT 0", &cat).unwrap().is_empty());
    assert_eq!(sql::run("SELECT * FROM r LIMIT 999", &cat).unwrap().len(), 4);
}

#[test]
fn order_by_puts_nulls_first() {
    // Total order on Value places Null lowest.
    let cat = catalog_with_nulls();
    let rs = sql::run("SELECT b FROM r ORDER BY b", &cat).unwrap();
    assert!(rs.rows[0][0].is_null());
    assert!(rs.rows[1][0].is_null());
    assert_eq!(rs.rows[2][0], Value::Int(1));
}

#[test]
fn planner_error_messages_name_the_problem() {
    let cat = catalog_with_nulls();
    let err = sql::run("SELECT nope FROM r", &cat).unwrap_err().to_string();
    assert!(err.contains("nope"), "got {err}");
    let err = sql::run("SELECT * FROM missing", &cat).unwrap_err().to_string();
    assert!(err.contains("missing"), "got {err}");
    let err =
        sql::run("SELECT a FROM r HAVING COUNT(*) > 1 GROUP BY a", &cat).unwrap_err().to_string();
    assert!(!err.is_empty()); // HAVING before GROUP BY is a parse error
    let err = sql::run("SELECT COUNT(*) FROM r WHERE COUNT(*) > 1", &cat).unwrap_err().to_string();
    assert!(err.contains("WHERE"), "got {err}");
}

#[test]
fn string_like_escaping_through_pipeline() {
    let s = Schema::builder("q").attr("t", Type::Str).build();
    let mut t = Table::new(s);
    t.push(vec!["100% sure".into()]).unwrap();
    t.push(vec!["it's fine".into()]).unwrap();
    let mut cat = Catalog::new();
    cat.register(t);
    // Quote escaping in literals.
    let rs = sql::run("SELECT * FROM q WHERE t = 'it''s fine'", &cat).unwrap();
    assert_eq!(rs.len(), 1);
    // LIKE with a literal % prefix (matches both rows by wildcard).
    let rs = sql::run("SELECT * FROM q WHERE t LIKE '100%'", &cat).unwrap();
    assert_eq!(rs.len(), 1);
}

#[test]
fn not_in_with_nulls() {
    let cat = catalog_with_nulls();
    // NULL IN (...) is false, so NOT IN is true for NULLs under our
    // boolean (not three-valued) semantics — documented behavior.
    let rs = sql::run("SELECT * FROM r WHERE a NOT IN ('x')", &cat).unwrap();
    assert_eq!(rs.len(), 3);
}

#[test]
fn multi_join_three_tables() {
    let sa = Schema::builder("a").attr("k", Type::Int).build();
    let sb = Schema::builder("b").attr("k", Type::Int).attr("m", Type::Int).build();
    let sc = Schema::builder("c").attr("m", Type::Int).build();
    let mut a = Table::new(sa);
    let mut b = Table::new(sb);
    let mut c = Table::new(sc);
    for i in 0..3i64 {
        a.push(vec![Value::Int(i)]).unwrap();
        b.push(vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
        c.push(vec![Value::Int(i * 10)]).unwrap();
    }
    let mut cat = Catalog::new();
    cat.register(a);
    cat.register(b);
    cat.register(c);
    let rs =
        sql::run("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k JOIN c ON b.m = c.m", &cat).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(3)));
}
