//! Property tests pitting the SQL engine against naive in-process
//! evaluation (an oracle that shares no code with the planner/executor).

use proptest::prelude::*;
use revival_relation::sql;
use revival_relation::{Catalog, Schema, Table, Type, Value};
use std::collections::{BTreeMap, BTreeSet};

fn schema() -> Schema {
    Schema::builder("r").attr("a", Type::Str).attr("b", Type::Int).attr("c", Type::Str).build()
}

#[derive(Clone, Debug)]
struct Row {
    a: String,
    b: i64,
    c: String,
}

fn catalog(rows: &[Row]) -> Catalog {
    let mut t = Table::new(schema());
    for r in rows {
        t.push(vec![r.a.as_str().into(), Value::Int(r.b), r.c.as_str().into()]).unwrap();
    }
    let mut cat = Catalog::new();
    cat.register(t);
    cat
}

fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        ("[a-c]{1}", -3i64..4, "[x-z]{1}").prop_map(|(a, b, c)| Row { a, b, c }),
        0..20,
    )
}

/// A random WHERE clause with its oracle predicate.
#[derive(Clone, Debug)]
enum Pred {
    AEq(String),
    BLt(i64),
    BGe(i64),
    CNe(String),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

impl Pred {
    fn to_sql(&self) -> String {
        match self {
            Pred::AEq(v) => format!("a = '{v}'"),
            Pred::BLt(n) => format!("b < {n}"),
            Pred::BGe(n) => format!("b >= {n}"),
            Pred::CNe(v) => format!("c <> '{v}'"),
            Pred::And(x, y) => format!("({} AND {})", x.to_sql(), y.to_sql()),
            Pred::Or(x, y) => format!("({} OR {})", x.to_sql(), y.to_sql()),
            Pred::Not(x) => format!("(NOT {})", x.to_sql()),
        }
    }

    fn eval(&self, r: &Row) -> bool {
        match self {
            Pred::AEq(v) => r.a == *v,
            Pred::BLt(n) => r.b < *n,
            Pred::BGe(n) => r.b >= *n,
            Pred::CNe(v) => r.c != *v,
            Pred::And(x, y) => x.eval(r) && y.eval(r),
            Pred::Or(x, y) => x.eval(r) || y.eval(r),
            Pred::Not(x) => !x.eval(r),
        }
    }
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        "[a-c]{1}".prop_map(Pred::AEq),
        (-3i64..4).prop_map(Pred::BLt),
        (-3i64..4).prop_map(Pred::BGe),
        "[x-z]{1}".prop_map(Pred::CNe),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Pred::And(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Pred::Or(Box::new(x), Box::new(y))),
            inner.prop_map(|x| Pred::Not(Box::new(x))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary boolean WHERE clauses filter exactly like the oracle.
    #[test]
    fn where_clause_matches_oracle(rows in arb_rows(), pred in arb_pred()) {
        let cat = catalog(&rows);
        let q = format!("SELECT a, b, c FROM r WHERE {}", pred.to_sql());
        let rs = sql::run(&q, &cat).unwrap();
        let expected: Vec<&Row> = rows.iter().filter(|r| pred.eval(r)).collect();
        prop_assert_eq!(rs.len(), expected.len());
        for (got, want) in rs.rows.iter().zip(&expected) {
            prop_assert_eq!(got[0].as_str().unwrap(), want.a.as_str());
            prop_assert_eq!(got[1].as_int().unwrap(), want.b);
            prop_assert_eq!(got[2].as_str().unwrap(), want.c.as_str());
        }
    }

    /// GROUP BY aggregates agree with hand-rolled accumulation.
    #[test]
    fn group_by_matches_oracle(rows in arb_rows()) {
        let cat = catalog(&rows);
        let rs = sql::run(
            "SELECT a, COUNT(*) AS n, SUM(b) AS s, MIN(b) AS lo, MAX(b) AS hi, \
             COUNT(DISTINCT c) AS dc FROM r GROUP BY a ORDER BY a",
            &cat,
        )
        .unwrap();
        // Oracle.
        let mut groups: BTreeMap<&str, (i64, i64, i64, i64, BTreeSet<&str>)> = BTreeMap::new();
        for r in &rows {
            let e = groups
                .entry(&r.a)
                .or_insert((0, 0, i64::MAX, i64::MIN, BTreeSet::new()));
            e.0 += 1;
            e.1 += r.b;
            e.2 = e.2.min(r.b);
            e.3 = e.3.max(r.b);
            e.4.insert(&r.c);
        }
        prop_assert_eq!(rs.len(), groups.len());
        for (row, (key, (n, s, lo, hi, dc))) in rs.rows.iter().zip(groups) {
            prop_assert_eq!(row[0].as_str().unwrap(), key);
            prop_assert_eq!(row[1].as_int().unwrap(), n);
            prop_assert_eq!(row[2].as_int().unwrap(), s);
            prop_assert_eq!(row[3].as_int().unwrap(), lo);
            prop_assert_eq!(row[4].as_int().unwrap(), hi);
            prop_assert_eq!(row[5].as_int().unwrap(), dc.len() as i64);
        }
    }

    /// DISTINCT + ORDER BY + LIMIT sanity: sorted, unique, truncated.
    #[test]
    fn distinct_order_limit(rows in arb_rows(), limit in 0usize..6) {
        let cat = catalog(&rows);
        let q = format!("SELECT DISTINCT b FROM r ORDER BY b LIMIT {limit}");
        let rs = sql::run(&q, &cat).unwrap();
        let mut expected: Vec<i64> = rows.iter().map(|r| r.b).collect();
        expected.sort();
        expected.dedup();
        expected.truncate(limit);
        let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        prop_assert_eq!(got, expected);
    }

    /// Self-join on `a` counts pairs exactly like the oracle.
    #[test]
    fn self_join_matches_oracle(rows in arb_rows()) {
        let cat = catalog(&rows);
        let rs = sql::run(
            "SELECT COUNT(*) FROM r x JOIN r y ON x.a = y.a",
            &cat,
        )
        .unwrap();
        let mut count = 0i64;
        for r1 in &rows {
            for r2 in &rows {
                if r1.a == r2.a {
                    count += 1;
                }
            }
        }
        prop_assert_eq!(rs.scalar().unwrap().as_int().unwrap(), count);
    }
}
