//! Crate-wide error type.

use std::fmt;

/// Errors produced by the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An attribute name was not found in a schema.
    UnknownAttribute { relation: String, attribute: String },
    /// A relation name was not found in a catalog.
    UnknownRelation(String),
    /// A row had the wrong arity for its schema.
    ArityMismatch { expected: usize, got: usize },
    /// A value did not match the declared attribute type.
    TypeMismatch { attribute: String, expected: String, got: String },
    /// A tuple id referred to a deleted or never-existing row.
    NoSuchTuple(u64),
    /// CSV input was malformed.
    Csv { line: usize, message: String },
    /// SQL lexing/parsing failed.
    SqlParse { position: usize, message: String },
    /// SQL planning/execution failed (semantic errors).
    SqlExec(String),
    /// Expression evaluation failed.
    Eval(String),
    /// A constraint's pattern tableau is malformed (row arity mismatch,
    /// empty disjunction). Surfaced as an error up front so detection
    /// and repair passes fail cleanly instead of panicking mid-scan.
    MalformedPattern { constraint: String, reason: String },
    /// A snapshot file was malformed, truncated, or version-incompatible.
    /// Carries the byte offset where decoding gave up, so a corrupt file
    /// is diagnosable; open never panics on bad input.
    Snapshot { offset: usize, message: String },
    /// An I/O error (message only, to keep the error type `Clone + Eq`).
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownAttribute { relation, attribute } => {
                write!(f, "unknown attribute `{attribute}` in relation `{relation}`")
            }
            Error::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            Error::ArityMismatch { expected, got } => {
                write!(f, "row arity mismatch: schema has {expected} attributes, row has {got}")
            }
            Error::TypeMismatch { attribute, expected, got } => {
                write!(f, "type mismatch on `{attribute}`: expected {expected}, got {got}")
            }
            Error::NoSuchTuple(id) => write!(f, "no such tuple: {id}"),
            Error::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            Error::SqlParse { position, message } => {
                write!(f, "sql parse error at byte {position}: {message}")
            }
            Error::SqlExec(m) => write!(f, "sql execution error: {m}"),
            Error::Eval(m) => write!(f, "expression error: {m}"),
            Error::MalformedPattern { constraint, reason } => {
                write!(f, "malformed pattern in `{constraint}`: {reason}")
            }
            Error::Snapshot { offset, message } => {
                write!(f, "snapshot error at byte {offset}: {message}")
            }
            Error::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;
