//! Typed values with a total order.
//!
//! Every cell in a [`crate::Table`] holds a [`Value`]. The type is kept
//! deliberately small — the data-cleaning algorithms upstream compare,
//! hash and group values constantly, so `Value` must be cheap to clone
//! (strings are `Arc<str>`) and must implement `Eq + Ord + Hash` without
//! panicking (floats are compared via a NaN-normalising total order).
//!
//! NULL semantics: the cleaning literature treats NULL as *absent
//! information* rather than SQL's three-valued unknown. Equality on
//! `Value` is plain structural equality (`Null == Null`), which is what
//! violation detection wants; the SQL executor layers SQL-style
//! `IS NULL` on top where needed.

use std::borrow::Cow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single relational value.
#[derive(Clone, Debug)]
pub enum Value {
    /// Absent / unknown value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float; ordered/hashed via a NaN-normalising total order.
    Float(f64),
    /// Interned-ish string (cheap clones via `Arc`).
    Str(Arc<str>),
}

impl Value {
    /// String value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The string slice if this is a `Str`, else `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer if this is an `Int`, else `None`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float if this is a `Float` (or `Int`, widened), else `None`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The bool if this is a `Bool`, else `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render the value the way the CSV writer and the CLI display it.
    ///
    /// NULL renders as the empty string; everything else via `Display`.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed(""),
            Value::Str(s) => Cow::Borrowed(s),
            other => Cow::Owned(other.to_string()),
        }
    }

    /// A small integer tag used to order values of different variants.
    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Bit pattern giving floats a total order (IEEE totalOrder trick).
    fn float_key(f: f64) -> u64 {
        let bits = f.to_bits();
        if bits & (1 << 63) != 0 {
            !bits
        } else {
            bits | (1 << 63)
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => Value::float_key(*a) == Value::float_key(*b),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => Value::float_key(*a).cmp(&Value::float_key(*b)),
            // Mixed numeric comparisons order by numeric value first, so
            // that `ORDER BY` over a column mixing Int/Float is sane.
            (Value::Int(a), Value::Float(b)) => match (*a as f64).partial_cmp(b) {
                Some(Ordering::Equal) | None => self.tag().cmp(&other.tag()),
                Some(ord) => ord,
            },
            (Value::Float(a), Value::Int(b)) => match a.partial_cmp(&(*b as f64)) {
                Some(Ordering::Equal) | None => self.tag().cmp(&other.tag()),
                Some(ord) => ord,
            },
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.tag().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => Value::float_key(*f).hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        o.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_equals_null() {
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn string_cheap_clone_equality() {
        let a = Value::from("hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn float_nan_is_self_equal_and_hash_consistent() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
    }

    #[test]
    fn float_total_order() {
        let mut vs = [
            Value::Float(1.5),
            Value::Float(-0.0),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(0.0),
            Value::Float(f64::INFINITY),
            Value::Float(-3.25),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Float(f64::NEG_INFINITY));
        assert_eq!(*vs.last().unwrap(), Value::Float(f64::INFINITY));
        // -0.0 sorts before +0.0 under totalOrder but they are distinct keys.
        let neg_zero_pos = vs
            .iter()
            .position(|v| matches!(v, Value::Float(f) if f.to_bits() == (-0.0f64).to_bits()))
            .unwrap();
        let pos_zero_pos = vs
            .iter()
            .position(|v| matches!(v, Value::Float(f) if f.to_bits() == 0.0f64.to_bits()))
            .unwrap();
        assert!(neg_zero_pos < pos_zero_pos);
    }

    #[test]
    fn cross_type_order_is_stable() {
        let mut vs =
            [Value::from("abc"), Value::Int(3), Value::Null, Value::Bool(true), Value::Float(2.5)];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(*vs.last().unwrap(), Value::from("abc"));
    }

    #[test]
    fn mixed_numeric_order() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
        // Equal numerics tie-break by tag, deterministically.
        assert!(Value::Int(2) < Value::Float(2.0));
    }

    #[test]
    fn render_roundtrip() {
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::from("x").render(), "x");
        assert_eq!(Value::Int(42).render(), "42");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::from("s").as_int(), None);
    }

    #[test]
    fn option_conversion() {
        let v: Value = Option::<i64>::None.into();
        assert!(v.is_null());
        let v: Value = Some(3i64).into();
        assert_eq!(v, Value::Int(3));
    }
}
